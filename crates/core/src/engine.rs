//! The distributed engine: shards + cluster + superstep drivers (§3.3).
//!
//! [`DistributedEngine`] owns the partitioned graph (one [`Shard`] per
//! simulated machine) and exposes the execution paths of the paper:
//!
//! * [`DistributedEngine::run_traversal_batch`] — the optimized
//!   concurrent path: up to [`MAX_LANES`] k-hop traversals as bit
//!   lanes over the shared edge-set scan (§3.5), at a runtime batch
//!   width `W ∈ {64, 128, 256, 512}`,
//! * [`DistributedEngine::run_single_queue`] — the queue-based
//!   `Traverse` of Listing 2, one query at a time, in synchronous or
//!   asynchronous mode (§3.3),
//! * [`DistributedEngine::run_gas`] — iterative computation via the
//!   GAS interface of Listing 3 (PageRank),
//! * [`DistributedEngine::run_program`] — arbitrary partition-centric
//!   programs (Listing 1).
//!
//! Every run spins a [`Cluster`] of `p` machine threads; shards are
//! shared immutably, all mutable state is thread-local, and traffic is
//! exchanged through the inbox/outbox fabric of Fig. 4/5.

use crate::bitfrontier::BitFrontier;
use crate::config::{EngineConfig, UpdateMode};
use crate::gas::Gas;
use crate::index_api::PrunePlan;
use crate::partition::RangePartition;
use crate::pcm::{PartitionCtx, PartitionProgram};
use crate::recovery::{PartitionSnapshot, RecoveryConfig, RecoveryReport, RecoveryStore};
use crate::shard::{build_shards, Shard};
use crate::traverse::{QueueTraversal, ValueMode};
use cgraph_comm::chaos::{ChaosRun, FaultPlan};
use cgraph_comm::cluster::TrafficReport;
use cgraph_comm::{Cluster, ClusterError, CommHandle, MachineObs, PersistentCluster, WireSize};
use cgraph_graph::delta::{DeltaOverlay, EdgeUpdate};
use cgraph_graph::{Edge, EdgeList, LaneMask, LaneWidth, VertexId, MAX_LANES};
use cgraph_obs::{log2_edges, Counter, Histogram, TraceCtx, Tracer, COORD};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Messages exchanged between machines.
#[derive(Clone, Debug)]
pub enum EngineMsg {
    /// Batched remote frontier updates: `(global dst, lane mask)` —
    /// the remote task buffer of the bit-frontier path. The mask width
    /// is uniform per batch (every machine runs the same batch).
    Frontier(Vec<(u64, LaneMask)>),
    /// Batched remote tasks `(global dst, depth)` — queue-based path.
    Task(Vec<(u64, u32)>),
    /// Partition-centric messages `(dst vertex, payload word)`.
    Pcm(Vec<(u64, u64)>),
    /// Scatter-value broadcast `(vertex, f64 bits)` — GAS path.
    Ranks(Vec<(u64, u64)>),
}

impl WireSize for EngineMsg {
    fn wire_size(&self) -> usize {
        match self {
            // 8-byte vertex id + W/8 mask bytes per entry.
            EngineMsg::Frontier(v) => {
                v.first().map_or(0, |(_, m)| v.len() * (8 + 8 * m.words().len()))
            }
            EngineMsg::Task(v) => v.len() * 12,
            EngineMsg::Pcm(v) => v.len() * 16,
            EngineMsg::Ranks(v) => v.len() * 16,
        }
    }
}

/// Typed failure of a batch entry point.
///
/// Shape errors (`BadLaneCount`, `LaneBudgetMismatch`,
/// `SourceOutOfRange`) are caller bugs caught *before* any machine
/// thread runs — an out-of-range source would seed no shard while the
/// result accounting still counted it, so it is rejected up front.
/// `Cluster` wraps an execution-time [`ClusterError`] (machine panic,
/// poisoned barrier) and is the only recoverable variant.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EngineError {
    /// Lane count outside `1..=MAX_LANES`.
    BadLaneCount {
        /// Lanes requested.
        lanes: usize,
        /// Maximum supported width.
        max: usize,
    },
    /// `sources` and `ks` disagree in length.
    LaneBudgetMismatch {
        /// `sources.len()`.
        sources: usize,
        /// `ks.len()`.
        ks: usize,
    },
    /// A source vertex is outside the graph's vertex range.
    SourceOutOfRange {
        /// The offending lane.
        lane: usize,
        /// The out-of-range source.
        source: VertexId,
        /// The graph's vertex count.
        num_vertices: u64,
    },
    /// The cluster failed mid-batch (machine death, poisoned barrier).
    Cluster(ClusterError),
    /// A configuration knob is degenerate (e.g. a zero checkpoint
    /// interval) — rejected up front instead of panicking or spinning
    /// deep inside a machine thread.
    InvalidConfig(String),
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::BadLaneCount { lanes, max } => {
                write!(f, "batch lane count {lanes} outside 1..={max}")
            }
            EngineError::LaneBudgetMismatch { sources, ks } => {
                write!(f, "{sources} sources but {ks} hop budgets")
            }
            EngineError::SourceOutOfRange { lane, source, num_vertices } => {
                write!(f, "lane {lane} source {source} outside vertex range 0..{num_vertices}")
            }
            // Delegate: service error messages match on the inner text
            // (e.g. "crashed at superstep").
            EngineError::Cluster(e) => write!(f, "{e}"),
            EngineError::InvalidConfig(what) => write!(f, "invalid configuration: {what}"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<ClusterError> for EngineError {
    fn from(e: ClusterError) -> Self {
        EngineError::Cluster(e)
    }
}

impl EngineError {
    /// True for failures a retry/recovery pass can heal. Shape errors
    /// are deterministic caller bugs: retrying cannot fix them.
    pub fn is_recoverable(&self) -> bool {
        match self {
            EngineError::Cluster(e) => e.is_recoverable(),
            _ => false,
        }
    }
}

/// Result of one traversal batch (up to [`MAX_LANES`] lanes).
#[derive(Clone, Debug)]
pub struct BatchResult {
    /// Number of lanes actually used.
    pub lanes: usize,
    /// Edge-set rows scanned across all machines and supersteps — the
    /// shared-scan work metric of the lane-width ablation (wider
    /// batches amortize each row over more queries, so scans *per
    /// query* fall as width grows).
    pub scans: u64,
    /// Distinct vertices reached per lane (sources included).
    pub per_lane_visited: Vec<u64>,
    /// `per_level[h][lane]` = vertices first reached at hop `h`
    /// (`per_level[0]` counts the sources).
    pub per_level: Vec<Vec<u64>>,
    /// Per-lane completion time since batch start (a lane completes
    /// when its global frontier empties or its hop budget is spent).
    pub lane_completion: Vec<Duration>,
    /// Supersteps executed.
    pub supersteps: u32,
    /// Wall-clock execution time of the whole batch.
    pub exec_time: Duration,
    /// Per-machine busy time: compute + message handling, excluding
    /// barrier waits. On a host with fewer cores than simulated
    /// machines this — not wall clock — is the scaling-relevant time.
    pub per_machine_busy: Vec<Duration>,
    /// Cross-machine traffic.
    pub traffic: TrafficReport,
    /// Frontier entries (one `(vertex, lane-mask)` delivery each) the
    /// reachability index proved to be state no-ops and suppressed.
    /// Zero when the batch ran without a [`PrunePlan`].
    pub pruned_sends: u64,
    /// `(superstep, partition)` frontier messages suppressed entirely
    /// — the skipped partition received nothing that superstep.
    pub pruned_partitions: u64,
}

impl BatchResult {
    /// Simulated cluster execution time: the straggler machine's busy
    /// time plus its simulated network time. This is what a real
    /// p-node cluster would take when machines run truly in parallel;
    /// wall clock on an oversubscribed host approaches the *sum* of
    /// busy times instead.
    pub fn sim_exec_time(&self) -> Duration {
        let busy = self.per_machine_busy.iter().copied().max().unwrap_or_default();
        busy + Duration::from_nanos(self.traffic.max_sim_net_ns())
    }
}

/// Result of a probed traversal batch
/// ([`DistributedEngine::run_traversal_batch_probed`]) — the raw
/// observations reachability-index construction consumes.
#[derive(Clone, Debug)]
pub struct ProbedBatch {
    /// The ordinary batch result.
    pub result: BatchResult,
    /// `(probe index, lane, level)` triples: probe `p` was first
    /// reached by lane `l` at BFS level `d`. Seeds report level 0; a
    /// probe a lane never reaches simply has no triple.
    pub probe_levels: Vec<(u32, u32, u32)>,
    /// `partition_gains[m][h][lane]` = vertices of partition `m`
    /// first reached at level `h + 1` by `lane` (the per-machine rows
    /// [`BatchResult::per_level`] is stitched from; level 0 is the
    /// seed, owned by the source's partition).
    pub partition_gains: Vec<Vec<Vec<u64>>>,
}

/// Result of one queue-based query.
#[derive(Clone, Debug)]
pub struct SingleResult {
    /// Distinct vertices reached (sources included).
    pub visited: u64,
    /// Vertices first reached per hop (`[0]` counts sources).
    pub per_level: Vec<u64>,
    /// Supersteps (sync) or total tasks processed (async).
    pub supersteps: u64,
    /// Wall-clock execution time.
    pub exec_time: Duration,
    /// Cross-machine traffic.
    pub traffic: TrafficReport,
    /// Peak live vertex-value entries across machines — the memory
    /// metric of the dynamic-allocation ablation (A5).
    pub peak_value_entries: usize,
}

/// Result of a GAS run.
#[derive(Clone, Debug)]
pub struct GasResult {
    /// Final vertex values, indexed by global vertex ID.
    pub values: Vec<f64>,
    /// Iterations executed.
    pub iterations: u32,
    /// Wall-clock execution time.
    pub exec_time: Duration,
    /// Per-machine busy time (compute + message handling, excluding
    /// barrier waits).
    pub per_machine_busy: Vec<Duration>,
    /// Cross-machine traffic.
    pub traffic: TrafficReport,
}

impl GasResult {
    /// Simulated cluster execution time (straggler busy time + its
    /// simulated network time); see [`BatchResult::sim_exec_time`].
    pub fn sim_exec_time(&self) -> Duration {
        let busy = self.per_machine_busy.iter().copied().max().unwrap_or_default();
        busy + Duration::from_nanos(self.traffic.max_sim_net_ns())
    }
}

/// A [`FaultPlan`] bound to the coordinates the chaos plane scopes
/// decisions by: the service-assigned job (batch sequence) number and
/// the first attempt number for this execution (service-level retries
/// continue the attempt sequence so `heal_after` counts *all* the
/// attempts a batch has made, not just engine-level recoveries).
#[derive(Clone, Copy, Debug)]
pub struct FaultInjection<'a> {
    /// The fault schedule.
    pub plan: &'a FaultPlan,
    /// Job number ([`FaultPlan::armed_jobs`] scope).
    pub job: u64,
    /// Attempt number of this execution's first attempt; engine-level
    /// recoveries use `first_attempt + n`.
    pub first_attempt: u32,
}

/// Engine-layer registry handles, registered once per [`Obs`] instance
/// and cached on the engine (keyed by registry identity), so batch
/// setup and the per-superstep hot path never take the registry lock.
struct EngineObsHandles {
    supersteps: Arc<Counter>,
    frontier_bits: Arc<Histogram>,
    checkpoint_bytes: Arc<Counter>,
    attempts: Arc<Counter>,
    recoveries: Arc<Counter>,
    checkpoints_taken: Arc<Counter>,
    checkpoints_restored: Arc<Counter>,
    partitions_replayed: Arc<Counter>,
    supersteps_replayed: Arc<Counter>,
    full_rollbacks: Arc<Counter>,
    batch_supersteps: Arc<Histogram>,
}

impl EngineObsHandles {
    fn register(obs: &cgraph_obs::Obs) -> Self {
        let m = &obs.metrics;
        Self {
            supersteps: m.counter(
                "cgraph_engine_supersteps_total",
                "Supersteps executed, counted once per machine per superstep.",
            ),
            frontier_bits: m.histogram(
                "cgraph_engine_frontier_new_bits",
                "New frontier bits (vertex, lane) discovered per machine per superstep.",
                &log2_edges(24),
            ),
            checkpoint_bytes: m.counter(
                "cgraph_engine_checkpoint_bytes_total",
                "Bytes of bit-frontier state committed to recovery checkpoints.",
            ),
            attempts: m.counter(
                "cgraph_recovery_attempts_total",
                "Cluster submissions made by recoverable batches (1 per fault-free batch).",
            ),
            recoveries: m.counter(
                "cgraph_recovery_recoveries_total",
                "Recovery passes performed after a recoverable batch failure.",
            ),
            checkpoints_taken: m.counter(
                "cgraph_recovery_checkpoints_taken_total",
                "Partition checkpoints committed at superstep boundaries.",
            ),
            checkpoints_restored: m.counter(
                "cgraph_recovery_checkpoints_restored_total",
                "Partition checkpoints restored as a replay base or rollback target.",
            ),
            partitions_replayed: m.counter(
                "cgraph_recovery_partitions_replayed_total",
                "Failed partitions re-executed inline on the coordinator (confined recovery).",
            ),
            supersteps_replayed: m.counter(
                "cgraph_recovery_supersteps_replayed_total",
                "Supersteps re-executed during confined partition replays.",
            ),
            full_rollbacks: m.counter(
                "cgraph_recovery_full_rollbacks_total",
                "Global rollbacks (all partitions restarted from the committed set or scratch).",
            ),
            batch_supersteps: m.histogram(
                "cgraph_engine_batch_supersteps",
                "Supersteps a completed batch needed to drain every lane.",
                &log2_edges(10),
            ),
        }
    }

    /// Folds the final [`RecoveryReport`] of a *successful* recoverable
    /// batch into the registry. Deliberately called only on the `Ok`
    /// return — exactly the reports the service folds into its own
    /// [`ServiceStats`](crate::service::ServiceStats) — so registry
    /// recovery counts always equal the stats line.
    fn record_recovery(&self, report: &RecoveryReport, result: &BatchResult) {
        self.attempts.add(report.attempts as u64);
        self.recoveries.add(report.recoveries as u64);
        self.checkpoints_taken.add(report.checkpoints_taken);
        self.checkpoints_restored.add(report.checkpoints_restored);
        self.partitions_replayed.add(report.partitions_replayed);
        self.supersteps_replayed.add(report.supersteps_replayed);
        self.full_rollbacks.add(report.full_rollbacks as u64);
        self.batch_supersteps.observe(result.supersteps as f64);
    }
}

/// One machine's cached engine-layer observability handles for a batch
/// worker: cloned from the engine's cache at worker start, then only
/// atomics on the superstep path.
struct WorkerObs {
    mo: Arc<MachineObs>,
    h: Arc<EngineObsHandles>,
}

impl WorkerObs {
    fn new(mo: Arc<MachineObs>, h: Arc<EngineObsHandles>) -> Self {
        Self { mo, h }
    }

    /// Superstep span entry at hop `hop`; value = frontier bits queued.
    fn superstep_enter(&self, hop: u32) {
        self.mo.tracer().enter("superstep", self.mo.ctx_at(hop), 0);
    }

    /// Superstep span exit; value = new bits discovered this hop.
    fn superstep_exit(&self, hop: u32, new_bits: u64) {
        self.h.supersteps.inc();
        self.h.frontier_bits.observe(new_bits as f64);
        self.mo.tracer().exit("superstep", self.mo.ctx_at(hop), new_bits);
    }
}

/// One machine's private output from a bit-frontier batch, merged by
/// [`DistributedEngine::stitch_batch`].
struct MachineOut {
    per_level_local: Vec<Vec<u64>>,
    visited_local: Vec<u64>,
    lane_completion: Vec<Duration>,
    supersteps: u32,
    scans: u64,
    busy: Duration,
    /// `(probe index, lane, level)` first-visit observations for the
    /// probe vertices local to this machine (index construction).
    probe_levels: Vec<(u32, u32, u32)>,
    /// Frontier entries suppressed by the batch's [`PrunePlan`].
    pruned_sends: u64,
    /// `(superstep, partition)` messages suppressed entirely.
    pruned_partitions: u64,
}

/// The C-Graph distributed engine.
///
/// An engine value is an immutable *snapshot* of the graph at one
/// `graph_epoch`: the base shards plus one published [`DeltaOverlay`]
/// per machine. The mutation plane never edits an engine in place —
/// [`DistributedEngine::with_updates`] derives the next epoch's value
/// and the service swaps it in atomically, so in-flight batches keep
/// traversing the snapshot they were admitted against.
pub struct DistributedEngine {
    partition: RangePartition,
    /// Base shards, `Arc`-shared between epochs so an overlay-publish
    /// commit never copies the graph.
    shards: Arc<Vec<Shard>>,
    /// Per-machine published adjacency deltas, consulted alongside the
    /// base edge-sets during scans. Empty overlays cost nothing on the
    /// scan path ([`DistributedEngine::delta`] returns `None`).
    deltas: Vec<Arc<DeltaOverlay>>,
    /// Snapshot epoch: 0 at ingestion, +1 per committed mutation batch.
    graph_epoch: u64,
    config: EngineConfig,
    /// Registered engine-layer metric handles, keyed by the identity of
    /// the [`Obs`](cgraph_obs::Obs) they were registered against (a
    /// service installs exactly one, so this is a one-entry cache that
    /// turns per-batch registry lookups into a single mutex check).
    obs_handles: Mutex<Option<(usize, Arc<EngineObsHandles>)>>,
}

impl DistributedEngine {
    /// Partitions `edges` across `config.num_machines` machines and
    /// builds every shard.
    pub fn new(edges: &EdgeList, config: EngineConfig) -> Self {
        let partition = RangePartition::from_edges_total_degree(
            edges.num_vertices(),
            edges.edges(),
            config.num_machines,
        );
        Self::with_partition(edges, partition, config)
    }

    /// Builds the engine over an explicit partitioning (ablations and
    /// custom balancing strategies). `partition.num_partitions()` must
    /// equal `config.num_machines`.
    pub fn with_partition(
        edges: &EdgeList,
        partition: RangePartition,
        config: EngineConfig,
    ) -> Self {
        assert_eq!(
            partition.num_partitions(),
            config.num_machines,
            "partition count must match machine count"
        );
        assert_eq!(partition.num_vertices(), edges.num_vertices());
        let shards =
            build_shards(&partition, edges.edges(), config.edge_set_policy, config.build_in_edges);
        let deltas = (0..config.num_machines).map(|_| Arc::new(DeltaOverlay::new())).collect();
        Self {
            partition,
            shards: Arc::new(shards),
            deltas,
            graph_epoch: 0,
            config,
            obs_handles: Mutex::new(None),
        }
    }

    /// Rebuilds an engine value from durable state: the base edges and
    /// partition boundaries of a decoded snapshot, the per-machine
    /// delta overlays live at snapshot time, and the epoch the
    /// snapshot captured. This is the recovery-path twin of
    /// [`DistributedEngine::with_partition`] — same shard build, but
    /// the epoch counter and overlays resume where the crashed process
    /// left them instead of starting from zero.
    pub fn restored(
        edges: &EdgeList,
        partition: RangePartition,
        deltas: Vec<DeltaOverlay>,
        graph_epoch: u64,
        config: EngineConfig,
    ) -> Self {
        assert_eq!(
            partition.num_partitions(),
            config.num_machines,
            "partition count must match machine count"
        );
        assert_eq!(partition.num_vertices(), edges.num_vertices());
        assert_eq!(deltas.len(), config.num_machines, "one overlay per machine");
        let shards =
            build_shards(&partition, edges.edges(), config.edge_set_policy, config.build_in_edges);
        Self {
            partition,
            shards: Arc::new(shards),
            deltas: deltas.into_iter().map(Arc::new).collect(),
            graph_epoch,
            config,
            obs_handles: Mutex::new(None),
        }
    }

    /// The engine-layer handle bundle for `obs`, registering it on
    /// first sight and serving clones from the cache afterwards.
    fn engine_obs(&self, obs: &Arc<cgraph_obs::Obs>) -> Arc<EngineObsHandles> {
        let key = Arc::as_ptr(obs) as usize;
        let mut slot = self.obs_handles.lock().unwrap_or_else(|e| e.into_inner());
        match slot.as_ref() {
            Some((k, h)) if *k == key => Arc::clone(h),
            _ => {
                let h = Arc::new(EngineObsHandles::register(obs));
                *slot = Some((key, Arc::clone(&h)));
                h
            }
        }
    }

    /// Builds a worker's observability bundle from its comm handle,
    /// reusing the engine's cached registry handles.
    fn worker_obs(&self, h: &CommHandle<EngineMsg>) -> Option<WorkerObs> {
        h.obs().map(|mo| WorkerObs::new(Arc::clone(mo), self.engine_obs(mo.obs())))
    }

    /// The partitioning map.
    pub fn partition(&self) -> &RangePartition {
        &self.partition
    }

    /// The per-machine shards (the *base* snapshot — callers reading
    /// shards directly, like the QL executor and the k-core analytics,
    /// see base edges only and should run against a delta-free engine).
    pub fn shards(&self) -> &[Shard] {
        &self.shards[..]
    }

    /// The snapshot epoch this engine value publishes.
    pub fn graph_epoch(&self) -> u64 {
        self.graph_epoch
    }

    /// Machine `m`'s published delta overlay, or `None` when it carries
    /// no entries — the scan paths' fast test for "base only".
    pub fn delta(&self, m: usize) -> Option<&DeltaOverlay> {
        let d = &self.deltas[m];
        (!d.is_empty()).then_some(&**d)
    }

    /// Total resident delta entries (inserted + deleted edges) across
    /// all machines.
    pub fn delta_entries(&self) -> usize {
        self.deltas.iter().map(|d| d.len()).sum()
    }

    /// Total resident delta bytes across all machines.
    pub fn delta_bytes(&self) -> usize {
        self.deltas.iter().map(|d| if d.is_empty() { 0 } else { d.size_bytes() }).sum()
    }

    /// The largest single machine's delta footprint — the scheduler
    /// charges this against the per-machine memory budget, since every
    /// machine thread scans its own overlay alongside the batch state.
    pub fn max_delta_bytes(&self) -> usize {
        self.deltas.iter().map(|d| if d.is_empty() { 0 } else { d.size_bytes() }).max().unwrap_or(0)
    }

    /// True when any machine has a live overlay.
    pub fn has_delta(&self) -> bool {
        self.deltas.iter().any(|d| !d.is_empty())
    }

    /// Publishes `updates` as a new engine value at `graph_epoch + 1`.
    ///
    /// While the combined per-machine overlays stay at or below
    /// `fold_threshold` total entries, the base shards are shared
    /// untouched (an `Arc` clone) and only the overlays change — the
    /// cheap publish path. Above the threshold the commit *folds*:
    /// every partition's CSR/CSC edge-sets are rebuilt from the
    /// effective adjacency ([`DeltaOverlay::merge_row`]) and the new
    /// engine starts delta-free. Returns the new engine and whether a
    /// fold happened. Either way the logical graph is identical —
    /// `(base ∖ deletes) ∪ inserts` — so query answers never depend on
    /// which side of the threshold a commit landed.
    ///
    /// # Panics
    ///
    /// Panics when an update names a vertex outside the graph's vertex
    /// range: the mutation plane changes edges, never the vertex set.
    pub fn with_updates(
        &self,
        updates: &[EdgeUpdate],
        fold_threshold: usize,
    ) -> (DistributedEngine, bool) {
        if updates.is_empty() && self.delta_entries() <= fold_threshold {
            // Empty commit (epoch fence): share base and overlays alike.
            return (
                DistributedEngine {
                    partition: self.partition.clone(),
                    shards: Arc::clone(&self.shards),
                    deltas: self.deltas.clone(),
                    graph_epoch: self.graph_epoch + 1,
                    config: self.config,
                    obs_handles: Mutex::new(None),
                },
                false,
            );
        }
        let n = self.num_vertices();
        let mut deltas: Vec<DeltaOverlay> = self.deltas.iter().map(|d| (**d).clone()).collect();
        for u in updates {
            assert!(u.src() < n && u.dst() < n, "edge update {u:?} outside vertex range 0..{n}");
            deltas[self.partition.owner(u.src())].apply(u);
        }
        let total: usize = deltas.iter().map(DeltaOverlay::len).sum();
        if total > fold_threshold {
            (self.folded_with(&deltas, self.graph_epoch + 1), true)
        } else {
            (
                DistributedEngine {
                    partition: self.partition.clone(),
                    shards: Arc::clone(&self.shards),
                    deltas: deltas.into_iter().map(Arc::new).collect(),
                    graph_epoch: self.graph_epoch + 1,
                    config: self.config,
                    obs_handles: Mutex::new(None),
                },
                false,
            )
        }
    }

    /// Rebuilds fresh per-partition edge-sets from the effective
    /// adjacency (base merged with `deltas`), producing a delta-free
    /// engine at `epoch` on the same partitioning.
    fn folded_with(&self, deltas: &[DeltaOverlay], epoch: u64) -> DistributedEngine {
        let mut edges = EdgeList::new();
        for (m, shard) in self.shards.iter().enumerate() {
            for v in shard.local_range().iter() {
                for (t, w) in deltas[m].merge_row(v, &shard.out_neighbors_weighted(v)) {
                    edges.push(Edge::weighted(v, t, w));
                }
            }
        }
        edges.set_num_vertices(self.num_vertices());
        let shards = build_shards(
            &self.partition,
            edges.edges(),
            self.config.edge_set_policy,
            self.config.build_in_edges,
        );
        DistributedEngine {
            partition: self.partition.clone(),
            shards: Arc::new(shards),
            deltas: (0..self.config.num_machines).map(|_| Arc::new(DeltaOverlay::new())).collect(),
            graph_epoch: epoch,
            config: self.config,
            obs_handles: Mutex::new(None),
        }
    }

    /// Engine configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Number of machines.
    pub fn num_machines(&self) -> usize {
        self.config.num_machines
    }

    /// Number of vertices in the graph.
    pub fn num_vertices(&self) -> u64 {
        self.partition.num_vertices()
    }

    /// Total shard memory (bytes) — the "cached subgraph shard" cost.
    pub fn shard_bytes(&self) -> usize {
        self.shards.iter().map(Shard::size_bytes).sum()
    }

    fn cluster(&self) -> Cluster {
        Cluster::with_model(self.config.num_machines, self.config.net_model)
    }

    // ------------------------------------------------------------------
    // Bit-frontier batched traversal (§3.5)
    // ------------------------------------------------------------------

    /// Runs up to [`MAX_LANES`] concurrent k-hop traversals as one
    /// shared batch.
    ///
    /// `sources[i]` and `ks[i]` define lane `i`'s source vertex and hop
    /// budget (`u32::MAX` = full BFS). All lanes share every edge-set
    /// scan — the core concurrency optimization of the paper. The bit
    /// state is sized at the narrowest supported width
    /// `W ∈ {64, 128, 256, 512}` that fits the lane count.
    ///
    /// Fails with a shape [`EngineError`] — without running anything —
    /// when the lane count is out of range, `sources` and `ks`
    /// disagree, or a source lies outside the vertex range.
    pub fn run_traversal_batch(
        &self,
        sources: &[VertexId],
        ks: &[u32],
    ) -> Result<BatchResult, EngineError> {
        self.run_traversal_batch_pruned(sources, ks, None)
    }

    /// [`DistributedEngine::run_traversal_batch`] under an optional
    /// reachability-index [`PrunePlan`]: each superstep, frontier
    /// deliveries the plan proves to be state no-ops are suppressed
    /// before they reach the wire. Pruning never changes visited
    /// state, so results are bit-identical to the unpruned run; the
    /// savings show up in [`BatchResult::pruned_sends`],
    /// [`BatchResult::pruned_partitions`], and the traffic report's
    /// suppressed counters.
    pub fn run_traversal_batch_pruned(
        &self,
        sources: &[VertexId],
        ks: &[u32],
        prune: Option<&PrunePlan>,
    ) -> Result<BatchResult, EngineError> {
        let lanes = self.check_batch(sources, ks)?;
        let start = Instant::now();
        let (outs, traffic) = self.cluster().run::<EngineMsg, MachineOut, _>(|h| {
            self.batch_worker(sources, ks, None, prune, None, h)
        });
        Ok(self.stitch_batch(outs, traffic, lanes, start.elapsed()))
    }

    /// [`DistributedEngine::run_traversal_batch`] with per-superstep
    /// probe observation — the index-construction entry point.
    ///
    /// `probes` lists vertices (typically partition boundary vertices)
    /// whose first-visit levels the caller wants to learn: the worker
    /// that owns each probe reads its frontier row right after every
    /// advance, so the observations cost one row read per probe per
    /// superstep and never perturb the traversal itself. Returns the
    /// usual [`BatchResult`] plus a [`ProbedBatch`] carrying the probe
    /// observations and the per-partition level gains.
    pub fn run_traversal_batch_probed(
        &self,
        sources: &[VertexId],
        ks: &[u32],
        probes: &[VertexId],
    ) -> Result<ProbedBatch, EngineError> {
        let lanes = self.check_batch(sources, ks)?;
        let start = Instant::now();
        let (mut outs, traffic) = self.cluster().run::<EngineMsg, MachineOut, _>(|h| {
            self.batch_worker(sources, ks, None, None, Some(probes), h)
        });
        let mut probe_levels = Vec::new();
        for o in &mut outs {
            probe_levels.append(&mut o.probe_levels);
        }
        let partition_gains = outs.iter().map(|o| o.per_level_local.clone()).collect();
        let result = self.stitch_batch(outs, traffic, lanes, start.elapsed());
        Ok(ProbedBatch { result, probe_levels, partition_gains })
    }

    /// [`DistributedEngine::run_traversal_batch`] on a caller-provided
    /// [`PersistentCluster`] instead of per-batch spawned threads —
    /// the serving path: the streaming query service dispatches every
    /// packed batch through the same long-lived machine threads.
    ///
    /// Errors instead of panicking when a machine dies mid-batch, so a
    /// service can fail the affected queries and keep serving.
    pub fn run_traversal_batch_on(
        &self,
        cluster: &PersistentCluster,
        sources: &[VertexId],
        ks: &[u32],
    ) -> Result<BatchResult, EngineError> {
        self.run_traversal_batch_on_hooked(cluster, sources, ks, None)
    }

    /// [`DistributedEngine::run_traversal_batch_on`] with an optional
    /// per-machine hook invoked with the machine id at the start of
    /// each machine's share of the batch. The hook is the
    /// fault-injection seam: a hook that panics on a chosen machine
    /// reproduces "a machine died mid-batch" end to end (the panic is
    /// caught, the batch's barrier and detector are poisoned, and the
    /// call returns [`ClusterError::MachinePanicked`] wrapped in
    /// [`EngineError::Cluster`]).
    pub fn run_traversal_batch_on_hooked(
        &self,
        cluster: &PersistentCluster,
        sources: &[VertexId],
        ks: &[u32],
        hook: Option<&(dyn Fn(usize) + Sync)>,
    ) -> Result<BatchResult, EngineError> {
        let lanes = self.check_batch(sources, ks)?;
        assert_eq!(
            cluster.num_machines(),
            self.config.num_machines,
            "cluster width must match the engine's machine count"
        );
        let start = Instant::now();
        let (outs, traffic) = cluster.submit::<EngineMsg, MachineOut, _>(|h| {
            self.batch_worker(sources, ks, hook, None, None, h)
        })?;
        Ok(self.stitch_batch(outs, traffic, lanes, start.elapsed()))
    }

    /// Validates batch shape — lane count in `1..=MAX_LANES`, matching
    /// hop budgets, every source inside the vertex range — and returns
    /// the lane count. An out-of-range source would seed no shard while
    /// the stitched result still counted it at level 0, so it is a hard
    /// error here, before any machine thread runs.
    fn check_batch(&self, sources: &[VertexId], ks: &[u32]) -> Result<usize, EngineError> {
        let lanes = sources.len();
        if lanes == 0 || lanes > MAX_LANES {
            return Err(EngineError::BadLaneCount { lanes, max: MAX_LANES });
        }
        if ks.len() != lanes {
            return Err(EngineError::LaneBudgetMismatch { sources: lanes, ks: ks.len() });
        }
        let n = self.num_vertices();
        for (lane, &src) in sources.iter().enumerate() {
            if src >= n {
                return Err(EngineError::SourceOutOfRange { lane, source: src, num_vertices: n });
            }
        }
        Ok(lanes)
    }

    /// One machine's share of a bit-frontier batch: seed local lanes,
    /// then alternate shared edge-set scans with frontier exchange
    /// until every lane is globally quiet or out of hop budget.
    ///
    /// `prune` suppresses provably no-op remote deliveries each
    /// superstep (see [`PrunePlan`]); `probes` records per-lane
    /// first-visit levels for the listed vertices.
    fn batch_worker(
        &self,
        sources: &[VertexId],
        ks: &[u32],
        hook: Option<&(dyn Fn(usize) + Sync)>,
        prune: Option<&PrunePlan>,
        probes: Option<&[VertexId]>,
        h: CommHandle<EngineMsg>,
    ) -> MachineOut {
        if let Some(hook) = hook {
            hook(h.id());
        }
        let prune = prune.filter(|p| !p.is_empty());
        let wobs = self.worker_obs(&h);
        let lanes = sources.len();
        let width = LaneWidth::for_lanes(lanes);
        let all_lanes = LaneMask::all(lanes);
        // Lanes with hop budget left for the expansion out of `hop`.
        let budget_mask = |hop: u32| {
            let mut m = LaneMask::zero(width);
            for (lane, &k) in ks.iter().enumerate() {
                if k > hop {
                    m.set(lane);
                }
            }
            m
        };
        {
            let shard = &self.shards[h.id()];
            let delta = self.delta(h.id());
            let t0 = Instant::now();
            let mut bf = BitFrontier::new(shard, lanes);
            for (lane, &src) in sources.iter().enumerate() {
                if shard.is_local(src) {
                    bf.seed(src, lane);
                }
            }
            // Probe bookkeeping: the probes this machine owns, plus
            // seed-level observations (a probe that *is* a source is
            // first visited at level 0, before any advance runs).
            let local_probes: Vec<(u32, VertexId)> = probes
                .map(|ps| {
                    ps.iter()
                        .enumerate()
                        .filter(|&(_, &v)| shard.is_local(v))
                        .map(|(i, &v)| (i as u32, v))
                        .collect()
                })
                .unwrap_or_default();
            let mut probe_levels: Vec<(u32, u32, u32)> = Vec::new();
            for &(pi, v) in &local_probes {
                for (lane, &src) in sources.iter().enumerate() {
                    if src == v {
                        probe_levels.push((pi, lane as u32, 0));
                    }
                }
            }
            let mut per_level_local: Vec<Vec<u64>> = Vec::new();
            let mut lane_completion = vec![Duration::ZERO; lanes];
            let mut completed = LaneMask::zero(width); // lanes recorded complete
            let mut outbox: Vec<HashMap<u64, LaneMask>> =
                (0..h.num_machines()).map(|_| HashMap::new()).collect();
            let cpu0 = cgraph_comm::thread_cpu_time();
            let mut hop: u32 = 0;
            let mut supersteps = 0u32;
            let mut scans = 0u64;
            let mut pruned_sends = 0u64;
            let mut pruned_partitions = 0u64;
            loop {
                // Chaos seam: a plan can schedule this machine's death
                // at superstep `hop`. Free without an armed plan.
                h.fault_point(hop);
                if let Some(w) = &wobs {
                    w.superstep_enter(hop);
                }
                bf.mask_frontier(&budget_mask(hop));

                scans += bf.scan(shard, delta, |t, w| {
                    let owner = self.partition.owner(t);
                    outbox[owner].entry(t).or_insert_with(|| LaneMask::zero(width)).or_assign(w);
                });
                // Deliveries emitted during the scan of `hop` land at
                // BFS level `hop + 1`: mask each partition's buffer
                // against the plan's keep set for that level.
                let keep_masks = prune.map(|p| p.keep_masks(hop + 1, width));
                for (m, buf) in outbox.iter_mut().enumerate() {
                    if buf.is_empty() {
                        continue;
                    }
                    let batch: Vec<(u64, LaneMask)> = match &keep_masks {
                        Some(keep) => {
                            let before = buf.len();
                            let kept: Vec<(u64, LaneMask)> = buf
                                .drain()
                                .filter_map(|(t, w)| {
                                    let w = w.and(&keep[m]);
                                    (!w.is_zero()).then_some((t, w))
                                })
                                .collect();
                            let dropped = (before - kept.len()) as u64;
                            if dropped > 0 {
                                pruned_sends += dropped;
                                if kept.is_empty() {
                                    pruned_partitions += 1;
                                }
                                if m != h.id() {
                                    let bytes = dropped * (8 + 8 * width.words() as u64);
                                    h.note_suppressed(u64::from(kept.is_empty()), bytes);
                                }
                            }
                            kept
                        }
                        None => buf.drain().collect(),
                    };
                    if !batch.is_empty() {
                        h.send(m, EngineMsg::Frontier(batch));
                    }
                }
                h.barrier();
                for env in h.drain() {
                    if let EngineMsg::Frontier(batch) = env.payload {
                        for (v, w) in batch {
                            bf.absorb(v, &w);
                        }
                    }
                }
                let adv = bf.advance();
                per_level_local.push(adv.new_per_lane[..lanes].to_vec());
                // The post-advance frontier is exactly the set of
                // (vertex, lane) first visits at level `hop + 1` —
                // read the probes' rows before the level counter moves.
                for &(pi, v) in &local_probes {
                    let m = bf.frontier_mask(v);
                    for lane in m.iter_ones() {
                        if lane < lanes {
                            probe_levels.push((pi, lane as u32, hop + 1));
                        }
                    }
                }
                if let Some(w) = &wobs {
                    w.superstep_exit(hop, adv.new_per_lane[..lanes].iter().sum());
                }
                supersteps += 1;
                hop += 1;

                let global_active = LaneMask::from_words(
                    &h.barrier_reduce_words(adv.active_lanes.raw())[..width.words()],
                );
                // Next expansion only serves lanes with hop budget left.
                let live = global_active.and(&budget_mask(hop)).and(&all_lanes);
                // Record completion for lanes that just went quiet.
                let newly_done = all_lanes.and_not(&live).and_not(&completed);
                if !newly_done.is_zero() {
                    let now = t0.elapsed();
                    for lane in newly_done.iter_ones() {
                        lane_completion[lane] = now;
                    }
                    completed.or_assign(&newly_done);
                }
                if live.is_zero() {
                    break;
                }
            }
            MachineOut {
                per_level_local,
                visited_local: bf.visited_per_lane()[..lanes].to_vec(),
                lane_completion,
                supersteps,
                scans,
                busy: cgraph_comm::thread_cpu_time() - cpu0,
                probe_levels,
                pruned_sends,
                pruned_partitions,
            }
        }
    }

    /// Merges per-machine batch outputs into the global [`BatchResult`].
    fn stitch_batch(
        &self,
        outs: Vec<MachineOut>,
        traffic: TrafficReport,
        lanes: usize,
        exec_time: Duration,
    ) -> BatchResult {
        // Stitch machine-local counts into global per-level/per-lane.
        // Supersteps are merged as a max across machines (a replayed or
        // degraded partition may report fewer locally), never taken
        // from machine 0 alone.
        let supersteps = outs.iter().map(|o| o.supersteps).max().unwrap_or(0);
        let levels = outs.iter().map(|o| o.per_level_local.len()).max().unwrap_or(0);
        let mut per_level = vec![vec![0u64; lanes]; levels + 1];
        // Level 0: sources — every source was range-checked by
        // `check_batch`, so each seeds exactly one shard.
        per_level[0][..lanes].fill(1);
        let mut per_lane_visited = vec![0u64; lanes];
        // A lane completes when its *global* frontier empties; each
        // machine stamps the same boundary, but elapsed clocks differ,
        // so report the per-lane max — the last machine to notice.
        let mut lane_completion = vec![Duration::ZERO; lanes];
        for o in &outs {
            for (h, row) in o.per_level_local.iter().enumerate() {
                for (lane, &c) in row.iter().enumerate() {
                    per_level[h + 1][lane] += c;
                }
            }
            for (lane, &c) in o.visited_local.iter().enumerate() {
                per_lane_visited[lane] += c;
            }
            for (lane, &d) in o.lane_completion.iter().enumerate() {
                lane_completion[lane] = lane_completion[lane].max(d);
            }
        }
        // Trim trailing all-zero levels (the final empty superstep).
        while per_level.len() > 1 && per_level.last().unwrap().iter().all(|&c| c == 0) {
            per_level.pop();
        }
        BatchResult {
            lanes,
            scans: outs.iter().map(|o| o.scans).sum(),
            per_lane_visited,
            per_level,
            lane_completion,
            supersteps,
            exec_time,
            per_machine_busy: outs.iter().map(|o| o.busy).collect(),
            traffic,
            pruned_sends: outs.iter().map(|o| o.pruned_sends).sum(),
            pruned_partitions: outs.iter().map(|o| o.pruned_partitions).sum(),
        }
    }

    // ------------------------------------------------------------------
    // Fault-tolerant batched traversal (checkpointing + replay)
    // ------------------------------------------------------------------

    /// Runs a traversal batch with superstep checkpointing and
    /// recovery, optionally under an injected [`FaultPlan`].
    ///
    /// **Sync mode** uses confined recovery: every partition commits
    /// its bit-packed state at `recovery.checkpoint_interval`
    /// boundaries and logs outgoing messages; when a machine dies, the
    /// healthy partitions save their boundary state and the failed
    /// partition alone is replayed from its last committed checkpoint
    /// (consuming the logs), after which all partitions *resume* —
    /// healthy work since superstep 0 is never re-executed. When
    /// confined recovery's preconditions fail (messages were dropped,
    /// saves are missing or at mixed boundaries), the batch falls back
    /// to a global rollback onto the committed checkpoint set, or a
    /// fresh restart when there is none.
    ///
    /// **Async mode** has no barriers to checkpoint at and falls back
    /// to whole-batch re-execution on every recoverable failure.
    ///
    /// Returns the batch result plus a [`RecoveryReport`] of what
    /// recovery did. Fails with the last cluster error (wrapped in
    /// [`EngineError::Cluster`]) once `recovery.max_recoveries` is
    /// exhausted, immediately for non-recoverable errors, and with a
    /// shape error — before running anything — for invalid batches.
    pub fn run_traversal_batch_recoverable(
        &self,
        cluster: &PersistentCluster,
        sources: &[VertexId],
        ks: &[u32],
        recovery: &RecoveryConfig,
        fault: Option<FaultInjection<'_>>,
    ) -> Result<(BatchResult, RecoveryReport), EngineError> {
        self.run_traversal_batch_recoverable_pruned(cluster, sources, ks, recovery, fault, None)
    }

    /// [`DistributedEngine::run_traversal_batch_recoverable`] under an
    /// optional reachability-index [`PrunePlan`]. Pruning composes
    /// with recovery because suppressed deliveries are dropped
    /// *before* the message log records them: a replayed partition
    /// re-absorbs exactly what the original execution delivered, and
    /// since pruned deliveries were state no-ops, visited state — and
    /// therefore every checkpoint and answer — is bit-identical to the
    /// unpruned run.
    pub fn run_traversal_batch_recoverable_pruned(
        &self,
        cluster: &PersistentCluster,
        sources: &[VertexId],
        ks: &[u32],
        recovery: &RecoveryConfig,
        fault: Option<FaultInjection<'_>>,
        prune: Option<&PrunePlan>,
    ) -> Result<(BatchResult, RecoveryReport), EngineError> {
        let lanes = self.check_batch(sources, ks)?;
        if recovery.checkpoint_interval == 0 {
            return Err(EngineError::InvalidConfig(
                "recovery.checkpoint_interval must be > 0 \
                 (a zero interval would never commit a checkpoint, degrading \
                 every recovery to a full restart)"
                    .into(),
            ));
        }
        assert_eq!(
            cluster.num_machines(),
            self.config.num_machines,
            "cluster width must match the engine's machine count"
        );
        let p = self.config.num_machines;
        let mut report = RecoveryReport::default();
        let start = Instant::now();
        let chaos_for = |attempt: u32| {
            fault.map(|fi| ChaosRun::new(fi.plan.clone(), fi.job, fi.first_attempt + attempt))
        };
        // Trace coordinates for coordinator-side recovery events: the
        // injected job number when a plan is in force (so engine events
        // line up with service/comm events), else the cluster
        // generation at entry.
        let job = fault.map(|fi| fi.job).unwrap_or_else(|| cluster.generation());
        let first_attempt = fault.map(|fi| fi.first_attempt).unwrap_or(0);
        let obs = cluster.obs();
        let eh = obs.as_ref().map(|o| self.engine_obs(o));
        let coord = obs.as_ref().map(|o| o.trace.tracer(COORD));
        let ctx_for = |attempt: u32| TraceCtx { job, attempt, superstep: 0, machine: COORD };

        if self.config.mode == UpdateMode::Async {
            // No superstep barriers to checkpoint at: recover by
            // re-executing the whole batch.
            loop {
                report.attempts += 1;
                let chaos = chaos_for(report.attempts - 1);
                let res = cluster
                    .submit_with_chaos::<EngineMsg, MachineOut, _>(chaos.as_ref(), |h| {
                        self.batch_worker(sources, ks, None, prune, None, h)
                    });
                match res {
                    Ok((outs, traffic)) => {
                        let result = self.stitch_batch(outs, traffic, lanes, start.elapsed());
                        if let Some(eh) = &eh {
                            eh.record_recovery(&report, &result);
                        }
                        return Ok((result, report));
                    }
                    Err(e) if e.is_recoverable() && report.recoveries < recovery.max_recoveries => {
                        report.recoveries += 1;
                        report.full_rollbacks += 1;
                        if let Some(t) = &coord {
                            let attempt = first_attempt + report.attempts - 1;
                            t.instant("full_rollback", ctx_for(attempt), 0);
                        }
                    }
                    Err(e) => return Err(e.into()),
                }
            }
        }

        let store = RecoveryStore::new(p);
        loop {
            report.attempts += 1;
            let chaos = chaos_for(report.attempts - 1);
            let commits_before = store.commits();
            let res = cluster.submit_with_chaos::<EngineMsg, Option<MachineOut>, _>(
                chaos.as_ref(),
                |h| {
                    self.recoverable_worker(
                        sources,
                        ks,
                        recovery.checkpoint_interval,
                        &store,
                        prune,
                        h,
                    )
                },
            );
            report.checkpoints_taken += store.commits() - commits_before;
            let dropped = chaos.as_ref().map_or(0, ChaosRun::dropped);
            match res {
                Ok((outs, traffic)) => {
                    // Lockstep exit: the loop only breaks on a global
                    // live==0 agreed at a completed barrier, so on an
                    // Ok submission every machine ran to completion.
                    let outs: Vec<MachineOut> = outs
                        .into_iter()
                        .map(|o| o.expect("machine saved state on an Ok submission"))
                        .collect();
                    let result = self.stitch_batch(outs, traffic, lanes, start.elapsed());
                    if let Some(eh) = &eh {
                        eh.record_recovery(&report, &result);
                    }
                    return Ok((result, report));
                }
                Err(e) if e.is_recoverable() && report.recoveries < recovery.max_recoveries => {
                    report.recoveries += 1;
                    let trace =
                        coord.as_ref().map(|t| (t, ctx_for(first_attempt + report.attempts - 1)));
                    self.plan_recovery(&e, dropped, &store, sources, ks, lanes, &mut report, trace);
                }
                Err(e) => return Err(e.into()),
            }
        }
    }

    /// Decides between confined replay and global rollback after a
    /// failed sync-mode attempt, and installs every machine's resume
    /// state for the next attempt.
    #[allow(clippy::too_many_arguments)]
    fn plan_recovery(
        &self,
        err: &ClusterError,
        dropped: u64,
        store: &RecoveryStore,
        sources: &[VertexId],
        ks: &[u32],
        lanes: usize,
        report: &mut RecoveryReport,
        trace: Option<(&Tracer, TraceCtx)>,
    ) {
        let p = self.config.num_machines;
        let saves: Vec<Option<PartitionSnapshot>> = (0..p).map(|i| store.take_saved(i)).collect();
        let target = saves.iter().flatten().map(|s| s.boundary).next();
        let uniform_saves = target.is_some_and(|t| saves.iter().flatten().all(|s| s.boundary == t));
        let failed: Vec<usize> =
            saves.iter().enumerate().filter(|(_, s)| s.is_none()).map(|(i, _)| i).collect();
        // Confined replay is sound only when the failure was a crash
        // (not message loss: logs record send *intent*, not delivery),
        // at least one machine saved poison-time state, every save sits
        // at the same boundary, and someone actually failed.
        let confined = dropped == 0
            && matches!(err, ClusterError::MachinePanicked { .. })
            && uniform_saves
            && !failed.is_empty()
            && failed.len() < p;
        if confined {
            let target = target.unwrap();
            for &f in &failed {
                let base = store.committed_clone(f);
                if base.is_some() {
                    report.checkpoints_restored += 1;
                }
                let (snap, replayed) =
                    self.replay_partition(f, base, target, store, sources, ks, lanes);
                report.partitions_replayed += 1;
                report.supersteps_replayed += replayed;
                if let Some((t, ctx)) = trace {
                    t.instant("replay_partition", TraceCtx { superstep: target, ..ctx }, f as u64);
                }
                store.set_resume(f, snap);
            }
            for (i, save) in saves.into_iter().enumerate() {
                if let Some(s) = save {
                    store.set_resume(i, s);
                }
            }
        } else {
            // Global rollback: restart every partition from the
            // committed checkpoint set if one exists at a uniform
            // boundary, else from scratch. Execution-derived state
            // (saves, logs, live masks) may be tainted — drop it.
            report.full_rollbacks += 1;
            let committed: Vec<Option<PartitionSnapshot>> =
                (0..p).map(|i| store.committed_clone(i)).collect();
            let usable = committed.iter().all(Option::is_some)
                && committed
                    .iter()
                    .flatten()
                    .map(|s| s.boundary)
                    .collect::<Vec<_>>()
                    .windows(2)
                    .all(|w| w[0] == w[1]);
            store.clear_execution_state();
            if let Some((t, ctx)) = trace {
                let step =
                    if usable { committed.iter().flatten().next().unwrap().boundary } else { 0 };
                t.instant("full_rollback", TraceCtx { superstep: step, ..ctx }, usable as u64);
            }
            if usable {
                for (i, c) in committed.into_iter().enumerate() {
                    store.set_resume(i, c.unwrap());
                    report.checkpoints_restored += 1;
                }
            }
        }
    }

    /// Replays partition `f` inline (on the coordinator thread) from
    /// `base` (its last committed checkpoint, or the seeded state) up
    /// to the `target` boundary, consuming the message logs in place
    /// of live peers. Remote emissions are discarded — the original
    /// execution already delivered them before the crash. Returns the
    /// reconstructed boundary snapshot and the supersteps replayed.
    #[allow(clippy::too_many_arguments)]
    fn replay_partition(
        &self,
        f: usize,
        base: Option<PartitionSnapshot>,
        target: u32,
        store: &RecoveryStore,
        sources: &[VertexId],
        ks: &[u32],
        lanes: usize,
    ) -> (PartitionSnapshot, u64) {
        let width = LaneWidth::for_lanes(lanes);
        let all_lanes = LaneMask::all(lanes);
        let shard = &self.shards[f];
        let mut bf = BitFrontier::new(shard, lanes);
        let t0 = Instant::now();
        let cpu0 = cgraph_comm::thread_cpu_time();
        let (mut per_level_local, mut lane_completion, mut completed, from, busy) = match base {
            Some(snap) => {
                assert_eq!(snap.lanes, lanes, "checkpoint lane count must match the batch");
                assert_eq!(
                    snap.epoch, self.graph_epoch,
                    "replay base checkpoint epoch must match the engine's graph epoch"
                );
                bf.restore_words(&snap.frontier, &snap.visited);
                (
                    snap.per_level_local,
                    snap.lane_completion,
                    snap.completed,
                    snap.boundary,
                    snap.busy,
                )
            }
            None => {
                for (lane, &src) in sources.iter().enumerate() {
                    if shard.is_local(src) {
                        bf.seed(src, lane);
                    }
                }
                (
                    Vec::new(),
                    vec![Duration::ZERO; lanes],
                    LaneMask::zero(width),
                    0u32,
                    Duration::ZERO,
                )
            }
        };
        for hop in from..target {
            let mut k_mask = LaneMask::zero(width);
            for (lane, &k) in ks.iter().enumerate() {
                if k > hop {
                    k_mask.set(lane);
                }
            }
            bf.mask_frontier(&k_mask);
            bf.scan(shard, self.delta(f), |_, _| {}); // peers already received these
            for (v, w) in store.logged_to(f, hop) {
                bf.absorb(v, &w);
            }
            let adv = bf.advance();
            per_level_local.push(adv.new_per_lane[..lanes].to_vec());
            let live = store
                .live_at(hop + 1)
                .expect("healthy machines recorded the live mask for every replayed boundary");
            let newly_done = all_lanes.and_not(&live).and_not(&completed);
            if !newly_done.is_zero() {
                let now = t0.elapsed();
                for lane in newly_done.iter_ones() {
                    lane_completion[lane] = now;
                }
                completed.or_assign(&newly_done);
            }
        }
        let replayed = u64::from(target - from);
        let (frontier, visited) = bf.snapshot_words();
        (
            PartitionSnapshot {
                boundary: target,
                lanes,
                epoch: self.graph_epoch,
                frontier,
                visited,
                per_level_local,
                lane_completion,
                completed,
                busy: busy + (cgraph_comm::thread_cpu_time() - cpu0),
            },
            replayed,
        )
    }

    /// One machine's share of a *recoverable* bit-frontier batch: like
    /// [`DistributedEngine::batch_worker`], but it resumes from the
    /// recovery store instead of seeding when a resume snapshot is
    /// installed, commits checkpoints at interval boundaries, logs
    /// outgoing frontier messages, and — on a poisoned barrier (a peer
    /// died) — saves its boundary state and returns `None` instead of
    /// panicking, so healthy partitions survive a peer's crash with
    /// their work intact.
    fn recoverable_worker(
        &self,
        sources: &[VertexId],
        ks: &[u32],
        interval: u32,
        store: &RecoveryStore,
        prune: Option<&PrunePlan>,
        h: CommHandle<EngineMsg>,
    ) -> Option<MachineOut> {
        let prune = prune.filter(|p| !p.is_empty());
        let wobs = self.worker_obs(&h);
        let lanes = sources.len();
        let width = LaneWidth::for_lanes(lanes);
        let all_lanes = LaneMask::all(lanes);
        let budget_mask = |hop: u32| {
            let mut m = LaneMask::zero(width);
            for (lane, &k) in ks.iter().enumerate() {
                if k > hop {
                    m.set(lane);
                }
            }
            m
        };
        let shard = &self.shards[h.id()];
        let delta = self.delta(h.id());
        let t0 = Instant::now();
        let cpu0 = cgraph_comm::thread_cpu_time();
        let mut bf = BitFrontier::new(shard, lanes);
        let (mut per_level_local, mut lane_completion, mut completed, mut hop, busy_base) =
            match store.take_resume(h.id()) {
                Some(snap) => {
                    assert_eq!(snap.lanes, lanes, "resume lane count must match the batch");
                    assert_eq!(
                        snap.epoch, self.graph_epoch,
                        "resume snapshot epoch must match the engine's graph epoch"
                    );
                    bf.restore_words(&snap.frontier, &snap.visited);
                    if let Some(w) = &wobs {
                        w.mo.tracer().instant("resume", w.mo.ctx_at(snap.boundary), 0);
                    }
                    (
                        snap.per_level_local,
                        snap.lane_completion,
                        snap.completed,
                        snap.boundary,
                        snap.busy,
                    )
                }
                None => {
                    for (lane, &src) in sources.iter().enumerate() {
                        if shard.is_local(src) {
                            bf.seed(src, lane);
                        }
                    }
                    (
                        Vec::new(),
                        vec![Duration::ZERO; lanes],
                        LaneMask::zero(width),
                        0u32,
                        Duration::ZERO,
                    )
                }
            };
        let snapshot = |bf: &BitFrontier,
                        boundary: u32,
                        per_level_local: &Vec<Vec<u64>>,
                        lane_completion: &Vec<Duration>,
                        completed: LaneMask,
                        busy: Duration| {
            let (frontier, visited) = bf.snapshot_words();
            PartitionSnapshot {
                boundary,
                lanes,
                epoch: self.graph_epoch,
                frontier,
                visited,
                per_level_local: per_level_local.clone(),
                lane_completion: lane_completion.clone(),
                completed,
                busy,
            }
        };
        let mut outbox: Vec<HashMap<u64, LaneMask>> =
            (0..h.num_machines()).map(|_| HashMap::new()).collect();
        // Scan work this attempt only (a resume does not re-count the
        // scans its snapshot's supersteps already performed).
        let mut scans = 0u64;
        let mut pruned_sends = 0u64;
        let mut pruned_partitions = 0u64;
        loop {
            // Boundary `hop`: commit *before* the fault point so that
            // a machine scripted to die at a commit boundary still
            // leaves a uniform committed set behind. The drop-counter
            // gate is uniform here: it is only mutated by sends, and
            // no machine is past this superstep's sends yet.
            if interval > 0 && hop > 0 && hop % interval == 0 && h.chaos_dropped() == 0 {
                let snap = snapshot(
                    &bf,
                    hop,
                    &per_level_local,
                    &lane_completion,
                    completed,
                    busy_base + (cgraph_comm::thread_cpu_time() - cpu0),
                );
                if let Some(w) = &wobs {
                    let bytes = ((snap.frontier.len() + snap.visited.len()) * 8) as u64;
                    w.h.checkpoint_bytes.add(bytes);
                    w.mo.tracer().instant("checkpoint_commit", w.mo.ctx_at(hop), bytes);
                }
                store.commit(h.id(), snap);
            }
            h.fault_point(hop);
            if let Some(w) = &wobs {
                w.superstep_enter(hop);
            }
            bf.mask_frontier(&budget_mask(hop));
            scans += bf.scan(shard, delta, |t, w| {
                let owner = self.partition.owner(t);
                outbox[owner].entry(t).or_insert_with(|| LaneMask::zero(width)).or_assign(w);
            });
            // Prune *before* logging so a replay re-absorbs exactly
            // what the original execution delivered (suppressed
            // deliveries were state no-ops and are never re-created).
            let keep_masks = prune.map(|p| p.keep_masks(hop + 1, width));
            for (m, buf) in outbox.iter_mut().enumerate() {
                if buf.is_empty() {
                    continue;
                }
                let batch: Vec<(u64, LaneMask)> = match &keep_masks {
                    Some(keep) => {
                        let before = buf.len();
                        let kept: Vec<(u64, LaneMask)> = buf
                            .drain()
                            .filter_map(|(t, w)| {
                                let w = w.and(&keep[m]);
                                (!w.is_zero()).then_some((t, w))
                            })
                            .collect();
                        let dropped = (before - kept.len()) as u64;
                        if dropped > 0 {
                            pruned_sends += dropped;
                            if kept.is_empty() {
                                pruned_partitions += 1;
                            }
                            if m != h.id() {
                                let bytes = dropped * (8 + 8 * width.words() as u64);
                                h.note_suppressed(u64::from(kept.is_empty()), bytes);
                            }
                        }
                        kept
                    }
                    None => buf.drain().collect(),
                };
                if !batch.is_empty() {
                    // Log before sending: the log must cover anything a
                    // replay could need to re-deliver.
                    store.log_merge(h.id(), hop, m, &batch);
                    h.send(m, EngineMsg::Frontier(batch));
                }
            }
            if h.try_barrier().is_err() {
                // A peer died during this superstep. Our frontier and
                // visited words still hold boundary `hop` (advance has
                // not run); only `next` holds partial scan results,
                // which a resume re-derives.
                bf.clear_next();
                if let Some(w) = &wobs {
                    w.mo.tracer().instant("save", w.mo.ctx_at(hop), 0);
                }
                store.save(
                    h.id(),
                    snapshot(
                        &bf,
                        hop,
                        &per_level_local,
                        &lane_completion,
                        completed,
                        busy_base + (cgraph_comm::thread_cpu_time() - cpu0),
                    ),
                );
                return None;
            }
            for env in h.drain() {
                if let EngineMsg::Frontier(batch) = env.payload {
                    for (v, w) in batch {
                        bf.absorb(v, &w);
                    }
                }
            }
            let adv = bf.advance();
            per_level_local.push(adv.new_per_lane[..lanes].to_vec());
            if let Some(w) = &wobs {
                w.superstep_exit(hop, adv.new_per_lane[..lanes].iter().sum());
            }
            let reduced = match h.try_barrier_reduce_words(adv.active_lanes.raw()) {
                Ok(words) => LaneMask::from_words(&words[..width.words()]),
                Err(_) => {
                    // Advance already ran: we are at boundary hop+1.
                    if let Some(w) = &wobs {
                        w.mo.tracer().instant("save", w.mo.ctx_at(hop + 1), 0);
                    }
                    store.save(
                        h.id(),
                        snapshot(
                            &bf,
                            hop + 1,
                            &per_level_local,
                            &lane_completion,
                            completed,
                            busy_base + (cgraph_comm::thread_cpu_time() - cpu0),
                        ),
                    );
                    return None;
                }
            };
            hop += 1;
            let live = reduced.and(&budget_mask(hop)).and(&all_lanes);
            // All machines record the identical post-reduce mask, so a
            // later replay can reconstruct completion bookkeeping.
            store.record_live(hop, live);
            let newly_done = all_lanes.and_not(&live).and_not(&completed);
            if !newly_done.is_zero() {
                let now = t0.elapsed();
                for lane in newly_done.iter_ones() {
                    lane_completion[lane] = now;
                }
                completed.or_assign(&newly_done);
            }
            if live.is_zero() {
                break;
            }
        }
        Some(MachineOut {
            supersteps: per_level_local.len() as u32,
            per_level_local,
            visited_local: bf.visited_per_lane()[..lanes].to_vec(),
            lane_completion,
            scans,
            busy: busy_base + (cgraph_comm::thread_cpu_time() - cpu0),
            probe_levels: Vec::new(),
            pruned_sends,
            pruned_partitions,
        })
    }

    /// Rebuilds this engine's graph onto `num_machines` machines — the
    /// service's graceful-degradation path after repeated failures of
    /// the same machine index. The edge list is reconstructed from the
    /// shards (the engine does not retain the original input); any live
    /// delta overlay is folded in, so the degraded engine serves the
    /// same logical snapshot — degradation changes the physical layout,
    /// never the epoch.
    pub fn repartitioned(&self, num_machines: usize) -> DistributedEngine {
        assert!(num_machines >= 1, "cannot degrade below one machine");
        let mut edges = EdgeList::new();
        for (m, shard) in self.shards.iter().enumerate() {
            for v in shard.local_range().iter() {
                for (t, w) in self.deltas[m].merge_row(v, &shard.out_neighbors_weighted(v)) {
                    edges.push(Edge::weighted(v, t, w));
                }
            }
        }
        edges.set_num_vertices(self.num_vertices());
        let mut e = DistributedEngine::new(&edges, EngineConfig { num_machines, ..self.config });
        e.graph_epoch = self.graph_epoch;
        e
    }

    // ------------------------------------------------------------------
    // Queue-based traversal (Listing 2)
    // ------------------------------------------------------------------

    /// Runs one k-hop query through the queue-based `Traverse` path,
    /// honouring [`EngineConfig::mode`] (sync supersteps or async
    /// free-running).
    pub fn run_single_queue(
        &self,
        sources: &[VertexId],
        k: u32,
        value_mode: ValueMode,
    ) -> SingleResult {
        match self.config.mode {
            UpdateMode::Sync => self.run_single_queue_sync(sources, k, value_mode),
            UpdateMode::Async => self.run_single_queue_async(sources, k),
        }
    }

    fn run_single_queue_sync(
        &self,
        sources: &[VertexId],
        k: u32,
        value_mode: ValueMode,
    ) -> SingleResult {
        struct MachineOut {
            visited: u64,
            per_level: Vec<u64>,
            supersteps: u64,
            peak_entries: usize,
        }
        let start = Instant::now();
        let (outs, traffic) = self.cluster().run::<EngineMsg, MachineOut, _>(|h| {
            let shard = &self.shards[h.id()];
            let delta = self.delta(h.id());
            let mut qt = QueueTraversal::new(shard, k, value_mode);
            let mut seeded = 0u64;
            for &s in sources {
                if shard.is_local(s) {
                    qt.seed(s);
                    seeded += 1;
                }
            }
            let mut per_level = vec![seeded];
            let mut peak_entries = qt.live_value_entries();
            let mut outbox: Vec<Vec<(u64, u32)>> =
                (0..h.num_machines()).map(|_| Vec::new()).collect();
            let mut supersteps = 0u64;
            loop {
                let mut new_local = qt.step(shard, delta, |v, d| {
                    outbox[self.partition.owner(v)].push((v, d));
                });
                for (m, buf) in outbox.iter_mut().enumerate() {
                    if !buf.is_empty() {
                        h.send(m, EngineMsg::Task(std::mem::take(buf)));
                    }
                }
                h.barrier();
                for env in h.drain() {
                    if let EngineMsg::Task(batch) = env.payload {
                        for (v, d) in batch {
                            if qt.absorb(v, d) {
                                new_local += 1;
                            }
                        }
                    }
                }
                per_level.push(new_local);
                let qsize = qt.advance_level() as u64;
                peak_entries = peak_entries.max(qt.live_value_entries());
                supersteps += 1;
                if h.barrier_sum(qsize) == 0 {
                    break;
                }
            }
            MachineOut { visited: qt.visited_count(), per_level, supersteps, peak_entries }
        });
        let exec_time = start.elapsed();
        let levels = outs.iter().map(|o| o.per_level.len()).max().unwrap_or(0);
        let mut per_level = vec![0u64; levels];
        for o in &outs {
            for (i, &c) in o.per_level.iter().enumerate() {
                per_level[i] += c;
            }
        }
        while per_level.len() > 1 && *per_level.last().unwrap() == 0 {
            per_level.pop();
        }
        SingleResult {
            visited: outs.iter().map(|o| o.visited).sum(),
            per_level,
            supersteps: outs[0].supersteps,
            exec_time,
            traffic,
            peak_value_entries: outs.iter().map(|o| o.peak_entries).max().unwrap_or(0),
        }
    }

    /// Asynchronous k-hop: label-correcting expansion with eager sends
    /// and quiescence-based termination. Depths may be improved after a
    /// first visit (a vertex reached at depth 3 and later at depth 2 is
    /// re-expanded), which keeps the reachable set exact without
    /// supersteps.
    fn run_single_queue_async(&self, sources: &[VertexId], k: u32) -> SingleResult {
        struct MachineOut {
            visited: u64,
            tasks: u64,
            per_level: Vec<u64>,
        }
        let start = Instant::now();
        let (outs, traffic) = self.cluster().run::<EngineMsg, MachineOut, _>(|h| {
            let shard = &self.shards[h.id()];
            let delta = self.delta(h.id());
            let base = shard.local_range().start;
            let n_local = shard.num_local();
            let mut depth = vec![u32::MAX; n_local];
            let mut queue: Vec<(u64, u32)> = Vec::new();
            for &s in sources {
                if shard.is_local(s) {
                    depth[(s - base) as usize] = 0;
                    queue.push((s, 0));
                }
            }
            let mut tasks = 0u64;
            loop {
                // Prefer local work.
                if let Some((v, d)) = queue.pop() {
                    h.set_idle(false);
                    tasks += 1;
                    if d < k {
                        let nd = d + 1;
                        let drow = delta.and_then(|dl| dl.row(v));
                        let dels = drow.map(|r| r.deletes()).filter(|s| !s.is_empty());
                        for set in shard.out_sets().sets() {
                            for &t in set.neighbors(v) {
                                if let Some(dels) = dels {
                                    if dels.binary_search(&t).is_ok() {
                                        continue;
                                    }
                                }
                                if shard.is_local(t) {
                                    let l = (t - base) as usize;
                                    if nd < depth[l] {
                                        depth[l] = nd;
                                        queue.push((t, nd));
                                    }
                                } else {
                                    h.send(self.partition.owner(t), EngineMsg::Task(vec![(t, nd)]));
                                }
                            }
                        }
                        if let Some(drow) = drow {
                            for &(t, _) in drow.inserts() {
                                if shard.is_local(t) {
                                    let l = (t - base) as usize;
                                    if nd < depth[l] {
                                        depth[l] = nd;
                                        queue.push((t, nd));
                                    }
                                } else {
                                    h.send(self.partition.owner(t), EngineMsg::Task(vec![(t, nd)]));
                                }
                            }
                        }
                    }
                    continue;
                }
                // Queue empty: poll the inbox.
                match h.try_recv() {
                    Some(env) => {
                        // Mark busy *before* acknowledging, so the
                        // cluster can't look quiescent while the work
                        // this message carries is still in our queue.
                        h.set_idle(false);
                        if let EngineMsg::Task(batch) = env.payload {
                            for (v, d) in batch {
                                let l = (v - base) as usize;
                                if d < depth[l] {
                                    depth[l] = d;
                                    queue.push((v, d));
                                }
                            }
                        }
                        h.message_processed();
                    }
                    None => {
                        h.set_idle(true);
                        if h.quiescent() {
                            break;
                        }
                        std::thread::yield_now();
                    }
                }
            }
            let mut per_level = vec![0u64; k.saturating_add(1).min(1_000_000) as usize];
            let mut visited = 0u64;
            for &d in &depth {
                if d != u32::MAX {
                    visited += 1;
                    if (d as usize) < per_level.len() {
                        per_level[d as usize] += 1;
                    }
                }
            }
            MachineOut { visited, tasks, per_level }
        });
        let exec_time = start.elapsed();
        let levels = outs.iter().map(|o| o.per_level.len()).max().unwrap_or(0);
        let mut per_level = vec![0u64; levels];
        for o in &outs {
            for (i, &c) in o.per_level.iter().enumerate() {
                per_level[i] += c;
            }
        }
        while per_level.len() > 1 && *per_level.last().unwrap() == 0 {
            per_level.pop();
        }
        SingleResult {
            visited: outs.iter().map(|o| o.visited).sum(),
            per_level,
            supersteps: outs.iter().map(|o| o.tasks).sum(),
            exec_time,
            traffic,
            peak_value_entries: 0,
        }
    }

    /// Queue-based k-hop with **local chaining**: within one superstep
    /// each machine expands its local queue *transitively* (not just
    /// one level), so a superstep is only needed when the traversal
    /// crosses a partition boundary. This is the property that makes
    /// the partition-centric model "generally require fewer supersteps
    /// to converge compared to the vertex-centric model" (§3.3).
    ///
    /// Local chaining can first reach a vertex via a longer local path
    /// than its true distance, so depths are label-correcting: an
    /// improvement re-expands the vertex. Results (visited set and
    /// per-level counts) are exactly those of the level-synchronous
    /// path.
    pub fn run_single_queue_chained(&self, sources: &[VertexId], k: u32) -> SingleResult {
        struct MachineOut {
            depth: Vec<u32>,
            supersteps: u64,
        }
        let start = Instant::now();
        let (outs, traffic) = self.cluster().run::<EngineMsg, MachineOut, _>(|h| {
            let shard = &self.shards[h.id()];
            let delta = self.delta(h.id());
            let base = shard.local_range().start;
            let mut depth = vec![u32::MAX; shard.num_local()];
            let mut queue: Vec<(u64, u32)> = Vec::new();
            for &s in sources {
                if shard.is_local(s) {
                    depth[(s - base) as usize] = 0;
                    queue.push((s, 0));
                }
            }
            let mut outbox: Vec<Vec<(u64, u32)>> =
                (0..h.num_machines()).map(|_| Vec::new()).collect();
            let mut supersteps = 0u64;
            loop {
                // Drain the local queue transitively (the chain).
                while let Some((v, d)) = queue.pop() {
                    if d > depth[(v - base) as usize] || d >= k {
                        continue; // stale or budget exhausted
                    }
                    let nd = d + 1;
                    let drow = delta.and_then(|dl| dl.row(v));
                    let dels = drow.map(|r| r.deletes()).filter(|s| !s.is_empty());
                    for set in shard.out_sets().sets() {
                        for &t in set.neighbors(v) {
                            if let Some(dels) = dels {
                                if dels.binary_search(&t).is_ok() {
                                    continue;
                                }
                            }
                            if shard.is_local(t) {
                                let l = (t - base) as usize;
                                if nd < depth[l] {
                                    depth[l] = nd;
                                    queue.push((t, nd));
                                }
                            } else {
                                outbox[self.partition.owner(t)].push((t, nd));
                            }
                        }
                    }
                    if let Some(drow) = drow {
                        for &(t, _) in drow.inserts() {
                            if shard.is_local(t) {
                                let l = (t - base) as usize;
                                if nd < depth[l] {
                                    depth[l] = nd;
                                    queue.push((t, nd));
                                }
                            } else {
                                outbox[self.partition.owner(t)].push((t, nd));
                            }
                        }
                    }
                }
                // Exchange boundary tasks; superstep boundary.
                let mut sent = 0u64;
                for (m, buf) in outbox.iter_mut().enumerate() {
                    if !buf.is_empty() {
                        sent += buf.len() as u64;
                        h.send(m, EngineMsg::Task(std::mem::take(buf)));
                    }
                }
                h.barrier();
                for env in h.drain() {
                    if let EngineMsg::Task(batch) = env.payload {
                        for (v, d) in batch {
                            let l = (v - base) as usize;
                            if d < depth[l] {
                                depth[l] = d;
                                queue.push((v, d));
                            }
                        }
                    }
                }
                supersteps += 1;
                if h.barrier_sum(sent + queue.len() as u64) == 0 {
                    break;
                }
            }
            MachineOut { depth, supersteps }
        });
        let exec_time = start.elapsed();
        let mut per_level = vec![0u64; 1];
        let mut visited = 0u64;
        for o in &outs {
            for &d in &o.depth {
                if d != u32::MAX {
                    visited += 1;
                    if d as usize >= per_level.len() {
                        per_level.resize(d as usize + 1, 0);
                    }
                    per_level[d as usize] += 1;
                }
            }
        }
        SingleResult {
            visited,
            per_level,
            supersteps: outs[0].supersteps,
            exec_time,
            traffic,
            peak_value_entries: 0,
        }
    }

    // ------------------------------------------------------------------
    // GAS iterative computation (Listing 3)
    // ------------------------------------------------------------------

    /// Runs `iterations` of a GAS program (e.g. [`crate::gas::PageRank`])
    /// over the partitioned graph. Requires shards built with in-edges.
    pub fn run_gas<G: Gas>(&self, gas: &G, iterations: u32) -> GasResult {
        assert!(
            self.shards.iter().all(Shard::has_in_edges),
            "run_gas requires EngineConfig::build_in_edges"
        );
        // The CSC (in-edge) view is only refreshed when a commit folds,
        // so GAS over a live overlay would silently read stale in-edges.
        assert!(
            !self.has_delta(),
            "run_gas reads base CSR/CSC only; fold the delta overlay first (commit past the fold threshold)"
        );
        let n = self.partition.num_vertices();
        let start = Instant::now();
        let (outs, traffic) = self.cluster().run::<EngineMsg, (Vec<f64>, Duration), _>(|h| {
            let cpu0 = cgraph_comm::thread_cpu_time();
            let shard = &self.shards[h.id()];
            let local = shard.local_range();
            let base = local.start;
            // Local vertex values + a global scatter view refreshed per
            // iteration (the "local read" synchronisation of §3.3).
            let mut values: Vec<f64> = local.iter().map(|v| gas.init(v, n)).collect();
            let mut scatter = vec![0.0f64; n as usize];

            // Broadcast initial scatter values.
            let publish =
                |h: &cgraph_comm::CommHandle<EngineMsg>, values: &[f64], scatter: &mut Vec<f64>| {
                    let pairs: Vec<(u64, u64)> = values
                        .iter()
                        .enumerate()
                        .map(|(l, &val)| {
                            let v = base + l as u64;
                            let s = gas.scatter(v, val, shard.global_out_degree(v));
                            (v, s.to_bits())
                        })
                        .collect();
                    for (v, bits) in &pairs {
                        scatter[*v as usize] = f64::from_bits(*bits);
                    }
                    for m in 0..h.num_machines() {
                        if m != h.id() {
                            h.send(m, EngineMsg::Ranks(pairs.clone()));
                        }
                    }
                };
            let absorb = |h: &cgraph_comm::CommHandle<EngineMsg>, scatter: &mut Vec<f64>| {
                for env in h.drain() {
                    if let EngineMsg::Ranks(batch) = env.payload {
                        for (v, bits) in batch {
                            scatter[v as usize] = f64::from_bits(bits);
                        }
                    }
                }
            };

            publish(&h, &values, &mut scatter);
            h.barrier();
            absorb(&h, &mut scatter);
            h.barrier();

            for _ in 0..iterations {
                // Gather + apply over local vertices. Sequential per
                // machine: the machine thread *is* the processing unit,
                // which keeps per-thread CPU accounting exact (a shared
                // rayon pool would let machines steal each other's work
                // and corrupt the busy-time metric).
                let in_edges = shard.in_edges();
                let new_values: Vec<f64> = (0..values.len())
                    .map(|l| {
                        let v = base + l as u64;
                        let mut sum = 0.0;
                        for (src, w) in in_edges.in_neighbors_weighted(v) {
                            sum = gas.gather(sum, scatter[src as usize], w);
                        }
                        gas.apply(v, sum)
                    })
                    .collect();
                values = new_values;
                publish(&h, &values, &mut scatter);
                h.barrier();
                absorb(&h, &mut scatter);
                h.barrier();
            }
            (values, cgraph_comm::thread_cpu_time() - cpu0)
        });
        let exec_time = start.elapsed();
        let mut values = vec![0.0f64; n as usize];
        let mut per_machine_busy = Vec::with_capacity(outs.len());
        for (i, (local_vals, busy)) in outs.into_iter().enumerate() {
            let range = self.partition.range(i);
            for (l, v) in local_vals.into_iter().enumerate() {
                values[(range.start + l as u64) as usize] = v;
            }
            per_machine_busy.push(busy);
        }
        GasResult { values, iterations, exec_time, per_machine_busy, traffic }
    }

    // ------------------------------------------------------------------
    // Partition-centric programs (Listing 1)
    // ------------------------------------------------------------------

    /// Runs a partition-centric program to global termination and
    /// returns each partition's output.
    pub fn run_program<P, F>(&self, factory: F) -> Vec<P::Out>
    where
        P: PartitionProgram,
        F: Fn(usize) -> P + Sync,
        P::Out: Send,
    {
        let (outs, _traffic) = self.cluster().run::<EngineMsg, P::Out, _>(|h| {
            let shard = &self.shards[h.id()];
            let mut program = factory(h.id());
            let mut ctx = PartitionCtx::new(shard, &self.partition);
            program.init(&mut ctx);
            loop {
                // Flush staged sends, grouped by owner.
                let staged = ctx.take_outbox();
                let sent = staged.len() as u64;
                let mut per_owner: Vec<Vec<(u64, u64)>> =
                    (0..h.num_machines()).map(|_| Vec::new()).collect();
                for (v, msg) in staged {
                    per_owner[self.partition.owner(v)].push((v, msg));
                }
                for (m, buf) in per_owner.into_iter().enumerate() {
                    if !buf.is_empty() {
                        h.send(m, EngineMsg::Pcm(buf));
                    }
                }
                let active = u64::from(!ctx.halted());
                let total = h.barrier_sum(sent + active);
                // Pregel-style aggregator: one extra reduce per
                // superstep, delivered before the next compute.
                let aggregate = h.barrier_sum(program.aggregate_contribution());
                program.receive_aggregate(aggregate);
                let mut incoming: Vec<(VertexId, u64)> = Vec::new();
                for env in h.drain() {
                    if let EngineMsg::Pcm(batch) = env.payload {
                        incoming.extend(batch);
                    }
                }
                if total == 0 {
                    break;
                }
                if !incoming.is_empty() {
                    ctx.un_halt();
                }
                if !ctx.halted() {
                    ctx.advance_superstep();
                    program.compute(&mut ctx, &incoming);
                }
            }
            program.finish(&ctx)
        });
        outs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gas::PageRank;
    use cgraph_graph::ConsolidationPolicy;

    fn ring(n: u64) -> EdgeList {
        (0..n).map(|v| (v, (v + 1) % n)).collect()
    }

    fn engine(edges: &EdgeList, p: usize) -> DistributedEngine {
        DistributedEngine::new(edges, EngineConfig::new(p))
    }

    #[test]
    fn batch_khop_on_ring() {
        let g = ring(20);
        let e = engine(&g, 3);
        let r = e.run_traversal_batch(&[0, 10], &[3, 5]).unwrap();
        // Ring: k hops reach exactly k new vertices.
        assert_eq!(r.per_lane_visited, vec![4, 6]);
        assert_eq!(r.per_level[0], vec![1, 1]);
        assert_eq!(r.per_level[1], vec![1, 1]);
        assert_eq!(r.per_level.len(), 6); // hops 0..=5
        assert_eq!(r.per_level[4], vec![0, 1]); // lane 0 exhausted at k=3
    }

    #[test]
    fn batch_bfs_covers_component() {
        let g = ring(30);
        let e = engine(&g, 4);
        let r = e.run_traversal_batch(&[5], &[u32::MAX]).unwrap();
        assert_eq!(r.per_lane_visited, vec![30]);
        assert_eq!(r.supersteps, 30); // 29 hops + final empty check
    }

    #[test]
    fn batch_matches_queue_single() {
        let g = cgraph_gen::graph500(9, 8, 12);
        let mut b = cgraph_graph::GraphBuilder::new();
        b.add_edge_list(&g);
        let g = b.build().edges;
        let e = engine(&g, 3);
        for src in [1u64, 7, 100] {
            let qr = e.run_single_queue(&[src], 3, ValueMode::TwoLevel);
            let br = e.run_traversal_batch(&[src], &[3]).unwrap();
            assert_eq!(br.per_lane_visited[0], qr.visited, "src {src}");
        }
    }

    #[test]
    fn sync_and_async_agree() {
        let g = cgraph_gen::graph500(8, 6, 5);
        let mut b = cgraph_graph::GraphBuilder::new();
        b.add_edge_list(&g);
        let g = b.build().edges;
        let sync_e = DistributedEngine::new(&g, EngineConfig::new(3));
        let async_e = DistributedEngine::new(&g, EngineConfig::new(3).asynchronous());
        for src in [0u64, 3, 50] {
            let s = sync_e.run_single_queue(&[src], 4, ValueMode::TwoLevel);
            let a = async_e.run_single_queue(&[src], 4, ValueMode::TwoLevel);
            assert_eq!(s.visited, a.visited, "src {src}");
            assert_eq!(s.per_level, a.per_level, "src {src}");
        }
    }

    #[test]
    fn multi_source_queue_query() {
        let g = ring(20);
        let e = engine(&g, 2);
        let r = e.run_single_queue(&[0, 10], 2, ValueMode::TwoLevel);
        assert_eq!(r.visited, 6); // two disjoint 3-vertex arcs
        assert_eq!(r.per_level, vec![2, 2, 2]);
    }

    #[test]
    fn pagerank_sums_preserved_shape() {
        // On a ring every vertex is symmetric: all ranks equal 1.0
        // under Listing 3's formula.
        let g = ring(12);
        let e = engine(&g, 3);
        let r = e.run_gas(&PageRank::default(), 20);
        for (v, val) in r.values.iter().enumerate() {
            assert!((val - 1.0).abs() < 1e-6, "vertex {v} rank {val}");
        }
    }

    #[test]
    fn pagerank_machine_count_invariant() {
        let g = cgraph_gen::graph500(8, 6, 3);
        let mut b = cgraph_graph::GraphBuilder::new();
        b.add_edge_list(&g);
        let g = b.build().edges;
        let r1 = DistributedEngine::new(&g, EngineConfig::new(1)).run_gas(&PageRank::default(), 10);
        let r4 = DistributedEngine::new(&g, EngineConfig::new(4)).run_gas(&PageRank::default(), 10);
        for (a, b) in r1.values.iter().zip(&r4.values) {
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
    }

    #[test]
    fn traffic_reported_for_cross_machine_runs() {
        let g = ring(20);
        let e = engine(&g, 4);
        let r = e.run_traversal_batch(&[0], &[u32::MAX]).unwrap();
        assert!(r.traffic.total_msgs() > 0, "ring BFS must cross machines");
    }

    #[test]
    fn chained_matches_level_synchronous() {
        let g = cgraph_gen::graph500(9, 8, 44);
        let mut b = cgraph_graph::GraphBuilder::new();
        b.add_edge_list(&g);
        let g = b.build().edges;
        let e = engine(&g, 3);
        for src in [0u64, 9, 77] {
            for k in [1u32, 3, u32::MAX] {
                let level = e.run_single_queue(&[src], k, ValueMode::TwoLevel);
                let chained = e.run_single_queue_chained(&[src], k);
                assert_eq!(chained.visited, level.visited, "src {src} k {k}");
                assert_eq!(chained.per_level, level.per_level, "src {src} k {k}");
            }
        }
    }

    #[test]
    fn chaining_needs_fewer_supersteps_than_level_sync() {
        // A long ring split over 2 machines: level-synchronous BFS
        // needs ~one superstep per hop (ring length), while the chained
        // partition-centric traversal needs ~one per boundary crossing
        // (a handful) — the §3.3 "fewer supersteps" claim.
        let g: EdgeList = (0..200u64).map(|v| (v, (v + 1) % 200)).collect();
        let e = engine(&g, 2);
        let level = e.run_single_queue(&[0], u32::MAX, ValueMode::TwoLevel);
        let chained = e.run_single_queue_chained(&[0], u32::MAX);
        assert_eq!(level.visited, chained.visited);
        assert!(
            chained.supersteps * 10 < level.supersteps,
            "chained {} vs level-sync {}",
            chained.supersteps,
            level.supersteps
        );
    }

    #[test]
    fn recoverable_matches_plain_batch_without_faults() {
        let g = cgraph_gen::graph500(9, 8, 12);
        let mut b = cgraph_graph::GraphBuilder::new();
        b.add_edge_list(&g);
        let g = b.build().edges;
        let e = engine(&g, 3);
        let cluster = PersistentCluster::new(3);
        let plain = e.run_traversal_batch(&[1, 7, 100], &[3, 5, 2]).unwrap();
        let (rec, report) = e
            .run_traversal_batch_recoverable(
                &cluster,
                &[1, 7, 100],
                &[3, 5, 2],
                &RecoveryConfig::default(),
                None,
            )
            .unwrap();
        assert_eq!(rec.per_lane_visited, plain.per_lane_visited);
        assert_eq!(rec.per_level, plain.per_level);
        assert_eq!(report.attempts, 1);
        assert_eq!(report.recoveries, 0);
        assert!(report.checkpoints_taken > 0, "long batch must commit checkpoints");
    }

    #[test]
    fn confined_replay_recovers_crash_with_identical_result() {
        let g = ring(64);
        let e = engine(&g, 4);
        let cluster = PersistentCluster::new(4);
        let expect = e.run_traversal_batch(&[0, 16], &[12, 20]).unwrap();
        // Machine 0 dies at superstep 7 on the first attempt only.
        let plan = FaultPlan::new(5).crash(0, 7).heal_after(1);
        let cfg = RecoveryConfig { checkpoint_interval: 3, max_recoveries: 2 };
        let fault = FaultInjection { plan: &plan, job: 0, first_attempt: 0 };
        let (rec, report) = e
            .run_traversal_batch_recoverable(&cluster, &[0, 16], &[12, 20], &cfg, Some(fault))
            .unwrap();
        assert_eq!(rec.per_lane_visited, expect.per_lane_visited);
        assert_eq!(rec.per_level, expect.per_level);
        assert_eq!(report.attempts, 2);
        assert_eq!(report.recoveries, 1);
        assert_eq!(report.full_rollbacks, 0, "crash must take the confined path");
        assert_eq!(report.partitions_replayed, 1);
        assert!(report.checkpoints_restored >= 1, "replay must start from a checkpoint");
        // Replay runs from boundary 6 (last committed) to 7 — exactly
        // one superstep, not seven: healthy work is never re-executed.
        assert_eq!(report.supersteps_replayed, 1);
    }

    #[test]
    fn crash_before_first_checkpoint_replays_from_scratch_confined() {
        let g = ring(40);
        let e = engine(&g, 2);
        let cluster = PersistentCluster::new(2);
        let expect = e.run_traversal_batch(&[0], &[10]).unwrap();
        let plan = FaultPlan::new(2).crash(1, 2).heal_after(1);
        let cfg = RecoveryConfig { checkpoint_interval: 8, max_recoveries: 2 };
        let fault = FaultInjection { plan: &plan, job: 0, first_attempt: 0 };
        let (rec, report) =
            e.run_traversal_batch_recoverable(&cluster, &[0], &[10], &cfg, Some(fault)).unwrap();
        assert_eq!(rec.per_lane_visited, expect.per_lane_visited);
        assert_eq!(report.recoveries, 1);
        assert_eq!(report.partitions_replayed, 1);
        assert_eq!(report.checkpoints_restored, 0, "no checkpoint existed yet");
        assert_eq!(report.supersteps_replayed, 2, "replay re-runs supersteps 0 and 1");
    }

    #[test]
    fn message_loss_triggers_global_rollback_with_correct_result() {
        let g = ring(48);
        let e = engine(&g, 3);
        let cluster = PersistentCluster::new(3);
        let expect = e.run_traversal_batch(&[0, 24], &[15, 15]).unwrap();
        let plan = FaultPlan::new(77).with_drop(0.3).heal_after(1);
        let cfg = RecoveryConfig { checkpoint_interval: 4, max_recoveries: 2 };
        let fault = FaultInjection { plan: &plan, job: 0, first_attempt: 0 };
        let (rec, report) = e
            .run_traversal_batch_recoverable(&cluster, &[0, 24], &[15, 15], &cfg, Some(fault))
            .unwrap();
        assert_eq!(rec.per_lane_visited, expect.per_lane_visited);
        assert_eq!(rec.per_level, expect.per_level);
        assert!(report.full_rollbacks >= 1, "lossy plans must not take the confined path");
    }

    #[test]
    fn async_mode_recovers_by_reexecution() {
        let g = ring(30);
        let e = DistributedEngine::new(&g, EngineConfig::new(2).asynchronous());
        let cluster = PersistentCluster::new(2);
        let plan = FaultPlan::new(9).crash(0, 3).heal_after(1);
        let fault = FaultInjection { plan: &plan, job: 0, first_attempt: 0 };
        let (rec, report) = e
            .run_traversal_batch_recoverable(
                &cluster,
                &[0],
                &[8],
                &RecoveryConfig::default(),
                Some(fault),
            )
            .unwrap();
        assert_eq!(rec.per_lane_visited, vec![9]);
        assert_eq!(report.recoveries, 1);
        assert_eq!(report.full_rollbacks, 1, "async has no confined path");
        assert_eq!(report.checkpoints_taken, 0);
    }

    #[test]
    fn unhealed_crash_exhausts_recoveries() {
        let g = ring(30);
        let e = engine(&g, 2);
        let cluster = PersistentCluster::new(2);
        let plan = FaultPlan::new(4).crash(0, 1); // never heals
        let cfg = RecoveryConfig { checkpoint_interval: 4, max_recoveries: 2 };
        let fault = FaultInjection { plan: &plan, job: 0, first_attempt: 0 };
        let err = e
            .run_traversal_batch_recoverable(&cluster, &[0], &[10], &cfg, Some(fault))
            .unwrap_err();
        assert!(matches!(err, EngineError::Cluster(ClusterError::MachinePanicked { .. })));
        // Cluster still serves the next (clean) batch.
        let (ok, report) =
            e.run_traversal_batch_recoverable(&cluster, &[0], &[10], &cfg, None).unwrap();
        assert_eq!(ok.per_lane_visited, vec![11]);
        assert_eq!(report.attempts, 1);
    }

    #[test]
    fn single_machine_crash_rolls_back_globally() {
        // p=1: no healthy peer can save state, so recovery must fall
        // back to a rollback onto the committed checkpoint.
        let g = ring(40);
        let e = engine(&g, 1);
        let cluster = PersistentCluster::new(1);
        let plan = FaultPlan::new(6).crash(0, 9).heal_after(1);
        let cfg = RecoveryConfig { checkpoint_interval: 4, max_recoveries: 2 };
        let fault = FaultInjection { plan: &plan, job: 0, first_attempt: 0 };
        let (rec, report) =
            e.run_traversal_batch_recoverable(&cluster, &[0], &[20], &cfg, Some(fault)).unwrap();
        assert_eq!(rec.per_lane_visited, vec![21]);
        assert_eq!(report.full_rollbacks, 1);
        assert!(report.checkpoints_restored >= 1, "rollback must reuse the boundary-8 commit");
    }

    #[test]
    fn repartitioned_engine_preserves_results() {
        let g = cgraph_gen::graph500(8, 6, 21);
        let mut b = cgraph_graph::GraphBuilder::new();
        b.add_edge_list(&g);
        let g = b.build().edges;
        let e4 = engine(&g, 4);
        let e3 = e4.repartitioned(3);
        assert_eq!(e3.num_machines(), 3);
        assert_eq!(e3.num_vertices(), e4.num_vertices());
        for src in [0u64, 9, 77] {
            let a = e4.run_traversal_batch(&[src], &[4]).unwrap();
            let b = e3.run_traversal_batch(&[src], &[4]).unwrap();
            assert_eq!(a.per_lane_visited, b.per_lane_visited, "src {src}");
            assert_eq!(a.per_level, b.per_level, "src {src}");
        }
    }

    #[test]
    fn batch_shape_errors_are_typed() {
        let g = ring(20);
        let e = engine(&g, 2);
        assert_eq!(
            e.run_traversal_batch(&[], &[]).unwrap_err(),
            EngineError::BadLaneCount { lanes: 0, max: MAX_LANES }
        );
        let too_many = vec![0u64; MAX_LANES + 1];
        let too_many_ks = vec![1u32; MAX_LANES + 1];
        assert_eq!(
            e.run_traversal_batch(&too_many, &too_many_ks).unwrap_err(),
            EngineError::BadLaneCount { lanes: MAX_LANES + 1, max: MAX_LANES }
        );
        assert_eq!(
            e.run_traversal_batch(&[0, 1], &[3]).unwrap_err(),
            EngineError::LaneBudgetMismatch { sources: 2, ks: 1 }
        );
        // Satellite fix: an out-of-range source seeds no shard, so it
        // must be rejected instead of silently counted at level 0.
        assert_eq!(
            e.run_traversal_batch(&[5, 99], &[3, 3]).unwrap_err(),
            EngineError::SourceOutOfRange { lane: 1, source: 99, num_vertices: 20 }
        );
        assert!(!e.run_traversal_batch(&[5, 99], &[3, 3]).unwrap_err().is_recoverable());
    }

    #[test]
    fn wide_batch_matches_chunked_64_lane_batches() {
        // 130 lanes (width 256) in one batch vs three 64-lane chunks:
        // per-lane visited and per-level counts must be bit-identical.
        let g = cgraph_gen::graph500(9, 8, 31);
        let mut b = cgraph_graph::GraphBuilder::new();
        b.add_edge_list(&g);
        let g = b.build().edges;
        let e = engine(&g, 3);
        let n = e.num_vertices();
        let sources: Vec<u64> = (0..130u64).map(|i| (i * 37) % n).collect();
        let ks: Vec<u32> = (0..130u32).map(|i| 1 + i % 5).collect();
        let wide = e.run_traversal_batch(&sources, &ks).unwrap();
        assert_eq!(wide.lanes, 130);
        for (chunk_idx, (sc, kc)) in sources.chunks(64).zip(ks.chunks(64)).enumerate() {
            let narrow = e.run_traversal_batch(sc, kc).unwrap();
            let off = chunk_idx * 64;
            for lane in 0..sc.len() {
                assert_eq!(
                    wide.per_lane_visited[off + lane],
                    narrow.per_lane_visited[lane],
                    "lane {}",
                    off + lane
                );
            }
            for (h, row) in narrow.per_level.iter().enumerate() {
                for (lane, &c) in row.iter().enumerate() {
                    let wide_c = wide.per_level.get(h).map_or(0, |r| r[off + lane]);
                    assert_eq!(wide_c, c, "hop {h} lane {}", off + lane);
                }
            }
        }
    }

    #[test]
    fn wider_batch_scans_fewer_rows_per_query() {
        // The point of width: one shared scan serves more queries, so
        // scans per query must not grow with lane count.
        let g = cgraph_gen::graph500(10, 8, 5);
        let mut b = cgraph_graph::GraphBuilder::new();
        b.add_edge_list(&g);
        let g = b.build().edges;
        let e = engine(&g, 2);
        let n = e.num_vertices();
        let sources: Vec<u64> = (0..128u64).map(|i| (i * 101) % n).collect();
        let ks = vec![4u32; 128];
        let wide = e.run_traversal_batch(&sources, &ks).unwrap();
        let mut chunked_scans = 0u64;
        for (sc, kc) in sources.chunks(64).zip(ks.chunks(64)) {
            chunked_scans += e.run_traversal_batch(sc, kc).unwrap().scans;
        }
        assert!(wide.scans > 0);
        assert!(
            wide.scans <= chunked_scans,
            "wide batch scanned {} rows vs {} for two 64-lane chunks",
            wide.scans,
            chunked_scans
        );
    }

    #[test]
    fn recoverable_wide_batch_survives_crash() {
        let g = ring(64);
        let e = engine(&g, 4);
        let cluster = PersistentCluster::new(4);
        let sources: Vec<u64> = (0..96u64).map(|i| (i * 5) % 64).collect();
        let ks = vec![10u32; 96];
        let expect = e.run_traversal_batch(&sources, &ks).unwrap();
        let plan = FaultPlan::new(11).crash(2, 5).heal_after(1);
        let cfg = RecoveryConfig { checkpoint_interval: 3, max_recoveries: 2 };
        let fault = FaultInjection { plan: &plan, job: 0, first_attempt: 0 };
        let (rec, report) =
            e.run_traversal_batch_recoverable(&cluster, &sources, &ks, &cfg, Some(fault)).unwrap();
        assert_eq!(rec.per_lane_visited, expect.per_lane_visited);
        assert_eq!(rec.per_level, expect.per_level);
        assert_eq!(report.recoveries, 1);
        assert_eq!(report.full_rollbacks, 0, "wide crash must take the confined path");
    }

    #[test]
    fn flat_edge_set_policy_equivalent() {
        let g = cgraph_gen::graph500(8, 4, 7);
        let mut b = cgraph_graph::GraphBuilder::new();
        b.add_edge_list(&g);
        let g = b.build().edges;
        let blocked = DistributedEngine::new(&g, EngineConfig::new(2));
        let flat = DistributedEngine::new(
            &g,
            EngineConfig::new(2).with_edge_set_policy(ConsolidationPolicy::flat()),
        );
        let rb = blocked.run_traversal_batch(&[0, 9], &[3, 3]).unwrap();
        let rf = flat.run_traversal_batch(&[0, 9], &[3, 3]).unwrap();
        assert_eq!(rb.per_lane_visited, rf.per_lane_visited);
    }
}
