//! Bit-packed concurrent traversal state (§3.5, Fig. 6).
//!
//! Up to [`MAX_LANES`](cgraph_graph::MAX_LANES) queries form a *batch*;
//! each query owns one bit lane. Per local vertex the shard keeps three
//! word groups — `frontier`, `next` (frontierNext) and `visited` — of
//! `W/64` words each, where `W ∈ {64, 128, 256, 512}` is the batch
//! width, so one row read covers a vertex's membership in every
//! concurrent frontier at once. A traversal hop is then:
//!
//! 1. **Scan**: for every tile row `v` with a non-zero `frontier` row,
//!    OR the row into `next[t]` for each local neighbour `t`, or emit
//!    `(t, row)` to the owner machine for remote neighbours. Shared
//!    neighbours of shared frontiers cost a single pass — the
//!    "one traversal on these two vertices" sharing of Fig. 3b.
//! 2. **Absorb**: OR remote lane masks received from peers into `next`.
//! 3. **Advance**: `new = next & !visited`; `visited |= new`;
//!    `frontier = new`; count newly visited vertices per lane.
//!
//! The state is per-shard; [`crate::engine`] wires shards together.

use crate::shard::Shard;
use cgraph_graph::bitmap::{LaneMask, LaneMatrix, LaneWidth};
use cgraph_graph::delta::DeltaOverlay;
use cgraph_graph::VertexId;

/// Per-shard traversal state for one query batch of runtime width.
#[derive(Debug)]
pub struct BitFrontier {
    frontier: LaneMatrix,
    next: LaneMatrix,
    visited: LaneMatrix,
    base: VertexId,
    num_local: usize,
    /// Live lanes in this batch (`lanes <= width.bits()`).
    lanes: usize,
    width: LaneWidth,
    /// Mask with the low `lanes` bits set.
    all_lanes: LaneMask,
}

/// Outcome of one [`BitFrontier::advance`] call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AdvanceResult {
    /// OR of all new frontier rows: lane `q` set ⇔ query `q` still has
    /// local frontier vertices.
    pub active_lanes: LaneMask,
    /// Newly visited vertices per lane this hop (length = batch
    /// width in bits).
    pub new_per_lane: Vec<u64>,
    /// Total local frontier vertices after the advance.
    pub frontier_vertices: u64,
}

impl BitFrontier {
    /// Creates zeroed state for a shard's local range, sized for a
    /// batch of `lanes` queries (the width rounds up to the narrowest
    /// supported `W`).
    pub fn new(shard: &Shard, lanes: usize) -> Self {
        let num_local = shard.num_local();
        let width = LaneWidth::for_lanes(lanes);
        Self {
            frontier: LaneMatrix::with_width(num_local, width),
            next: LaneMatrix::with_width(num_local, width),
            visited: LaneMatrix::with_width(num_local, width),
            base: shard.local_range().start,
            num_local,
            lanes,
            width,
            all_lanes: LaneMask::all(lanes),
        }
    }

    /// The batch width backing this state.
    pub fn width(&self) -> LaneWidth {
        self.width
    }

    /// Live lanes in this batch.
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Seeds query lane `lane` at local-owned global vertex `v`: the
    /// source enters both `frontier` and `visited`.
    pub fn seed(&mut self, v: VertexId, lane: usize) {
        debug_assert!(lane < self.lanes);
        let l = (v - self.base) as usize;
        self.frontier.set(l, lane);
        self.visited.set(l, lane);
    }

    /// True when no lane has local frontier vertices.
    pub fn frontier_empty(&self) -> bool {
        self.frontier.all_zero()
    }

    /// The frontier word of a local-owned global vertex
    /// (single-word batches; tests).
    pub fn frontier_word(&self, v: VertexId) -> u64 {
        self.frontier.word((v - self.base) as usize)
    }

    /// The visited word of a local-owned global vertex
    /// (single-word batches; tests).
    pub fn visited_word(&self, v: VertexId) -> u64 {
        self.visited.word((v - self.base) as usize)
    }

    /// The full frontier row of a local-owned global vertex at any
    /// batch width. Right after [`BitFrontier::advance`] the frontier
    /// holds exactly the lanes that *first reached* each vertex this
    /// superstep — index construction probes boundary vertices here to
    /// learn per-lane first-visit levels without touching the scan
    /// path.
    pub fn frontier_mask(&self, v: VertexId) -> LaneMask {
        LaneMask::from_words(self.frontier.row((v - self.base) as usize))
    }

    /// Clears every frontier lane not present in `keep` — used by the
    /// engine to retire lanes whose hop budget (`k`) is exhausted while
    /// other lanes in the batch keep traversing. Skipped entirely when
    /// `keep` covers every live lane of the batch (no lane retired), so
    /// steady-state supersteps never pay the matrix pass — regardless
    /// of how many of the width's bits the batch actually uses.
    pub fn mask_frontier(&mut self, keep: &LaneMask) {
        debug_assert_eq!(keep.width(), self.width);
        if keep.covers(&self.all_lanes) {
            return;
        }
        let stride = self.width.words();
        let keep_words = keep.words();
        for row in self.frontier.words_mut().chunks_exact_mut(stride) {
            for (w, &k) in row.iter_mut().zip(keep_words) {
                *w &= k;
            }
        }
    }

    /// Scan phase: walks the shard's edge-set tiles in row-major order.
    /// Local destinations accumulate into `next`; remote destinations
    /// are handed to `remote` as `(global_dst, lane_mask)` — the
    /// engine coalesces them per owner into the remote task buffer.
    ///
    /// When a [`DeltaOverlay`] is present the scan consults it
    /// alongside the base edge-sets: base neighbours whose edge the
    /// overlay deletes are skipped, and a second pass emits the
    /// overlay's inserted edges for every frontier source. Emission is
    /// OR-idempotent, so the overlay pass needs no ordering relative to
    /// the base pass.
    ///
    /// Returns the number of (row, tile) pairs actually scanned — the
    /// work metric the edge-set and lane-width ablations report.
    pub fn scan(
        &mut self,
        shard: &Shard,
        delta: Option<&DeltaOverlay>,
        mut remote: impl FnMut(VertexId, &LaneMask),
    ) -> u64 {
        let mut scanned = 0u64;
        let base = self.base;
        let next = &mut self.next;
        let frontier = &self.frontier;
        for set in shard.out_sets().sets() {
            // Restrict to rows in the frontier: iterate the tile's row
            // range and skip zero rows early — one branch per row.
            let row_start = set.row_range.start;
            let row_end = set.row_range.end;
            for v in row_start..row_end {
                let row = frontier.row((v - base) as usize);
                if row.iter().all(|&w| w == 0) {
                    continue;
                }
                let ts = set.neighbors(v);
                if ts.is_empty() {
                    continue;
                }
                scanned += 1;
                let dels =
                    delta.and_then(|d| d.row(v)).map(|r| r.deletes()).filter(|d| !d.is_empty());
                let w = LaneMask::from_words(row);
                for &t in ts {
                    if let Some(dels) = dels {
                        if dels.binary_search(&t).is_ok() {
                            continue;
                        }
                    }
                    if shard.is_local(t) {
                        next.or_row((t - base) as usize, &w);
                    } else {
                        remote(t, &w);
                    }
                }
            }
        }
        // Overlay insert pass: sources with pending inserted edges whose
        // frontier row is live. Rows iterate in arbitrary (HashMap)
        // order — harmless, since `next` accumulation is a pure OR.
        if let Some(d) = delta {
            for (v, drow) in d.rows() {
                if drow.inserts().is_empty() || !shard.is_local(v) {
                    continue;
                }
                let row = frontier.row((v - base) as usize);
                if row.iter().all(|&w| w == 0) {
                    continue;
                }
                scanned += 1;
                let w = LaneMask::from_words(row);
                for &(t, _) in drow.inserts() {
                    if shard.is_local(t) {
                        next.or_row((t - base) as usize, &w);
                    } else {
                        remote(t, &w);
                    }
                }
            }
        }
        scanned
    }

    /// Absorb phase: ORs a remote lane mask into `next` for a
    /// local-owned destination.
    #[inline]
    pub fn absorb(&mut self, v: VertexId, mask: &LaneMask) {
        self.next.or_row((v - self.base) as usize, mask);
    }

    /// Advance phase: filters `next` against `visited`, promotes the
    /// survivors to the new frontier, and counts per-lane discoveries.
    pub fn advance(&mut self) -> AdvanceResult {
        let stride = self.width.words();
        let mut active = LaneMask::zero(self.width);
        let mut per_lane = vec![0u64; self.width.bits()];
        let mut frontier_vertices = 0u64;
        let frontier = self.frontier.words_mut();
        let next = self.next.words_mut();
        let visited = self.visited.words_mut();
        let active_words = &mut active;
        for i in 0..self.num_local {
            let off = i * stride;
            let mut any = 0u64;
            for j in 0..stride {
                let new = next[off + j] & !visited[off + j];
                next[off + j] = 0;
                frontier[off + j] = new;
                if new != 0 {
                    visited[off + j] |= new;
                    any |= new;
                    let mut bits = new;
                    while bits != 0 {
                        per_lane[j * 64 + bits.trailing_zeros() as usize] += 1;
                        bits &= bits - 1;
                    }
                }
            }
            if any != 0 {
                frontier_vertices += 1;
                active_words.or_assign(&LaneMask::from_words(&frontier[off..off + stride]));
            }
        }
        AdvanceResult { active_lanes: active, new_per_lane: per_lane, frontier_vertices }
    }

    /// Per-lane counts of *currently visited* local vertices (length =
    /// batch width in bits).
    pub fn visited_per_lane(&self) -> Vec<u64> {
        let stride = self.width.words();
        let mut per_lane = vec![0u64; self.width.bits()];
        for (wi, &w) in self.visited.words().iter().enumerate() {
            let j = wi % stride;
            let mut bits = w;
            while bits != 0 {
                per_lane[j * 64 + bits.trailing_zeros() as usize] += 1;
                bits &= bits - 1;
            }
        }
        per_lane
    }

    /// Resets all state for batch reuse (dynamic resource allocation:
    /// the three matrices are the only per-batch memory, recycled
    /// rather than reallocated).
    pub fn reset(&mut self) {
        self.frontier.clear_all();
        self.next.clear_all();
        self.visited.clear_all();
    }

    /// Snapshots the `(frontier, visited)` words — the complete
    /// traversal state at a superstep boundary (`next` is always zero
    /// there, having just been promoted by [`BitFrontier::advance`]).
    /// This is the checkpoint payload of the recovery layer; each
    /// vector holds `num_local × width.words()` words.
    pub fn snapshot_words(&self) -> (Vec<u64>, Vec<u64>) {
        (self.frontier.words().to_vec(), self.visited.words().to_vec())
    }

    /// Restores state captured by [`BitFrontier::snapshot_words`];
    /// `next` is cleared (a boundary has no pending accumulation).
    ///
    /// # Panics
    ///
    /// Panics when the snapshot was taken at a different batch width —
    /// a checkpoint of one width can never resume a batch of another.
    pub fn restore_words(&mut self, frontier: &[u64], visited: &[u64]) {
        let expect = self.num_local * self.width.words();
        assert_eq!(
            frontier.len(),
            expect,
            "snapshot width mismatch: {} words for {} local vertices at width {} (want {expect})",
            frontier.len(),
            self.num_local,
            self.width.bits(),
        );
        assert_eq!(visited.len(), expect, "snapshot width mismatch (visited)");
        self.frontier.words_mut().copy_from_slice(frontier);
        self.visited.words_mut().copy_from_slice(visited);
        self.next.clear_all();
    }

    /// Discards any half-accumulated `next` words. A machine saving
    /// state at a poisoned barrier is mid-superstep: its `frontier` and
    /// `visited` still hold the last boundary's values, but `next` may
    /// hold partial scan results that a resume would re-derive.
    pub fn clear_next(&mut self) {
        self.next.clear_all();
    }

    /// Heap bytes held (3 × `width.words()` words per local vertex).
    pub fn size_bytes(&self) -> usize {
        self.frontier.size_bytes() + self.next.size_bytes() + self.visited.size_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::RangePartition;
    use cgraph_graph::{ConsolidationPolicy, EdgeList};

    /// Single-shard helper over a small graph.
    fn single_shard(edges: &EdgeList) -> Shard {
        let part = RangePartition::by_vertices(edges.num_vertices(), 1);
        Shard::build(0, &part, edges.edges(), ConsolidationPolicy::default(), false)
    }

    /// A 64-wide mask from a single word.
    fn m64(w: u64) -> LaneMask {
        LaneMask::from_words(&[w])
    }

    #[test]
    fn one_query_one_hop() {
        // 0 -> 1 -> 2
        let g: EdgeList = [(0u64, 1u64), (1, 2)].into_iter().collect();
        let shard = single_shard(&g);
        let mut bf = BitFrontier::new(&shard, 64);
        bf.seed(0, 0);
        bf.scan(&shard, None, |_, _| panic!("no remote on single shard"));
        let r = bf.advance();
        assert_eq!(r.active_lanes, m64(1));
        assert_eq!(r.new_per_lane[0], 1); // vertex 1
        assert_eq!(bf.frontier_word(1), 1);
        // second hop reaches 2
        bf.scan(&shard, None, |_, _| unreachable!());
        let r = bf.advance();
        assert_eq!(r.new_per_lane[0], 1);
        // third hop: nothing new
        bf.scan(&shard, None, |_, _| unreachable!());
        let r = bf.advance();
        assert!(r.active_lanes.is_zero());
    }

    #[test]
    fn two_queries_share_one_scan() {
        // Diamond: 0 -> 2, 1 -> 2, 2 -> 3. Queries from 0 and 1 meet at
        // 2 and must both discover 3 in the same pass.
        let g: EdgeList = [(0u64, 2u64), (1, 2), (2, 3)].into_iter().collect();
        let shard = single_shard(&g);
        let mut bf = BitFrontier::new(&shard, 2);
        bf.seed(0, 0);
        bf.seed(1, 1);
        bf.scan(&shard, None, |_, _| unreachable!());
        let r = bf.advance();
        assert_eq!(bf.frontier_word(2), 0b11, "both lanes reached vertex 2");
        assert_eq!(r.new_per_lane[0], 1);
        assert_eq!(r.new_per_lane[1], 1);
        bf.scan(&shard, None, |_, _| unreachable!());
        let r = bf.advance();
        assert_eq!(bf.visited_word(3), 0b11);
        assert_eq!(r.new_per_lane[0], 1);
        assert_eq!(r.new_per_lane[1], 1);
    }

    #[test]
    fn visited_not_revisited() {
        // Cycle 0 -> 1 -> 0: after visiting both, traversal stops.
        let g: EdgeList = [(0u64, 1u64), (1, 0)].into_iter().collect();
        let shard = single_shard(&g);
        let mut bf = BitFrontier::new(&shard, 64);
        bf.seed(0, 5);
        bf.scan(&shard, None, |_, _| unreachable!());
        let r = bf.advance();
        assert_eq!(r.new_per_lane[5], 1);
        bf.scan(&shard, None, |_, _| unreachable!());
        let r = bf.advance();
        assert!(r.active_lanes.is_zero(), "source must not be revisited");
    }

    #[test]
    fn remote_destinations_emitted_with_mask() {
        let g: EdgeList = [(0u64, 5u64), (1, 5)].into_iter().collect();
        let mut g = g;
        g.set_num_vertices(10);
        let part = RangePartition::by_vertices(10, 2);
        let shard = Shard::build(0, &part, g.edges(), ConsolidationPolicy::default(), false);
        let mut bf = BitFrontier::new(&shard, 2);
        bf.seed(0, 0);
        bf.seed(1, 1);
        let mut remote = Vec::new();
        bf.scan(&shard, None, |t, w| remote.push((t, w.words()[0])));
        remote.sort_unstable();
        assert_eq!(remote, vec![(5, 0b01), (5, 0b10)]);
    }

    #[test]
    fn absorb_feeds_next_frontier() {
        let g: EdgeList = [(5u64, 6u64)].into_iter().collect();
        let mut g = g;
        g.set_num_vertices(10);
        let part = RangePartition::by_vertices(10, 2);
        let shard = Shard::build(1, &part, g.edges(), ConsolidationPolicy::default(), false);
        let mut bf = BitFrontier::new(&shard, 64);
        bf.absorb(5, &m64(0b100));
        let r = bf.advance();
        assert_eq!(r.active_lanes, m64(0b100));
        assert_eq!(bf.frontier_word(5), 0b100);
        // the absorbed vertex now traverses locally
        bf.scan(&shard, None, |_, _| unreachable!());
        let r = bf.advance();
        assert_eq!(bf.visited_word(6), 0b100);
        assert_eq!(r.new_per_lane[2], 1);
    }

    #[test]
    fn per_lane_counts_match_visited() {
        let g: EdgeList = [(0u64, 1u64), (0, 2), (1, 3), (2, 3), (3, 4)].into_iter().collect();
        let shard = single_shard(&g);
        let mut bf = BitFrontier::new(&shard, 1);
        bf.seed(0, 0);
        let mut total = [1u64; 1]; // source counted
        for _ in 0..4 {
            bf.scan(&shard, None, |_, _| unreachable!());
            let r = bf.advance();
            total[0] += r.new_per_lane[0];
        }
        assert_eq!(total[0], 5);
        assert_eq!(bf.visited_per_lane()[0], 5);
    }

    #[test]
    fn snapshot_restore_round_trips_mid_traversal() {
        let g: EdgeList = [(0u64, 1u64), (0, 2), (1, 3), (2, 3), (3, 4)].into_iter().collect();
        let shard = single_shard(&g);
        let mut bf = BitFrontier::new(&shard, 64);
        bf.seed(0, 0);
        bf.scan(&shard, None, |_, _| unreachable!());
        bf.advance();
        let (front, vis) = bf.snapshot_words();

        // Continue to completion, recording the trajectory.
        let mut rest = Vec::new();
        for _ in 0..3 {
            bf.scan(&shard, None, |_, _| unreachable!());
            rest.push(bf.advance());
        }
        let final_visited = bf.visited_per_lane();

        // Restore into *dirty* state (mid-superstep, next half-full)
        // and replay: the trajectory must be identical.
        let mut bf2 = BitFrontier::new(&shard, 64);
        bf2.seed(0, 0);
        bf2.scan(&shard, None, |_, _| unreachable!());
        bf2.restore_words(&front, &vis);
        for expect in &rest {
            bf2.scan(&shard, None, |_, _| unreachable!());
            assert_eq!(bf2.advance(), *expect);
        }
        assert_eq!(bf2.visited_per_lane(), final_visited);
    }

    #[test]
    fn clear_next_discards_partial_scan() {
        let g: EdgeList = [(0u64, 1u64)].into_iter().collect();
        let shard = single_shard(&g);
        let mut bf = BitFrontier::new(&shard, 64);
        bf.seed(0, 0);
        bf.scan(&shard, None, |_, _| unreachable!());
        bf.clear_next();
        let r = bf.advance();
        assert!(r.active_lanes.is_zero(), "cleared next must yield no discoveries");
    }

    #[test]
    fn reset_clears_everything() {
        let g: EdgeList = [(0u64, 1u64)].into_iter().collect();
        let shard = single_shard(&g);
        let mut bf = BitFrontier::new(&shard, 64);
        bf.seed(0, 0);
        bf.scan(&shard, None, |_, _| unreachable!());
        bf.advance();
        bf.reset();
        assert!(bf.frontier_empty());
        assert_eq!(bf.visited_per_lane()[0], 0);
    }

    #[test]
    fn wide_batch_lanes_above_64_traverse_independently() {
        // 0 -> 1 -> 2; lanes 0 and 100 traverse the same graph and
        // must see identical per-lane trajectories.
        let g: EdgeList = [(0u64, 1u64), (1, 2)].into_iter().collect();
        let shard = single_shard(&g);
        let mut bf = BitFrontier::new(&shard, 128);
        assert_eq!(bf.width().bits(), 128);
        bf.seed(0, 0);
        bf.seed(0, 100);
        bf.scan(&shard, None, |_, _| unreachable!());
        let r = bf.advance();
        assert!(r.active_lanes.get(0) && r.active_lanes.get(100));
        assert_eq!(r.new_per_lane[0], 1);
        assert_eq!(r.new_per_lane[100], 1);
        bf.scan(&shard, None, |_, _| unreachable!());
        let r = bf.advance();
        assert_eq!(r.new_per_lane[100], 1);
        let visited = bf.visited_per_lane();
        assert_eq!(visited[0], 3);
        assert_eq!(visited[100], 3);
        assert_eq!(visited[1], 0);
    }

    #[test]
    fn mask_frontier_retires_wide_lanes() {
        let g: EdgeList = [(0u64, 1u64)].into_iter().collect();
        let shard = single_shard(&g);
        let mut bf = BitFrontier::new(&shard, 128);
        bf.seed(0, 3);
        bf.seed(0, 90);
        // Keeping every live lane is a no-op (early-out path).
        bf.mask_frontier(&LaneMask::all(128));
        assert!(!bf.frontier_empty());
        // Retire lane 90 only.
        let mut keep = LaneMask::zero(LaneWidth::new(128).unwrap());
        keep.set(3);
        bf.mask_frontier(&keep);
        bf.scan(&shard, None, |_, _| unreachable!());
        let r = bf.advance();
        assert!(r.active_lanes.get(3));
        assert!(!r.active_lanes.get(90), "retired lane must not advance");
    }

    #[test]
    #[should_panic(expected = "snapshot width mismatch")]
    fn restore_rejects_width_mismatch() {
        let g: EdgeList = [(0u64, 1u64)].into_iter().collect();
        let shard = single_shard(&g);
        let narrow = BitFrontier::new(&shard, 64);
        let (front, vis) = narrow.snapshot_words();
        let mut wide = BitFrontier::new(&shard, 128);
        wide.restore_words(&front, &vis);
    }
}
