//! Queue-based k-hop traversal — the `Traverse` function of Listing 2.
//!
//! One instance handles one query on one shard: a local task queue of
//! `(vertex, hops)` pairs, a per-vertex visited bitmap, and the vertex
//! *values* (traversal depths) stored under the paper's dynamic
//! resource allocation: "we only need to keep vertex values for those
//! in previous and current levels, instead of saving value per vertex
//! during the entire query" (§3.3). [`ValueMode::Full`] keeps the naive
//! value-per-vertex array instead — the ablation baseline (A5) that
//! shows why the two-level window matters for hundreds of concurrent
//! queries.
//!
//! Remote neighbours are emitted to the engine ("boundary vertices will
//! be sent to a remote task queue", Listing 2 caption), which routes
//! them to the owning shard's [`QueueTraversal::absorb`].

use crate::shard::Shard;
use cgraph_graph::delta::DeltaOverlay;
use cgraph_graph::props::SparseLevelProps;
use cgraph_graph::{Bitmap, VertexId};

/// How traversal depths (vertex values) are stored.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ValueMode {
    /// Two-level sliding window (the paper's dynamic allocation).
    #[default]
    TwoLevel,
    /// Dense value per vertex for the whole query (ablation baseline).
    Full,
}

enum Values {
    TwoLevel(SparseLevelProps<u32>),
    Full(Vec<u32>),
}

/// Queue-based traversal state for one query on one shard.
pub struct QueueTraversal {
    visited: Bitmap,
    /// Current-level local task queue (global IDs, all locally owned).
    cur: Vec<VertexId>,
    /// Next-level local task queue.
    next: Vec<VertexId>,
    values: Values,
    base: VertexId,
    depth: u32,
    k: u32,
}

impl QueueTraversal {
    /// Creates state for a `k`-hop query on `shard`.
    pub fn new(shard: &Shard, k: u32, mode: ValueMode) -> Self {
        let n = shard.num_local();
        Self {
            visited: Bitmap::new(n),
            cur: Vec::new(),
            next: Vec::new(),
            values: match mode {
                ValueMode::TwoLevel => Values::TwoLevel(SparseLevelProps::new()),
                ValueMode::Full => Values::Full(vec![u32::MAX; n]),
            },
            base: shard.local_range().start,
            depth: 0,
            k,
        }
    }

    /// Seeds the traversal at locally-owned `v` (depth 0).
    pub fn seed(&mut self, v: VertexId) {
        let l = (v - self.base) as usize;
        if !self.visited.set(l) {
            self.record_value(v, 0);
            self.cur.push(v);
        }
    }

    fn record_value(&mut self, v: VertexId, depth: u32) {
        match &mut self.values {
            Values::TwoLevel(s) => s.insert(v, depth),
            Values::Full(arr) => arr[(v - self.base) as usize] = depth,
        }
    }

    /// The recorded depth of `v`, if still retained.
    pub fn value(&self, v: VertexId) -> Option<u32> {
        match &self.values {
            Values::TwoLevel(s) => s.get(v).copied(),
            Values::Full(arr) => {
                let d = arr[(v - self.base) as usize];
                (d != u32::MAX).then_some(d)
            }
        }
    }

    /// Live vertex-value entries — the memory metric ablation A5
    /// compares between modes.
    pub fn live_value_entries(&self) -> usize {
        match &self.values {
            Values::TwoLevel(s) => s.live_entries(),
            Values::Full(arr) => arr.len(),
        }
    }

    /// Current traversal depth (hops completed).
    pub fn depth(&self) -> u32 {
        self.depth
    }

    /// True when this shard holds no current-level tasks.
    pub fn queue_empty(&self) -> bool {
        self.cur.is_empty()
    }

    /// Number of vertices visited on this shard so far.
    pub fn visited_count(&self) -> u64 {
        self.visited.count_ones() as u64
    }

    /// Processes every task in the current level (Listing 2's loop
    /// body): visits unvisited neighbours, queueing local ones and
    /// emitting `(vertex, depth)` for boundary ones. Does nothing if
    /// `depth >= k` ("if (s.hops < k)").
    ///
    /// When a [`DeltaOverlay`] is present, base neighbours whose edge
    /// the overlay deletes are skipped and the overlay's inserted edges
    /// of each task vertex are visited as well — the queue engine's
    /// view of the overlay-published snapshot.
    pub fn step(
        &mut self,
        shard: &Shard,
        delta: Option<&DeltaOverlay>,
        mut remote: impl FnMut(VertexId, u32),
    ) -> u64 {
        if self.depth >= self.k {
            self.cur.clear();
            return 0;
        }
        // Slide the value window: the level about to be discovered
        // (depth + 1) becomes "current", the level being processed
        // (depth) becomes "previous", and depth - 1 is dropped — the
        // paper's two-level retention.
        if let Values::TwoLevel(sv) = &mut self.values {
            sv.advance_level();
        }
        let mut discovered = 0u64;
        let next_depth = self.depth + 1;
        let cur = std::mem::take(&mut self.cur);
        for s in cur {
            let drow = delta.and_then(|d| d.row(s));
            let dels = drow.map(|r| r.deletes()).filter(|d| !d.is_empty());
            for set in shard.out_sets().sets() {
                for &t in set.neighbors(s) {
                    if let Some(dels) = dels {
                        if dels.binary_search(&t).is_ok() {
                            continue;
                        }
                    }
                    if shard.is_local(t) {
                        let l = (t - self.base) as usize;
                        if !self.visited.set(l) {
                            self.record_value(t, next_depth);
                            self.next.push(t);
                            discovered += 1;
                        }
                    } else {
                        // Listing 2 marks boundary neighbours visited at
                        // the owner; we forward and let the owner dedup.
                        remote(t, next_depth);
                    }
                }
            }
            if let Some(drow) = drow {
                for &(t, _) in drow.inserts() {
                    if shard.is_local(t) {
                        let l = (t - self.base) as usize;
                        if !self.visited.set(l) {
                            self.record_value(t, next_depth);
                            self.next.push(t);
                            discovered += 1;
                        }
                    } else {
                        remote(t, next_depth);
                    }
                }
            }
        }
        discovered
    }

    /// Accepts a remote task `(v, depth)` for a locally-owned vertex.
    /// Returns true when the vertex was fresh (visited for the first
    /// time).
    pub fn absorb(&mut self, v: VertexId, depth: u32) -> bool {
        let l = (v - self.base) as usize;
        if !self.visited.set(l) {
            self.record_value(v, depth);
            self.next.push(v);
            true
        } else {
            false
        }
    }

    /// Ends the level: next queue becomes current, the two-level value
    /// window slides. Returns the size of the new current queue.
    pub fn advance_level(&mut self) -> usize {
        std::mem::swap(&mut self.cur, &mut self.next);
        self.next.clear();
        self.depth += 1;
        self.cur.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::RangePartition;
    use cgraph_graph::{ConsolidationPolicy, EdgeList};

    fn single_shard(edges: &EdgeList) -> Shard {
        let part = RangePartition::by_vertices(edges.num_vertices(), 1);
        Shard::build(0, &part, edges.edges(), ConsolidationPolicy::default(), false)
    }

    fn path_graph() -> EdgeList {
        // 0 -> 1 -> 2 -> 3 -> 4
        [(0u64, 1u64), (1, 2), (2, 3), (3, 4)].into_iter().collect()
    }

    #[test]
    fn khop_stops_at_k() {
        let g = path_graph();
        let shard = single_shard(&g);
        let mut t = QueueTraversal::new(&shard, 2, ValueMode::TwoLevel);
        t.seed(0);
        let mut total = 1u64;
        loop {
            total += t.step(&shard, None, |_, _| unreachable!());
            if t.advance_level() == 0 {
                break;
            }
        }
        assert_eq!(total, 3, "k=2 reaches vertices 0,1,2 only");
        assert_eq!(t.visited_count(), 3);
    }

    #[test]
    fn values_respect_two_level_window() {
        let g = path_graph();
        let shard = single_shard(&g);
        let mut t = QueueTraversal::new(&shard, 10, ValueMode::TwoLevel);
        t.seed(0);
        t.step(&shard, None, |_, _| {});
        t.advance_level(); // depth 1; levels held: {0}, {1}
        t.step(&shard, None, |_, _| {});
        t.advance_level(); // depth 2; levels held: {1}, {2}
        assert_eq!(t.value(0), None, "level-0 value must be dropped");
        assert_eq!(t.value(1), Some(1));
        assert_eq!(t.value(2), Some(2));
        assert!(t.live_value_entries() <= 2);
    }

    #[test]
    fn full_mode_keeps_everything() {
        let g = path_graph();
        let shard = single_shard(&g);
        let mut t = QueueTraversal::new(&shard, 10, ValueMode::Full);
        t.seed(0);
        for _ in 0..4 {
            t.step(&shard, None, |_, _| {});
            t.advance_level();
        }
        assert_eq!(t.value(0), Some(0));
        assert_eq!(t.value(4), Some(4));
        assert_eq!(t.live_value_entries(), 5, "dense array covers all vertices");
    }

    #[test]
    fn remote_neighbors_emitted_not_queued() {
        let mut g: EdgeList = [(0u64, 1u64), (1, 7)].into_iter().collect();
        g.set_num_vertices(10);
        let part = RangePartition::by_vertices(10, 2);
        let shard = Shard::build(0, &part, g.edges(), ConsolidationPolicy::default(), false);
        let mut t = QueueTraversal::new(&shard, 3, ValueMode::TwoLevel);
        t.seed(0);
        let mut remote = Vec::new();
        t.step(&shard, None, |v, d| remote.push((v, d)));
        t.advance_level();
        t.step(&shard, None, |v, d| remote.push((v, d)));
        assert_eq!(remote, vec![(7, 2)]);
    }

    #[test]
    fn absorb_dedups() {
        let mut g: EdgeList = [(5u64, 6u64)].into_iter().collect();
        g.set_num_vertices(10);
        let part = RangePartition::by_vertices(10, 2);
        let shard = Shard::build(1, &part, g.edges(), ConsolidationPolicy::default(), false);
        let mut t = QueueTraversal::new(&shard, 3, ValueMode::TwoLevel);
        assert!(t.absorb(5, 1));
        assert!(!t.absorb(5, 1), "second delivery must be deduplicated");
        assert_eq!(t.advance_level(), 1);
        let mut found = 0;
        t.step(&shard, None, |_, _| {});
        found += t.advance_level();
        assert_eq!(found, 1); // vertex 6
    }

    #[test]
    fn seed_is_idempotent() {
        let g = path_graph();
        let shard = single_shard(&g);
        let mut t = QueueTraversal::new(&shard, 3, ValueMode::TwoLevel);
        t.seed(0);
        t.seed(0);
        assert_eq!(t.visited_count(), 1);
        assert!(!t.queue_empty());
    }

    #[test]
    fn cycle_terminates() {
        let g: EdgeList = [(0u64, 1u64), (1, 2), (2, 0)].into_iter().collect();
        let shard = single_shard(&g);
        let mut t = QueueTraversal::new(&shard, 100, ValueMode::TwoLevel);
        t.seed(0);
        let mut levels = 0;
        loop {
            t.step(&shard, None, |_, _| {});
            if t.advance_level() == 0 {
                break;
            }
            levels += 1;
            assert!(levels < 10, "cycle must terminate");
        }
        assert_eq!(t.visited_count(), 3);
    }
}
