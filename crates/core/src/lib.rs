//! # cgraph-core — the C-Graph concurrent query framework
//!
//! This crate implements the primary contribution of *C-Graph: A Highly
//! Efficient Concurrent Graph Reachability Query Framework* (Zhou,
//! Chen, Xia, Teodorescu — ICPP 2018):
//!
//! * [`partition`] — range-based graph partitioning balanced by edge
//!   count (§3.1),
//! * [`shard`] — the per-machine subgraph shard: edge-set blocked
//!   out-edges, CSC in-edges, boundary-vertex accounting (§3.1–3.2),
//! * [`pcm`] — the partition-centric programming abstraction of
//!   Listing 1 (`compute`/`sendTo`/`voteToHalt`/…, §3.4),
//! * [`traverse`] — the queue-based `Traverse` engine of Listing 2 with
//!   dynamic (two-level) vertex-value allocation (§3.3),
//! * [`bitfrontier`] — the MS-BFS style bit-packed concurrent traversal
//!   state (§3.5, Fig. 6),
//! * [`engine`] — the distributed engine: synchronous supersteps and
//!   asynchronous free-running execution over a
//!   [`cgraph_comm::Cluster`],
//! * [`gas`] — the Gather-Apply-Scatter interface of Listing 3 and the
//!   iterative-computation driver (PageRank),
//! * [`scheduler`] — the concurrent-query front end: batches queries
//!   into lane groups up to 512 wide, shares subgraph traversals
//!   inside a batch, and enforces a memory budget (§3.3, §3.5),
//! * [`service`] — the persistent streaming front end: an admission
//!   queue with backpressure, fill-or-deadline batch packing, and
//!   execution on a long-lived [`cgraph_comm::PersistentCluster`],
//! * [`metrics`] — response-time distributions (the quantity every
//!   figure of §4 reports),
//! * [`recovery`] — superstep checkpointing and confined partition
//!   replay for fault-tolerant batch execution under an injected
//!   [`cgraph_comm::chaos::FaultPlan`],
//! * [`durability`] — the on-disk durability plane: checksummed epoch
//!   snapshots, an update WAL, and the crash-restart recovery path
//!   behind [`QueryService::open_or_recover`](service::QueryService::open_or_recover),
//! * [`index_api`] — the reachability-index contract: the
//!   [`ReachIndex`] surface the query path
//!   consults for index-only answers and superstep pruning, built by
//!   the `cgraph-index` crate (see `INDEXING.md`).

#![warn(missing_docs)]

pub mod bitfrontier;
pub mod config;
pub mod durability;
pub mod engine;
pub mod gas;
pub mod index_api;
pub mod metrics;
pub mod partition;
pub mod pcm;
pub mod query;
pub mod recovery;
pub mod scheduler;
pub mod service;
pub mod shard;
pub mod traverse;
pub mod vcm;

pub use cgraph_comm::chaos::{ChaosRun, CrashFault, FaultPlan, SlowLink};
pub use cgraph_graph::delta::{DeltaOverlay, EdgeUpdate, UpdateBatch};
pub use config::{EngineConfig, UpdateMode};
pub use durability::{DurabilityConfig, DurabilityError, DurabilityStats, RecoveryOutcome};
pub use engine::{
    BatchResult, DistributedEngine, EngineError, EngineMsg, FaultInjection, ProbedBatch,
};
pub use index_api::{IndexAnswer, IndexBuilder, IndexConfig, PrunePlan, ReachIndex};
pub use metrics::ResponseStats;
pub use partition::RangePartition;
pub use query::{KhopQuery, QueryResult};
pub use recovery::{RecoveryConfig, RecoveryReport};
pub use scheduler::{QueryScheduler, SchedulerConfig};
pub use service::{
    GroupConfig, MutationConfig, QueryPlaneConfig, QueryService, QueryTicket, RouteDecision,
    RouteKind, Router, RouterConfig, RouterStats, ServiceConfig, ServiceError, ServiceGroup,
    ServiceStats,
};
pub use shard::Shard;
pub use vcm::{VertexProgram, VertexScope};
