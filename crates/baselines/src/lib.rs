//! # cgraph-baselines — the comparison systems of §4
//!
//! The paper evaluates C-Graph against two baselines; both are
//! reimplemented here honestly (no artificial sleeps — their slowness
//! comes from the same structural sources as the originals'):
//!
//! * [`titan`] — a miniature **property-graph database** in the style
//!   of Titan/JanusGraph: every vertex and edge is a record with a
//!   serialized property payload, adjacency is an ordered index keyed
//!   by (vertex, direction, edge id), reads go through a transactional
//!   lock, and traversal pays per-edge record decoding. This reproduces
//!   the "complexity of the software stack … such as the data storage
//!   layers" the paper blames for Titan's latency (§4.2).
//!
//! * [`gemini`] — a **fast single-query engine** in the style of
//!   Gemini: flat CSR, frontier-based BFS/k-hop with rayon parallelism
//!   inside one query, but *no concurrent-query support*: a batch of
//!   queries is executed serially in request order, so "a query's
//!   response time will be determined by any backlogged queries in
//!   addition to the execution time for the current query" (§4.2).

#![warn(missing_docs)]

pub mod gemini;
pub mod titan;

pub use gemini::GeminiEngine;
pub use titan::{TitanDb, TitanServer};
