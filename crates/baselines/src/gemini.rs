//! A Gemini-style engine: excellent single-query performance, no
//! concurrent-query support.
//!
//! Gemini (OSDI'16) is "an efficient distributed graph computing
//! system, which outperforms C-Graph in single application
//! performance. However, it cannot handle concurrent queries.
//! Executing the queries serially increases the average response time"
//! (§5). We reproduce exactly that profile:
//!
//! * one query runs as a frontier-parallel BFS over a flat CSR using
//!   every core (rayon),
//! * a set of "concurrent" queries is drained **serially in request
//!   order** ([`GeminiEngine::run_queries_serialized`]), so later
//!   queries absorb the whole backlog's execution time — the stacked
//!   wait of Fig. 8b / the linear curve of Fig. 13.

use cgraph_graph::{Csr, EdgeList, VertexId};
use rayon::prelude::*;
use std::sync::atomic::{AtomicU8, Ordering};
use std::time::{Duration, Instant};

/// Result of one Gemini query.
#[derive(Clone, Debug)]
pub struct GeminiOutcome {
    /// Position in the submitted batch.
    pub query_index: usize,
    /// Distinct vertices reached (source included).
    pub visited: u64,
    /// Response time from batch submission (wait + execution).
    pub response_time: Duration,
    /// Pure execution time of this query.
    pub exec_time: Duration,
}

/// The engine: a flat CSR and a parallel frontier BFS.
pub struct GeminiEngine {
    csr: Csr,
}

impl GeminiEngine {
    /// Builds the engine from an edge list.
    pub fn new(edges: &EdgeList) -> Self {
        Self { csr: Csr::from_edges(edges.num_vertices(), edges.edges()) }
    }

    /// The underlying CSR.
    pub fn csr(&self) -> &Csr {
        &self.csr
    }

    /// Runs a single k-hop/BFS query with intra-query parallelism:
    /// every frontier level is expanded by all cores.
    pub fn khop(&self, source: VertexId, k: u32) -> u64 {
        let n = self.csr.num_vertices() as usize;
        // 0 = unvisited, 1 = visited. AtomicU8 lets the par expansion
        // claim vertices without locks; relaxed is enough because the
        // claim itself (swap) is the only synchronisation needed.
        let visited: Vec<AtomicU8> = (0..n).map(|_| AtomicU8::new(0)).collect();
        visited[source as usize].store(1, Ordering::Relaxed);
        let mut frontier: Vec<VertexId> = vec![source];
        let mut depth = 0u32;
        let mut total = 1u64;
        while !frontier.is_empty() && depth < k {
            let next: Vec<VertexId> = frontier
                .par_iter()
                .flat_map_iter(|&v| {
                    self.csr
                        .neighbors(v)
                        .iter()
                        .copied()
                        .filter(|&t| visited[t as usize].swap(1, Ordering::Relaxed) == 0)
                })
                .collect();
            total += next.len() as u64;
            frontier = next;
            depth += 1;
        }
        total
    }

    /// Executes a batch of queries **serially in request order** — the
    /// only mode a system without concurrent-query support offers.
    /// Response times accumulate the backlog.
    pub fn run_queries_serialized(&self, queries: &[(VertexId, u32)]) -> Vec<GeminiOutcome> {
        let submit = Instant::now();
        queries
            .iter()
            .enumerate()
            .map(|(i, &(src, k))| {
                let t0 = Instant::now();
                let visited = self.khop(src, k);
                GeminiOutcome {
                    query_index: i,
                    visited,
                    response_time: submit.elapsed(),
                    exec_time: t0.elapsed(),
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring(n: u64) -> GeminiEngine {
        let list: EdgeList = (0..n).map(|v| (v, (v + 1) % n)).collect();
        GeminiEngine::new(&list)
    }

    #[test]
    fn khop_counts_on_ring() {
        let e = ring(20);
        assert_eq!(e.khop(0, 3), 4);
        assert_eq!(e.khop(5, u32::MAX), 20);
    }

    #[test]
    fn serialized_waits_accumulate() {
        let e = ring(100);
        let queries: Vec<(u64, u32)> = (0..10).map(|i| (i as u64, u32::MAX)).collect();
        let out = e.run_queries_serialized(&queries);
        for w in out.windows(2) {
            assert!(w[1].response_time >= w[0].response_time);
        }
        // Last query's response dominates its own exec time by the
        // whole backlog.
        assert!(out[9].response_time >= out[9].exec_time);
        assert!(out[9].response_time >= out[0].response_time);
    }

    #[test]
    fn matches_sequential_reference() {
        // Compare the parallel BFS against a simple sequential BFS on a
        // scale-free graph.
        let g = cgraph_gen::graph500(8, 6, 11);
        let mut b = cgraph_graph::GraphBuilder::new();
        b.add_edge_list(&g);
        let g = b.build().edges;
        let e = GeminiEngine::new(&g);
        let csr = Csr::from_edges(g.num_vertices(), g.edges());
        for src in [0u64, 5, 60] {
            let mut seen = vec![false; g.num_vertices() as usize];
            let mut q = std::collections::VecDeque::new();
            seen[src as usize] = true;
            q.push_back((src, 0u32));
            let mut count = 1u64;
            while let Some((v, d)) = q.pop_front() {
                if d >= 3 {
                    continue;
                }
                for &t in csr.neighbors(v) {
                    if !seen[t as usize] {
                        seen[t as usize] = true;
                        count += 1;
                        q.push_back((t, d + 1));
                    }
                }
            }
            assert_eq!(e.khop(src, 3), count, "src {src}");
        }
    }
}
