//! Gremlin-style k-hop traversal over the record store.
//!
//! Per query: a `HashSet` visited set, a BFS queue of (vertex, depth),
//! and — this is the expensive part — a property decode per edge
//! touched, because a graph database applies traversal predicates
//! ("label = knows") against the stored property document.

use super::store::TitanDb;
use cgraph_graph::VertexId;
use std::collections::{HashSet, VecDeque};

/// Result of one k-hop query against the database.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TitanKhopResult {
    /// Distinct vertices reached (sources included).
    pub visited: u64,
    /// Edges examined (each paid a record decode).
    pub edges_examined: u64,
}

impl TitanDb {
    /// Runs a k-hop traversal from `source`, filtering edges by
    /// `label` (pass `"knows"` for the default schema — the filter
    /// forces the property decode a real traversal performs).
    pub fn khop(&self, source: VertexId, k: u32, label: &str) -> TitanKhopResult {
        let tx = self.read_tx();
        let mut visited: HashSet<VertexId> = HashSet::new();
        let mut queue: VecDeque<(VertexId, u32)> = VecDeque::new();
        let mut edges_examined = 0u64;
        visited.insert(source);
        queue.push_back((source, 0));
        while let Some((v, d)) = queue.pop_front() {
            if d >= k {
                continue;
            }
            for &eid in tx.out_edges(v) {
                edges_examined += 1;
                // Predicate evaluation against the decoded document.
                let props = tx.edge_props(eid);
                if props.label != label {
                    continue;
                }
                let t = tx.edge_dst(eid);
                if visited.insert(t) {
                    queue.push_back((t, d + 1));
                }
            }
        }
        TitanKhopResult { visited: visited.len() as u64, edges_examined }
    }

    /// One PageRank iteration through the record API (the paper ran
    /// PageRank on Titan via "the internal APIs"; a single iteration
    /// took hours on OR-100M — this path shows why: every edge read
    /// decodes a document).
    pub fn pagerank_iteration(&self, ranks: &[f64], damping: f64) -> Vec<f64> {
        let tx = self.read_tx();
        let n = ranks.len();
        let mut next = vec![1.0 - damping; n];
        for v in 0..n as u64 {
            let out = tx.out_edges(v);
            if out.is_empty() {
                continue;
            }
            let share = damping * ranks[v as usize] / out.len() as f64;
            for &eid in out {
                let _props = tx.edge_props(eid); // record decode per edge
                let t = tx.edge_dst(eid);
                next[t as usize] += share;
            }
        }
        next
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgraph_graph::EdgeList;

    fn path_db() -> TitanDb {
        let list: EdgeList = [(0u64, 1u64), (1, 2), (2, 3), (3, 4)].into_iter().collect();
        TitanDb::load(&list)
    }

    #[test]
    fn khop_respects_k() {
        let db = path_db();
        assert_eq!(db.khop(0, 2, "knows").visited, 3);
        assert_eq!(db.khop(0, 10, "knows").visited, 5);
    }

    #[test]
    fn label_filter_prunes() {
        let db = path_db();
        let r = db.khop(0, 3, "follows"); // no edge matches
        assert_eq!(r.visited, 1);
        assert_eq!(r.edges_examined, 1, "the one out-edge was still decoded");
    }

    #[test]
    fn cycle_terminates() {
        let list: EdgeList = [(0u64, 1u64), (1, 0)].into_iter().collect();
        let db = TitanDb::load(&list);
        assert_eq!(db.khop(0, 100, "knows").visited, 2);
    }

    #[test]
    fn pagerank_iteration_shape() {
        // star: 0 -> {1, 2}
        let list: EdgeList = [(0u64, 1u64), (0, 2)].into_iter().collect();
        let db = TitanDb::load(&list);
        let r = db.pagerank_iteration(&[1.0, 1.0, 1.0], 0.85);
        assert!((r[0] - 0.15).abs() < 1e-12);
        assert!((r[1] - (0.15 + 0.425)).abs() < 1e-12);
        assert_eq!(r[1], r[2]);
    }
}
