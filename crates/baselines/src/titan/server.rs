//! The multi-user front end: a thread pool serving concurrent queries.
//!
//! Titan's concurrency model is "many slow queries at once": each
//! client query runs on a pool thread against the shared store. This
//! is what the paper measures in Fig. 7/8a — the server *accepts* 100
//! concurrent 3-hop queries, but each one crawls the record store.

use super::store::TitanDb;
use super::traversal::TitanKhopResult;
use cgraph_graph::VertexId;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A completed query's timing and payload.
#[derive(Clone, Debug)]
pub struct TitanQueryOutcome {
    /// Caller-assigned query index (position in the submitted slice).
    pub query_index: usize,
    /// Traversal payload.
    pub result: TitanKhopResult,
    /// Response time from batch submission to completion.
    pub response_time: Duration,
}

/// Thread-pool query server over a [`TitanDb`].
pub struct TitanServer {
    db: Arc<TitanDb>,
    pool_threads: usize,
}

impl TitanServer {
    /// Creates a server with `pool_threads` worker threads.
    pub fn new(db: TitanDb, pool_threads: usize) -> Self {
        assert!(pool_threads > 0);
        Self { db: Arc::new(db), pool_threads }
    }

    /// The underlying database.
    pub fn db(&self) -> &TitanDb {
        &self.db
    }

    /// Executes `queries` (each `(source, k)`) concurrently on the pool
    /// and reports per-query response times measured from submission.
    pub fn run_concurrent_khop(&self, queries: &[(VertexId, u32)]) -> Vec<TitanQueryOutcome> {
        let submit = Instant::now();
        let next = AtomicUsize::new(0);
        let queries_ref = queries;
        let mut outcomes: Vec<Option<TitanQueryOutcome>> = vec![None; queries.len()];
        let slots = std::sync::Mutex::new(&mut outcomes);
        std::thread::scope(|s| {
            for _ in 0..self.pool_threads.min(queries.len().max(1)) {
                s.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= queries_ref.len() {
                        break;
                    }
                    let (src, k) = queries_ref[i];
                    let result = self.db.khop(src, k, "knows");
                    let outcome = TitanQueryOutcome {
                        query_index: i,
                        result,
                        response_time: submit.elapsed(),
                    };
                    slots.lock().unwrap()[i] = Some(outcome);
                });
            }
        });
        outcomes.into_iter().map(|o| o.expect("query not executed")).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgraph_graph::EdgeList;

    fn ring_db(n: u64) -> TitanDb {
        let list: EdgeList = (0..n).map(|v| (v, (v + 1) % n)).collect();
        TitanDb::load(&list)
    }

    #[test]
    fn concurrent_queries_all_answered() {
        let server = TitanServer::new(ring_db(50), 4);
        let queries: Vec<(u64, u32)> = (0..20).map(|i| (i as u64, 3)).collect();
        let out = server.run_concurrent_khop(&queries);
        assert_eq!(out.len(), 20);
        for (i, o) in out.iter().enumerate() {
            assert_eq!(o.query_index, i);
            assert_eq!(o.result.visited, 4, "3-hop on a ring reaches 4 vertices");
            assert!(o.response_time > Duration::ZERO);
        }
    }

    #[test]
    fn single_thread_pool_serializes() {
        let server = TitanServer::new(ring_db(30), 1);
        let queries: Vec<(u64, u32)> = (0..5).map(|i| (i as u64, 2)).collect();
        let out = server.run_concurrent_khop(&queries);
        // Response times are non-decreasing in submission order on a
        // single worker.
        for w in out.windows(2) {
            assert!(w[1].response_time >= w[0].response_time);
        }
    }
}
