//! The storage layer: records with serialized properties and an
//! ordered adjacency index.
//!
//! Titan stores each edge as a row in a distributed KV store
//! (Cassandra/HBase): property values are serialized bytes that must be
//! decoded on access, and adjacency is a sorted row scan, not an array
//! walk. We reproduce both costs: [`EdgeRecord`] keeps its properties
//! as JSON bytes decoded per read, and adjacency is a `BTreeMap` from
//! vertex to its sorted edge-ID list.

use super::json::{self, Value};
use cgraph_graph::{Edge, EdgeList, VertexId};
use parking_lot::RwLock;
use std::collections::BTreeMap;

/// Properties carried by every edge record (what a minimal social-graph
/// schema stores per edge).
#[derive(Clone, Debug, PartialEq)]
pub struct EdgeProps {
    /// Edge label (relation type).
    pub label: String,
    /// Edge weight.
    pub weight: f32,
    /// Creation timestamp (epoch seconds) — typical audit field.
    pub created_at: u64,
}

impl EdgeProps {
    /// Serializes to the stored JSON payload.
    pub fn to_payload(&self) -> Vec<u8> {
        json::encode_object(&[
            ("label", Value::Str(self.label.clone())),
            ("weight", Value::Num(self.weight as f64)),
            ("created_at", Value::Num(self.created_at as f64)),
        ])
    }

    /// Decodes from a stored JSON payload.
    pub fn from_payload(bytes: &[u8]) -> Option<Self> {
        let obj = json::decode_object(bytes)?;
        Some(Self {
            label: obj.get("label")?.as_str()?.to_string(),
            weight: obj.get("weight")?.as_f64()? as f32,
            created_at: obj.get("created_at")?.as_f64()? as u64,
        })
    }
}

/// One stored edge: endpoints in the clear (the index needs them),
/// properties as serialized bytes (the KV layer's value).
#[derive(Clone, Debug)]
pub struct EdgeRecord {
    /// Source vertex.
    pub src: VertexId,
    /// Destination vertex.
    pub dst: VertexId,
    /// Serialized [`EdgeProps`].
    pub payload: Vec<u8>,
}

impl EdgeRecord {
    /// Decodes the property payload (the per-read cost every traversal
    /// pays in a record-store design).
    pub fn props(&self) -> EdgeProps {
        EdgeProps::from_payload(&self.payload).expect("corrupt edge payload")
    }
}

/// Vertex record: a property document.
#[derive(Clone, Debug)]
pub struct VertexProps {
    /// External ID string (graph DBs key vertices by opaque IDs).
    pub external_id: String,
    /// Vertex label.
    pub label: String,
}

impl VertexProps {
    /// Serializes to the stored JSON payload.
    pub fn to_payload(&self) -> Vec<u8> {
        json::encode_object(&[
            ("external_id", Value::Str(self.external_id.clone())),
            ("label", Value::Str(self.label.clone())),
        ])
    }

    /// Decodes from a stored JSON payload.
    pub fn from_payload(bytes: &[u8]) -> Option<Self> {
        let obj = json::decode_object(bytes)?;
        Some(Self {
            external_id: obj.get("external_id")?.as_str()?.to_string(),
            label: obj.get("label")?.as_str()?.to_string(),
        })
    }
}

pub(crate) struct StoreInner {
    pub(crate) edges: Vec<EdgeRecord>,
    /// vertex -> sorted edge-ID list (out-adjacency index).
    pub(crate) out_index: BTreeMap<VertexId, Vec<u32>>,
    pub(crate) vertices: BTreeMap<VertexId, Vec<u8>>,
}

/// The database handle: a lock-guarded record store.
pub struct TitanDb {
    pub(crate) inner: RwLock<StoreInner>,
}

impl TitanDb {
    /// Creates an empty database.
    pub fn new() -> Self {
        Self {
            inner: RwLock::new(StoreInner {
                edges: Vec::new(),
                out_index: BTreeMap::new(),
                vertices: BTreeMap::new(),
            }),
        }
    }

    /// Bulk-loads an edge list (the "graph ingestion" step the paper
    /// notes "took hours" on the real Titan — ours is merely slow
    /// relative to CSR construction).
    pub fn load(edges: &EdgeList) -> Self {
        let db = Self::new();
        {
            let mut inner = db.inner.write();
            for e in edges.edges() {
                Self::insert_locked(&mut inner, *e);
            }
            for v in 0..edges.num_vertices() {
                inner.vertices.entry(v).or_insert_with(|| {
                    VertexProps { external_id: format!("v{v}"), label: "user".to_string() }
                        .to_payload()
                });
            }
        }
        db
    }

    fn insert_locked(inner: &mut StoreInner, e: Edge) {
        let id = inner.edges.len() as u32;
        let payload = EdgeProps {
            label: "knows".to_string(),
            weight: e.weight,
            created_at: 1_500_000_000 + id as u64,
        }
        .to_payload();
        inner.edges.push(EdgeRecord { src: e.src, dst: e.dst, payload });
        inner.out_index.entry(e.src).or_default().push(id);
    }

    /// Inserts a single edge transactionally.
    pub fn insert_edge(&self, e: Edge) {
        Self::insert_locked(&mut self.inner.write(), e);
    }

    /// Number of stored edges.
    pub fn num_edges(&self) -> usize {
        self.inner.read().edges.len()
    }

    /// Number of stored vertices.
    pub fn num_vertices(&self) -> usize {
        self.inner.read().vertices.len()
    }
}

impl Default for TitanDb {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_and_count() {
        let list: EdgeList = [(0u64, 1u64), (1, 2), (0, 2)].into_iter().collect();
        let db = TitanDb::load(&list);
        assert_eq!(db.num_edges(), 3);
        assert_eq!(db.num_vertices(), 3);
    }

    #[test]
    fn edge_payload_roundtrips() {
        let list: EdgeList = [(0u64, 1u64)].into_iter().collect();
        let db = TitanDb::load(&list);
        let inner = db.inner.read();
        let rec = &inner.edges[0];
        let props = rec.props();
        assert_eq!(props.label, "knows");
        assert_eq!(props.weight, 1.0);
    }

    #[test]
    fn insert_edge_updates_index() {
        let db = TitanDb::new();
        db.insert_edge(Edge::unweighted(5, 9));
        let inner = db.inner.read();
        assert_eq!(inner.out_index.get(&5).unwrap().len(), 1);
        assert!(!inner.out_index.contains_key(&9));
    }
}
