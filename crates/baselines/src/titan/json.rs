//! A tiny in-tree JSON codec for the record payloads.
//!
//! The Titan baseline deliberately pays a serialize-on-write /
//! parse-on-read cost per record, like a KV-backed property store.
//! The build environment has no registry access, so instead of
//! `serde_json` this module hand-rolls the small subset the store
//! needs: flat objects whose values are strings or numbers. The
//! parser does real work per read (byte scanning, escape handling,
//! number parsing), keeping the modeled decode cost honest.

use std::collections::BTreeMap;

/// A decoded JSON scalar.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// A JSON string.
    Str(String),
    /// Any JSON number (stored as f64, as in JavaScript).
    Num(f64),
}

impl Value {
    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            Value::Num(_) => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Str(_) => None,
            Value::Num(n) => Some(*n),
        }
    }
}

/// Serializes a flat object (`&[(key, value)]`) to JSON bytes.
pub fn encode_object(fields: &[(&str, Value)]) -> Vec<u8> {
    let mut out = String::from("{");
    for (i, (k, v)) in fields.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        encode_string(&mut out, k);
        out.push(':');
        match v {
            Value::Str(s) => encode_string(&mut out, s),
            Value::Num(n) => {
                // JSON has no NaN/Infinity; `format!` would emit them
                // verbatim and this module's own `decode_object` would
                // then reject the record as corrupt. Clamp to the
                // nearest representable finite value so every encoded
                // record round-trips.
                let n = if n.is_finite() {
                    *n
                } else if n.is_nan() {
                    0.0
                } else {
                    f64::MAX.copysign(*n)
                };
                if n.fract() == 0.0 && n.abs() < 9e15 {
                    out.push_str(&format!("{}", n as i64));
                } else {
                    out.push_str(&format!("{n}"));
                }
            }
        }
    }
    out.push('}');
    out.into_bytes()
}

fn encode_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses a flat JSON object with string/number values.
/// Returns `None` on any syntax error (corrupt payload).
pub fn decode_object(bytes: &[u8]) -> Option<BTreeMap<String, Value>> {
    let text = std::str::from_utf8(bytes).ok()?;
    let mut p = Parser { chars: text.char_indices().peekable(), text };
    p.skip_ws();
    p.expect('{')?;
    let mut map = BTreeMap::new();
    p.skip_ws();
    if p.peek() == Some('}') {
        p.next();
    } else {
        loop {
            p.skip_ws();
            let key = p.parse_string()?;
            p.skip_ws();
            p.expect(':')?;
            p.skip_ws();
            let val = p.parse_value()?;
            map.insert(key, val);
            p.skip_ws();
            match p.next() {
                Some(',') => continue,
                Some('}') => break,
                _ => return None,
            }
        }
    }
    p.skip_ws();
    if p.peek().is_some() {
        return None; // trailing garbage
    }
    Some(map)
}

struct Parser<'a> {
    chars: std::iter::Peekable<std::str::CharIndices<'a>>,
    text: &'a str,
}

impl Parser<'_> {
    fn peek(&mut self) -> Option<char> {
        self.chars.peek().map(|&(_, c)| c)
    }

    fn next(&mut self) -> Option<char> {
        self.chars.next().map(|(_, c)| c)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(' ' | '\t' | '\n' | '\r')) {
            self.next();
        }
    }

    fn expect(&mut self, want: char) -> Option<()> {
        (self.next() == Some(want)).then_some(())
    }

    fn parse_value(&mut self) -> Option<Value> {
        match self.peek()? {
            '"' => Some(Value::Str(self.parse_string()?)),
            _ => self.parse_number(),
        }
    }

    fn parse_string(&mut self) -> Option<String> {
        self.expect('"')?;
        let mut out = String::new();
        loop {
            match self.next()? {
                '"' => return Some(out),
                '\\' => match self.next()? {
                    '"' => out.push('"'),
                    '\\' => out.push('\\'),
                    '/' => out.push('/'),
                    'n' => out.push('\n'),
                    'r' => out.push('\r'),
                    't' => out.push('\t'),
                    'b' => out.push('\u{8}'),
                    'f' => out.push('\u{c}'),
                    'u' => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            code = code * 16 + self.next()?.to_digit(16)?;
                        }
                        out.push(char::from_u32(code)?);
                    }
                    _ => return None,
                },
                c => out.push(c),
            }
        }
    }

    fn parse_number(&mut self) -> Option<Value> {
        let start = self.chars.peek()?.0;
        let mut end = start;
        while matches!(self.peek(), Some('0'..='9' | '-' | '+' | '.' | 'e' | 'E')) {
            let (i, c) = self.chars.next()?;
            end = i + c.len_utf8();
        }
        self.text[start..end].parse().ok().map(Value::Num)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_flat_object() {
        let bytes = encode_object(&[
            ("label", Value::Str("knows".into())),
            ("weight", Value::Num(2.5)),
            ("created_at", Value::Num(1_500_000_123.0)),
        ]);
        assert_eq!(
            std::str::from_utf8(&bytes).unwrap(),
            r#"{"label":"knows","weight":2.5,"created_at":1500000123}"#
        );
        let obj = decode_object(&bytes).unwrap();
        assert_eq!(obj["label"], Value::Str("knows".into()));
        assert_eq!(obj["weight"], Value::Num(2.5));
        assert_eq!(obj["created_at"].as_f64(), Some(1_500_000_123.0));
    }

    #[test]
    fn escapes_roundtrip() {
        let tricky = "a\"b\\c\nd\te\u{1}";
        let bytes = encode_object(&[("s", Value::Str(tricky.into()))]);
        let obj = decode_object(&bytes).unwrap();
        assert_eq!(obj["s"].as_str(), Some(tricky));
    }

    #[test]
    fn non_finite_numbers_still_roundtrip() {
        let bytes = encode_object(&[
            ("nan", Value::Num(f64::NAN)),
            ("pinf", Value::Num(f64::INFINITY)),
            ("ninf", Value::Num(f64::NEG_INFINITY)),
        ]);
        let obj = decode_object(&bytes).expect("clamped encoding must stay parseable");
        assert_eq!(obj["nan"].as_f64(), Some(0.0));
        assert_eq!(obj["pinf"].as_f64(), Some(f64::MAX));
        assert_eq!(obj["ninf"].as_f64(), Some(f64::MIN));
    }

    #[test]
    fn corrupt_inputs_rejected() {
        assert!(decode_object(b"").is_none());
        assert!(decode_object(b"{").is_none());
        assert!(decode_object(b"{\"a\":}").is_none());
        assert!(decode_object(b"{\"a\":1} x").is_none());
        assert!(decode_object(&[0xFF, 0xFE]).is_none());
    }

    #[test]
    fn whitespace_tolerated() {
        let obj = decode_object(b" { \"a\" : 1 , \"b\" : \"x\" } ").unwrap();
        assert_eq!(obj["a"], Value::Num(1.0));
        assert_eq!(obj["b"].as_str(), Some("x"));
    }
}
