//! The transaction layer: reads run inside a shared-lock transaction.
//!
//! Titan wraps every Gremlin traversal in a transaction. Our
//! [`ReadTx`] holds the store's read lock for its lifetime and exposes
//! record-at-a-time access — the interface the traversal layer is
//! forced to use (no bulk array access, unlike C-Graph's shards).

use super::store::{EdgeProps, StoreInner, TitanDb, VertexProps};
use cgraph_graph::VertexId;
use parking_lot::RwLockReadGuard;

/// A read transaction over the store.
pub struct ReadTx<'db> {
    guard: RwLockReadGuard<'db, StoreInner>,
}

impl TitanDb {
    /// Opens a read transaction.
    pub fn read_tx(&self) -> ReadTx<'_> {
        ReadTx { guard: self.inner.read() }
    }
}

impl ReadTx<'_> {
    /// Edge IDs leaving `v` (empty when the vertex has no out-edges).
    pub fn out_edges(&self, v: VertexId) -> &[u32] {
        self.guard.out_index.get(&v).map(Vec::as_slice).unwrap_or(&[])
    }

    /// The destination of edge `id`.
    pub fn edge_dst(&self, id: u32) -> VertexId {
        self.guard.edges[id as usize].dst
    }

    /// Decodes the property document of edge `id` (per-read decode —
    /// the record-store cost).
    pub fn edge_props(&self, id: u32) -> EdgeProps {
        self.guard.edges[id as usize].props()
    }

    /// Decodes the property document of vertex `v`.
    pub fn vertex_props(&self, v: VertexId) -> Option<VertexProps> {
        self.guard
            .vertices
            .get(&v)
            .map(|bytes| VertexProps::from_payload(bytes).expect("corrupt vertex payload"))
    }

    /// True when the vertex exists.
    pub fn has_vertex(&self, v: VertexId) -> bool {
        self.guard.vertices.contains_key(&v) || self.guard.out_index.contains_key(&v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgraph_graph::EdgeList;

    #[test]
    fn tx_reads_records() {
        let list: EdgeList = [(0u64, 1u64), (0, 2)].into_iter().collect();
        let db = TitanDb::load(&list);
        let tx = db.read_tx();
        let ids = tx.out_edges(0);
        assert_eq!(ids.len(), 2);
        let dsts: Vec<_> = ids.iter().map(|&id| tx.edge_dst(id)).collect();
        assert_eq!(dsts, vec![1, 2]);
        assert!(tx.has_vertex(2));
        assert!(!tx.has_vertex(99));
        assert_eq!(tx.vertex_props(1).unwrap().external_id, "v1");
    }

    #[test]
    fn concurrent_read_txs_allowed() {
        let list: EdgeList = [(0u64, 1u64)].into_iter().collect();
        let db = TitanDb::load(&list);
        let t1 = db.read_tx();
        let t2 = db.read_tx();
        assert_eq!(t1.out_edges(0).len(), t2.out_edges(0).len());
    }
}
