//! A miniature Titan/JanusGraph-style property-graph database.
//!
//! Structure mirrors the layering of the original system:
//!
//! * [`store`] — the storage layer: vertex/edge *records* whose
//!   properties live as serialized JSON bytes (decoded on every read,
//!   as a columnar KV backend like Cassandra forces), and an ordered
//!   adjacency index (`BTreeMap`) rather than packed arrays.
//! * [`tx`] — the transaction layer: all reads run inside a
//!   [`tx::ReadTx`] holding a shared lock on the store.
//! * [`traversal`] — Gremlin-style k-hop traversal: per-query
//!   `HashSet` visited set, record lookups per edge.
//! * [`server`] — the multi-user front end: a thread pool executes
//!   concurrent queries (Titan's one strength — it *does* accept
//!   concurrent load, it is just slow per query).

pub mod json;
pub mod server;
pub mod store;
pub mod traversal;
pub mod tx;

pub use server::TitanServer;
pub use store::TitanDb;
