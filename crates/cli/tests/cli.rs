//! End-to-end tests of the `cgraph` binary: generate → stats →
//! convert → query → bench, through real process invocations.

use std::path::PathBuf;
use std::process::{Command, Output};

fn cgraph(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_cgraph")).args(args).output().expect("spawn cgraph binary")
}

fn cgraph_stdin(args: &[&str], stdin: &str) -> Output {
    use std::io::Write;
    use std::process::Stdio;
    let mut child = Command::new(env!("CARGO_BIN_EXE_cgraph"))
        .args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn cgraph binary");
    child.stdin.as_mut().unwrap().write_all(stdin.as_bytes()).unwrap();
    child.wait_with_output().expect("wait for cgraph")
}

fn tmpfile(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("cgraph-cli-test-{}-{name}", std::process::id()));
    p
}

#[test]
fn full_pipeline() {
    let bin = tmpfile("pipe.cg");
    let txt = tmpfile("pipe.el");
    let bin_s = bin.to_str().unwrap();
    let txt_s = txt.to_str().unwrap();

    // generate
    let out = cgraph(&["generate", "graph500", "10", "8", "--seed", "5", "-o", bin_s]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("wrote"), "{stdout}");

    // stats
    let out = cgraph(&["stats", bin_s]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("vertices"), "{stdout}");
    assert!(stdout.contains("degree histogram"), "{stdout}");

    // convert to text and back
    let out = cgraph(&["convert", bin_s, txt_s]);
    assert!(out.status.success());
    assert!(txt.exists());

    // query via -e
    let out = cgraph(&["query", bin_s, "-p", "2", "-e", "STATS", "-e", "KHOP 0 2"]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("[0]"), "{stdout}");
    assert!(stdout.contains("[1]"), "{stdout}");
    assert!(stdout.contains("reachable"), "{stdout}");

    // query via stdin
    let out = cgraph_stdin(&["query", bin_s], "COMPONENTS\n");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("[0]"), "{stdout}");

    // bench
    let out = cgraph(&["bench", bin_s, "-p", "2", "-q", "10", "-k", "2"]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("10 concurrent 2-hop queries"), "{stdout}");

    std::fs::remove_file(bin).ok();
    std::fs::remove_file(txt).ok();
}

#[test]
fn errors_are_reported() {
    // unknown command
    let out = cgraph(&["frobnicate"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));

    // missing file
    let out = cgraph(&["stats", "/nonexistent/graph.cg"]);
    assert!(!out.status.success());

    // bad model
    let out = cgraph(&["generate", "nonsense", "-o", "/tmp/x.cg"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown model"));

    // parse error in query
    let bin = tmpfile("err.cg");
    let bin_s = bin.to_str().unwrap();
    assert!(cgraph(&["generate", "er", "50", "100", "-o", bin_s]).status.success());
    let out = cgraph(&["query", bin_s, "-e", "BOGUS 1"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));
    std::fs::remove_file(bin).ok();
}

#[test]
fn help_prints_usage() {
    let out = cgraph(&["help"]);
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("USAGE"));
    // No args at all → usage on stderr, exit code 2.
    let out = cgraph(&[]);
    assert_eq!(out.status.code(), Some(2));
}
