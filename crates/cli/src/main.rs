//! `cgraph` — the command-line face of the C-Graph engine.
//!
//! ```text
//! cgraph generate <MODEL> [ARGS..] -o graph.cg     synthesize a graph
//! cgraph stats <graph.{cg,el}>                     summary + degree histogram
//! cgraph convert <in> <out>                        text <-> binary edge lists
//! cgraph query <graph> [-p MACHINES] [-e STMT..]   run query statements
//! cgraph bench <graph> [-p M] [-q N] [-k K]        concurrent k-hop benchmark
//! cgraph serve <graph> [-p M]                      streaming service on stdin
//! cgraph replay <graph> [-p M] [-q N] [--rate R]   open-loop stream replay
//! cgraph mutate <graph> [-p M]                     live mutation script on stdin
//! ```
//!
//! Models for `generate`: `graph500 <scale> <edge_factor>`,
//! `rmat <scale> <edges>`, `er <vertices> <edges>`,
//! `smallworld <vertices> <k> <beta>`, `ba <vertices> <m>`.
//! Seeds default to 42 (`--seed` overrides). File format is chosen by
//! extension: `.cg` binary, anything else text.

use cgraph_core::{DistributedEngine, EngineConfig, KhopQuery, QueryScheduler, SchedulerConfig};
use cgraph_graph::{Csr, EdgeList, GraphStats};
use std::process::ExitCode;

mod args;
mod commands;

use args::Args;

fn main() -> ExitCode {
    // Die quietly on a closed pipe (`cgraph stats | head`) instead of
    // panicking: restore the default SIGPIPE disposition Rust masks.
    #[cfg(unix)]
    unsafe {
        libc::signal(libc::SIGPIPE, libc::SIG_DFL);
    }
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = argv.split_first() else {
        eprintln!("{}", USAGE);
        return ExitCode::from(2);
    };
    let args = Args::new(rest.to_vec());
    let result = match cmd.as_str() {
        "generate" => commands::generate(args),
        "stats" => commands::stats(args),
        "convert" => commands::convert(args),
        "query" => commands::query(args),
        "bench" => commands::bench(args),
        "serve" => commands::serve(args),
        "replay" => commands::replay(args),
        "mutate" => commands::mutate(args),
        "help" | "--help" | "-h" => {
            println!("{}", USAGE);
            Ok(())
        }
        other => Err(format!("unknown command {other:?}\n{}", USAGE)),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("cgraph: {msg}");
            ExitCode::from(1)
        }
    }
}

const USAGE: &str = "\
cgraph — concurrent graph reachability queries (C-Graph, ICPP'18)

USAGE:
  cgraph generate <MODEL> [MODEL-ARGS..] [--seed S] -o <FILE>
  cgraph stats <FILE>
  cgraph convert <IN> <OUT>
  cgraph query <FILE> [-p MACHINES] [-e STATEMENT]...  (or statements on stdin)
  cgraph bench <FILE> [-p MACHINES] [-q QUERIES] [-k HOPS]
  cgraph serve <FILE> [-p MACHINES] [--delay-us D] [--depth N]   (queries on stdin: \"SRC.. K\")
  cgraph replay <FILE> [-p MACHINES] [-q QUERIES] [-k HOPS] [--rate QPS] [--zipf A]
  cgraph mutate <FILE> [-p MACHINES]   (ops on stdin: \"add S D [W]\" / \"del S D\" /
                                        \"commit\" / \"query SRC.. K\")

SERVICE BATCHING (serve & replay):
  --batch-width W    packed traversal width: 64, 128, 256 or 512 lanes
                     per batch (default 64); the memory budget may
                     step a wide batch back down

QUERY PLANE (serve & replay):
  --cache-mb MB      result cache capacity in MiB (0 = off, the default);
                     deterministic CLOCK eviction, repeat queries answered
                     without burning a lane
  --coalesce         single-flight identical (source, k) queries: queued
                     and in-flight duplicates share one execution
  --pack-locality    pack batches by source partition locality (bounded
                     fairness; cold partitions are never starved)
  --zipf A           (replay) draw sources from a seeded Zipf(A) stream —
                     repeat-heavy traffic the query plane can harvest
                     (0 = legacy near-uniform stream; see --zipf-seed)

INDEX TIER (serve & replay):
  --index            build the boundary reachability index at start and after
                     every epoch commit: small-k queries from indexed boundary
                     sources are answered without traversing (bit-identical),
                     and batched traversals prune provably no-op deliveries
  --index-hops H     hop budget of the per-source distance sketches
                     (default 16, clamped to 1..=62); queries deeper than a
                     sketch's horizon fall back to the traversal path

SERVICE ROBUSTNESS (serve & replay):
  --chaos SPEC       deterministic fault plan, e.g.
                     \"seed=7,crash=1@3,drop=0.01,heal=1,jobs=0..4\"
  --deadline-ms MS   per-query deadline (0 = none)
  --retries N        whole-batch retries with backoff (default 2)
  --ckpt-interval K  checkpoint every K supersteps (default 4)
  --degrade-after N  drop to p-1 machines after N same-machine crashes (0 = never)

LIVE MUTATIONS (mutate, serve & replay):
  --update-stream F  (serve/replay) apply an edge-update file (\"add S D [W]\" /
                     \"del S D\" lines) on a background thread while queries flow;
                     one final commit publishes the tail when the file drains
  --commit-every N   auto-commit a new graph epoch once N updates are buffered
                     (0 = only explicit `commit` ops / end-of-stream)
  --fold-threshold N fold the delta overlay into fresh base edge-sets when a
                     commit would leave more than N overlay rows (default 65536)

DURABILITY (mutate, serve & replay):
  --data-dir DIR     restart-capable serving: every update batch is WAL-logged
                     before it is buffered and every epoch commit is fenced on
                     disk; on start the service recovers the newest valid
                     snapshot + WAL tail from DIR (kill -9 safe), or ingests
                     the graph file fresh when DIR is empty
  --snapshot-every N write a checksummed epoch snapshot every N commits
                     (default 8; temp-file + atomic rename, older snapshots
                     pruned); disk faults from --chaos (torn=/short=/flip=/
                     lost=) are injected on this write path

OBSERVABILITY (serve & replay):
  --metrics [PATH]   after the stream drains, write a metrics snapshot
                     (Prometheus text format) to PATH, or stdout if no
                     PATH / PATH is \"-\"
  --trace-out PATH   write the deterministic, replayable trace event log
                     to PATH (\"-\" = stdout); see OBSERVABILITY.md

MODELS:
  graph500 <scale> <edge_factor>
  rmat <scale> <edges>
  er <vertices> <edges>
  smallworld <vertices> <k> <beta>
  ba <vertices> <m>";

/// Loads an edge list by extension (`.cg` binary, otherwise text).
pub fn load_graph(path: &str) -> Result<EdgeList, String> {
    let loaded = if path.ends_with(".cg") {
        cgraph_gen::io::read_binary(path)
    } else {
        cgraph_gen::io::read_text(path)
    };
    loaded.map_err(|e| format!("cannot read {path}: {e}"))
}

/// Saves an edge list by extension.
pub fn save_graph(path: &str, list: &EdgeList) -> Result<(), String> {
    let saved = if path.ends_with(".cg") {
        cgraph_gen::io::write_binary(path, list)
    } else {
        cgraph_gen::io::write_text(path, list)
    };
    saved.map_err(|e| format!("cannot write {path}: {e}"))
}

/// Builds an engine over `p` simulated machines.
pub fn build_engine(edges: &EdgeList, p: usize) -> DistributedEngine {
    DistributedEngine::new(edges, EngineConfig::new(p))
}

/// Shared pieces used by the `stats` and `bench` commands.
pub fn summary(edges: &EdgeList) -> (GraphStats, Vec<usize>) {
    let csr = Csr::from_edges(edges.num_vertices(), edges.edges());
    (GraphStats::from_csr(&csr), cgraph_graph::stats::degree_histogram(&csr))
}

/// Runs the concurrent k-hop benchmark used by `cgraph bench`.
pub fn run_bench(edges: &EdgeList, machines: usize, queries: usize, k: u32) -> String {
    let engine = build_engine(edges, machines);
    let n = edges.num_vertices();
    let qs: Vec<KhopQuery> = (0..queries)
        .map(|i| KhopQuery::single(i, (i as u64).wrapping_mul(0x9E37) % n, k))
        .collect();
    let t0 = std::time::Instant::now();
    let results = QueryScheduler::new(&engine, SchedulerConfig::default()).execute(&qs);
    let wall = t0.elapsed();
    let stats = cgraph_core::ResponseStats::new(
        results.iter().map(|r| r.response_time).collect::<Vec<_>>(),
    );
    let visited: u64 = results.iter().map(|r| r.visited).sum();
    format!(
        "{queries} concurrent {k}-hop queries on {machines} machine(s): \
         total {wall:?}, mean response {:?}, p95 {:?}, max {:?}, {visited} vertices visited",
        stats.mean(),
        stats.quantile(0.95),
        stats.max()
    )
}
