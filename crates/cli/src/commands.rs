//! Command implementations.

use crate::args::Args;
use crate::{build_engine, load_graph, run_bench, save_graph, summary};
use cgraph_core::{
    DurabilityConfig, EdgeUpdate, EngineConfig, FaultPlan, GroupConfig, IndexBuilder, IndexConfig,
    KhopQuery, MutationConfig, QueryPlaneConfig, RecoveryConfig, RouterConfig, SchedulerConfig,
    ServiceConfig, ServiceGroup,
};
use cgraph_index::BoundaryIndexBuilder;
use cgraph_obs::{Obs, TraceSink};
use cgraph_ql::Session;
use std::io::Read;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// `cgraph generate <MODEL> [ARGS..] [--seed S] -o <FILE>`
pub fn generate(args: Args) -> Result<(), String> {
    args.reject_unknown(&["--seed", "-o", "--raw"])?;
    let model = args.require(0, "model name")?.to_string();
    let seed: u64 = args.flag_parse("--seed", 42)?;
    let out = args.flag("-o").ok_or("missing -o <FILE>")?.to_string();
    let list = match model.as_str() {
        "graph500" => {
            let scale: u32 = args.pos_parse(1, "scale")?;
            let ef: usize = args.pos_parse(2, "edge factor")?;
            cgraph_gen::graph500(scale, ef, seed)
        }
        "rmat" => {
            let scale: u32 = args.pos_parse(1, "scale")?;
            let edges: usize = args.pos_parse(2, "edge count")?;
            cgraph_gen::rmat(scale, edges, cgraph_gen::RmatParams::GRAPH500, seed)
        }
        "er" => {
            let n: u64 = args.pos_parse(1, "vertex count")?;
            let m: usize = args.pos_parse(2, "edge count")?;
            cgraph_gen::erdos_renyi(n, m, seed)
        }
        "smallworld" => {
            let n: u64 = args.pos_parse(1, "vertex count")?;
            let k: usize = args.pos_parse(2, "ring degree k")?;
            let beta: f64 = args.pos_parse(3, "rewire probability")?;
            cgraph_gen::small_world(n, k, beta, seed)
        }
        "ba" => {
            let n: u64 = args.pos_parse(1, "vertex count")?;
            let m: usize = args.pos_parse(2, "attachments per vertex")?;
            cgraph_gen::pref_attach(n, m, seed)
        }
        other => return Err(format!("unknown model {other:?}")),
    };
    // Clean before writing (dedup, drop loops) unless told otherwise.
    let list = if args.switch("--raw") {
        list
    } else {
        let mut b = cgraph_graph::GraphBuilder::new();
        b.add_edge_list(&list);
        b.build().edges
    };
    save_graph(&out, &list)?;
    println!("wrote {} vertices, {} edges to {out}", list.num_vertices(), list.len());
    Ok(())
}

/// `cgraph stats <FILE>`
pub fn stats(args: Args) -> Result<(), String> {
    args.reject_unknown(&[])?;
    let path = args.require(0, "graph file")?;
    let edges = load_graph(path)?;
    let (s, hist) = summary(&edges);
    println!("graph     : {path}");
    println!("vertices  : {}", s.num_vertices);
    println!("edges     : {}", s.num_edges);
    println!("E/V ratio : {:.2}", s.edge_vertex_ratio());
    println!(
        "out-degree: min {}, median {}, mean {:.1}, max {}, isolated {}",
        s.degrees.min, s.degrees.median, s.degrees.mean, s.degrees.max, s.degrees.isolated
    );
    println!("degree histogram (2^i buckets):");
    for (i, count) in hist.iter().enumerate() {
        if *count > 0 {
            let lo = if i == 0 { 0 } else { 1usize << i };
            println!("  [{lo:>8}, {:>8}) : {count}", 1usize << (i + 1));
        }
    }
    Ok(())
}

/// `cgraph convert <IN> <OUT>`
pub fn convert(args: Args) -> Result<(), String> {
    args.reject_unknown(&[])?;
    let input = args.require(0, "input file")?;
    let output = args.require(1, "output file")?.to_string();
    let edges = load_graph(input)?;
    save_graph(&output, &edges)?;
    println!("converted {input} -> {output} ({} edges)", edges.len());
    Ok(())
}

/// `cgraph query <FILE> [-p MACHINES] [-e STATEMENT]...`
pub fn query(args: Args) -> Result<(), String> {
    args.reject_unknown(&["-p", "-e"])?;
    let path = args.require(0, "graph file")?;
    let machines: usize = args.flag_parse("-p", 3)?;
    let edges = load_graph(path)?;
    let engine = build_engine(&edges, machines);
    let session = Session::new(&engine);

    let program = {
        let inline = args.flag_all("-e");
        if inline.is_empty() {
            let mut buf = String::new();
            std::io::stdin()
                .read_to_string(&mut buf)
                .map_err(|e| format!("cannot read stdin: {e}"))?;
            buf
        } else {
            inline.join("\n")
        }
    };
    let queries = cgraph_ql::parse_program(&program).map_err(|e| e.to_string())?;
    if queries.is_empty() {
        return Err("no statements given (use -e or stdin)".into());
    }
    let answers = session.execute_batch(queries);
    for a in &answers {
        println!("[{}] {}  ({:?})", a.index, a.output, a.response_time);
    }
    Ok(())
}

/// `cgraph bench <FILE> [-p MACHINES] [-q QUERIES] [-k HOPS]`
pub fn bench(args: Args) -> Result<(), String> {
    args.reject_unknown(&["-p", "-q", "-k"])?;
    let path = args.require(0, "graph file")?;
    let machines: usize = args.flag_parse("-p", 3)?;
    let queries: usize = args.flag_parse("-q", 100)?;
    let k: u32 = args.flag_parse("-k", 3)?;
    let edges = load_graph(path)?;
    println!("{}", run_bench(&edges, machines, queries, k));
    Ok(())
}

/// Flags shared by `serve` and `replay` for [`start_service`].
const SERVICE_FLAGS: &[&str] = &[
    "-p",
    "--replicas",
    "--router-seed",
    "--batch-width",
    "--delay-us",
    "--depth",
    "--cache-mb",
    "--coalesce",
    "--index",
    "--index-hops",
    "--pack-locality",
    "--chaos",
    "--deadline-ms",
    "--retries",
    "--ckpt-interval",
    "--degrade-after",
    "--update-stream",
    "--commit-every",
    "--fold-threshold",
    "--data-dir",
    "--snapshot-every",
    "--metrics",
    "--trace-out",
];

/// Where the observability plane's output goes after the stream
/// drains: a metrics snapshot (Prometheus text format) and/or the
/// replayable trace event log. `"-"` means stdout.
struct ObsOut {
    obs: Arc<Obs>,
    metrics_to: Option<String>,
    trace_to: Option<String>,
}

/// Builds the [`Obs`] bundle when `--metrics` and/or `--trace-out` was
/// given. `--metrics` works as a bare switch (print to stdout) or with
/// a path; `--trace-out` always takes a path (or `-` for stdout).
fn obs_from_args(args: &Args) -> Option<ObsOut> {
    let metrics_to = if args.switch("--metrics") {
        Some("-".to_string())
    } else {
        args.flag("--metrics").map(str::to_string)
    };
    let trace_to = args.flag("--trace-out").map(str::to_string);
    if metrics_to.is_none() && trace_to.is_none() {
        return None;
    }
    Some(ObsOut { obs: Obs::shared(), metrics_to, trace_to })
}

/// Writes the metrics snapshot and the drained trace log to their
/// configured sinks once the stream has drained.
fn write_obs(out: &ObsOut) -> Result<(), String> {
    let emit = |target: &str, what: &str, text: String| -> Result<(), String> {
        if target == "-" {
            print!("{text}");
            Ok(())
        } else {
            std::fs::write(target, text).map_err(|e| format!("cannot write {what} {target}: {e}"))
        }
    };
    if let Some(t) = &out.trace_to {
        let events = out.obs.trace.drain();
        emit(t, "--trace-out", TraceSink::render(&events))?;
    }
    if let Some(t) = &out.metrics_to {
        emit(t, "--metrics", out.obs.metrics.render_text())?;
    }
    Ok(())
}

/// Builds a running serving tier — a [`ServiceGroup`] of `--replicas`
/// query front-ends (default 1, the classic single service) over one
/// shared cluster — from common serve/replay flags.
fn start_service(args: &Args, path: &str, obs: Option<&ObsOut>) -> Result<ServiceGroup, String> {
    let machines: usize = args.flag_parse("-p", 3)?;
    let replicas: usize = args.flag_parse("--replicas", 1)?;
    if replicas == 0 || replicas > 64 {
        return Err(format!("bad --replicas {replicas}: must be between 1 and 64"));
    }
    let router_seed: u64 = args.flag_parse("--router-seed", 0)?;
    let batch_width: usize = args.flag_parse("--batch-width", 64)?;
    if !matches!(batch_width, 64 | 128 | 256 | 512) {
        return Err(format!("bad --batch-width {batch_width}: must be 64, 128, 256 or 512"));
    }
    let delay_us: u64 = args.flag_parse("--delay-us", 2000)?;
    let depth: usize = args.flag_parse("--depth", 1024)?;
    let fault_plan = match args.flag("--chaos") {
        Some(spec) => Some(FaultPlan::parse(spec).map_err(|e| format!("bad --chaos spec: {e}"))?),
        None => None,
    };
    let deadline_ms: u64 = args.flag_parse("--deadline-ms", 0)?;
    let max_retries: u32 = args.flag_parse("--retries", 2)?;
    let ckpt: u32 = args.flag_parse("--ckpt-interval", 4)?;
    let degrade: u32 = args.flag_parse("--degrade-after", 0)?;
    let cache_mb: usize = args.flag_parse("--cache-mb", 0)?;
    let query_plane = QueryPlaneConfig {
        cache_capacity_bytes: (cache_mb > 0).then_some(cache_mb << 20),
        coalesce: args.switch("--coalesce"),
        pack_locality: args.switch("--pack-locality"),
        ..Default::default()
    };
    let index_hops: u32 = args.flag_parse("--index-hops", IndexConfig::default().hops)?;
    let index = args.switch("--index").then(|| {
        Arc::new(BoundaryIndexBuilder::new(IndexConfig { hops: index_hops, ..Default::default() }))
            as Arc<dyn IndexBuilder>
    });
    let commit_every: usize = args.flag_parse("--commit-every", 0)?;
    let mutation = MutationConfig {
        commit_threshold: (commit_every > 0).then_some(commit_every),
        fold_threshold: args
            .flag_parse("--fold-threshold", MutationConfig::default().fold_threshold)?,
    };
    let snapshot_every: u64 = args.flag_parse("--snapshot-every", 8)?;
    let durability = args
        .flag("--data-dir")
        .map(|dir| DurabilityConfig::new(dir).snapshot_every(snapshot_every));
    let edges = load_graph(path)?;
    let config = ServiceConfig {
        scheduler: SchedulerConfig { batch_lanes: batch_width, ..Default::default() },
        max_batch_delay: Duration::from_micros(delay_us),
        max_queue_depth: depth,
        fault_plan,
        query_deadline: (deadline_ms > 0).then(|| Duration::from_millis(deadline_ms)),
        query_plane,
        index,
        mutation,
        durability,
        max_retries,
        recovery: RecoveryConfig { checkpoint_interval: ckpt, ..Default::default() },
        degrade_after: (degrade > 0).then_some(degrade),
        obs: obs.map(|o| Arc::clone(&o.obs)),
        ..Default::default()
    };
    let group_config = GroupConfig {
        replicas,
        router: RouterConfig { seed: router_seed, ..Default::default() },
        service: config,
    };
    if group_config.service.durability.is_some() {
        // Durable (restart-capable) serving: resume from whatever
        // committed state survives in --data-dir, or ingest the graph
        // file fresh at epoch 0 when the directory is empty.
        let (service, rec) =
            ServiceGroup::open_or_recover(&edges, EngineConfig::new(machines), group_config)
                .map_err(|e| e.to_string())?;
        println!(
            "recovery recovered={} epoch={} wal_replayed={} snapshots_corrupt={} \
             wal_truncated_bytes={} pending_restored={}",
            u64::from(rec.recovered),
            rec.epoch,
            rec.wal_records_replayed,
            rec.snapshots_corrupt,
            rec.wal_truncated_bytes,
            rec.pending_restored,
        );
        Ok(service)
    } else {
        let engine = Arc::new(build_engine(&edges, machines));
        ServiceGroup::try_start(engine, group_config).map_err(|e| e.to_string())
    }
}

/// Parses one edge-update line: `add SRC DST [W]` (alias `+`) or
/// `del SRC DST` (alias `-`). Blank lines and `#` comments yield
/// `Ok(None)`.
pub fn parse_update_line(line: &str) -> Result<Option<EdgeUpdate>, String> {
    let tokens: Vec<&str> = line.split_whitespace().collect();
    if tokens.is_empty() || tokens[0].starts_with('#') {
        return Ok(None);
    }
    let parse = |t: &str| t.parse::<u64>().map_err(|_| format!("bad vertex {t:?}"));
    match tokens[0] {
        "add" | "+" => match tokens.len() {
            3 => Ok(Some(EdgeUpdate::insert(parse(tokens[1])?, parse(tokens[2])?))),
            4 => {
                let w: f32 =
                    tokens[3].parse().map_err(|_| format!("bad weight {:?}", tokens[3]))?;
                Ok(Some(EdgeUpdate::insert_weighted(parse(tokens[1])?, parse(tokens[2])?, w)))
            }
            _ => Err(format!("need `add SRC DST [W]`, got {:?}", line.trim())),
        },
        "del" | "-" => {
            if tokens.len() != 3 {
                return Err(format!("need `del SRC DST`, got {:?}", line.trim()));
            }
            Ok(Some(EdgeUpdate::delete(parse(tokens[1])?, parse(tokens[2])?)))
        }
        other => Err(format!("unknown update op {other:?} (expected add/+/del/-)")),
    }
}

/// Streams edge updates from `path` into the service on a background
/// thread: updates apply in chunks (so a `--commit-every` threshold
/// can fire between them), and one final [`ServiceGroup::commit_epoch`]
/// publishes whatever the threshold left pending once the file drains.
fn spawn_update_stream(service: Arc<ServiceGroup>, path: String) -> std::thread::JoinHandle<()> {
    std::thread::spawn(move || {
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("cgraph: cannot read --update-stream {path}: {e}");
                return;
            }
        };
        let mut buf: Vec<EdgeUpdate> = Vec::new();
        let flush = |buf: &mut Vec<EdgeUpdate>| {
            if buf.is_empty() {
                return;
            }
            if let Err(e) = service.apply_updates(buf.drain(..).collect()) {
                eprintln!("cgraph: --update-stream: {e}");
            }
        };
        for line in text.lines() {
            match parse_update_line(line) {
                Ok(Some(u)) => buf.push(u),
                Ok(None) => {}
                Err(e) => eprintln!("cgraph: --update-stream: {e}"),
            }
            if buf.len() >= 256 {
                flush(&mut buf);
            }
        }
        flush(&mut buf);
        match service.commit_epoch() {
            Ok(ep) => eprintln!("cgraph: update stream drained; committed epoch {ep}"),
            Err(e) => eprintln!("cgraph: --update-stream final commit: {e}"),
        }
    })
}

/// Prints the service's lifetime latency summary. The first line is
/// the canonical machine-parseable `stats` record (`key=value` pairs,
/// fixed order) that operators and tests key on; the human-readable
/// summary follows.
fn print_service_stats(service: &ServiceGroup) {
    let s = service.stats();
    let r = service.router_stats();
    println!(
        "stats completed={} failed={} deadline_exceeded={} batches={} retries={} \
         recoveries={} checkpoints_taken={} checkpoints_restored={} partitions_replayed={} \
         full_rollbacks={} degraded={} cache_hits={} cache_misses={} cache_insertions={} \
         cache_evictions={} coalesced={} updates_applied={} updates_inserted={} \
         updates_deleted={} epoch_commits={} epoch_folds={} pending_updates={} \
         delta_entries={} delta_bytes={} wal_records={} wal_bytes={} snapshots={} \
         snapshot_bytes={} wal_replayed={} snapshots_corrupt={} durable_recoveries={} \
         last_snapshot_epoch={} index_builds={} index_only={} index_pruned_sends={} \
         index_pruned_partitions={} index_sources={} index_bytes={} replicas={} \
         router_locality={} router_heat={} router_balance={}",
        s.queries_completed,
        s.queries_failed,
        s.queries_deadline_exceeded,
        s.batches_dispatched,
        s.retries,
        s.recoveries,
        s.checkpoints_taken,
        s.checkpoints_restored,
        s.partitions_replayed,
        s.full_rollbacks,
        s.degraded_generations,
        s.cache_hits,
        s.cache_misses,
        s.cache_insertions,
        s.cache_evictions,
        s.coalesced_traversals,
        s.updates_applied,
        s.updates_inserted,
        s.updates_deleted,
        s.epoch_commits,
        s.epoch_folds,
        s.pending_updates,
        s.delta_entries,
        s.delta_bytes,
        s.wal_records,
        s.wal_bytes,
        s.snapshots_written,
        s.snapshot_bytes,
        s.wal_replayed,
        s.snapshots_corrupt,
        s.durable_recoveries,
        s.last_snapshot_epoch,
        s.index_builds,
        s.index_only_answers,
        s.index_pruned_sends,
        s.index_pruned_partitions,
        s.index_sources,
        s.index_bytes,
        service.replicas(),
        r.locality,
        r.heat_steered,
        r.balance,
    );
    println!(
        "served {} queries ({} failed, {} past deadline) in {} batches; \
         wait p50 {:?}, response p50 {:?} / p95 {:?} / max {:?}",
        s.queries_completed,
        s.queries_failed,
        s.queries_deadline_exceeded,
        s.batches_dispatched,
        s.admission_wait.median(),
        s.response.median(),
        s.response.quantile(0.95),
        s.response.max(),
    );
    if service.replicas() > 1 {
        println!(
            "serving tier: {} replicas, per-replica queries {:?} ({} locality, \
             {} heat-steered, {} balance-spilled)",
            service.replicas(),
            r.routed,
            r.locality,
            r.heat_steered,
            r.balance,
        );
    }
    if s.cache_hits + s.cache_misses + s.coalesced_traversals > 0 {
        let lookups = s.cache_hits + s.cache_misses;
        let pct = if lookups > 0 { 100.0 * s.cache_hits as f64 / lookups as f64 } else { 0.0 };
        println!(
            "query plane: {} cache hits / {} lookups ({pct:.1}%), {} inserted, {} evicted, \
             {} entries ({} B) resident, {} traversals coalesced",
            s.cache_hits,
            lookups,
            s.cache_insertions,
            s.cache_evictions,
            s.cache_entries,
            s.cache_bytes,
            s.coalesced_traversals,
        );
    }
    if s.index_builds > 0 {
        println!(
            "index tier: {} builds, {} sources ({} B) resident; {} queries answered \
             index-only, {} deliveries / {} partition rounds pruned",
            s.index_builds,
            s.index_sources,
            s.index_bytes,
            s.index_only_answers,
            s.index_pruned_sends,
            s.index_pruned_partitions,
        );
    }
    if s.updates_applied + s.epoch_commits + s.pending_updates > 0 {
        println!(
            "mutations: {} updates ({} inserts, {} deletes) across {} epoch commits \
             ({} folds); {} pending, {} delta rows ({} B) live",
            s.updates_applied,
            s.updates_inserted,
            s.updates_deleted,
            s.epoch_commits,
            s.epoch_folds,
            s.pending_updates,
            s.delta_entries,
            s.delta_bytes,
        );
    }
    if s.retries + s.recoveries + s.full_rollbacks + s.degraded_generations > 0 {
        println!(
            "robustness: {} retries, {} recoveries ({} checkpoints taken, {} restored, \
             {} partitions replayed, {} full rollbacks), {} degradations",
            s.retries,
            s.recoveries,
            s.checkpoints_taken,
            s.checkpoints_restored,
            s.partitions_replayed,
            s.full_rollbacks,
            s.degraded_generations,
        );
    }
    if s.wal_records + s.snapshots_written + s.durable_recoveries > 0 {
        println!(
            "durability: {} WAL records ({} B), {} snapshots ({} B, newest epoch {}), \
             {} records replayed / {} snapshots corrupt across {} recoveries",
            s.wal_records,
            s.wal_bytes,
            s.snapshots_written,
            s.snapshot_bytes,
            s.last_snapshot_epoch,
            s.wal_replayed,
            s.snapshots_corrupt,
            s.durable_recoveries,
        );
    }
    if s.pending_updates > 0 {
        if s.wal_records > 0 {
            eprintln!(
                "cgraph: {} buffered updates were never committed; they are WAL-logged \
                 and will be restored (uncommitted) on the next open of this data dir",
                s.pending_updates
            );
        } else {
            eprintln!(
                "cgraph: warning: {} buffered updates were never committed and are \
                 discarded at shutdown (no --data-dir; run `commit` or set --commit-every)",
                s.pending_updates
            );
        }
    }
}

/// `cgraph serve <FILE> [-p MACHINES] [--replicas N] [--batch-width W] [--delay-us D]
/// [--depth N] [--chaos SPEC] [--deadline-ms MS] [--retries N]
/// [--ckpt-interval K] [--degrade-after N]`
///
/// Reads queries from stdin, one per line: one or more source vertices
/// followed by the hop count (`7 3` = 3 hops from vertex 7;
/// `1 2 3 4` = 4 hops from sources 1, 2, 3). Queries are answered as
/// the streaming service packs them into batches; results print in
/// submission order. EOF drains the queue and prints a latency summary.
pub fn serve(args: Args) -> Result<(), String> {
    args.reject_unknown(SERVICE_FLAGS)?;
    let path = args.require(0, "graph file")?;
    let obs = obs_from_args(&args);
    let service = Arc::new(start_service(&args, path, obs.as_ref())?);
    let updater = args
        .flag("--update-stream")
        .map(|p| spawn_update_stream(Arc::clone(&service), p.to_string()));

    // Printer thread: redeems tickets in submission order so output
    // is deterministic while batching continues behind it.
    let (tx, rx) = std::sync::mpsc::channel::<(usize, cgraph_core::QueryTicket)>();
    let printer = {
        let service = Arc::clone(&service);
        std::thread::spawn(move || {
            for (id, ticket) in rx {
                match ticket.wait() {
                    Ok(r) => println!(
                        "[{id}] visited {} (depth {}), response {:?}",
                        r.visited,
                        r.depth(),
                        r.response_time
                    ),
                    Err(e) => println!("[{id}] error: {e}"),
                }
            }
            print_service_stats(&service);
        })
    };

    let stdin = std::io::stdin();
    let mut line = String::new();
    let mut id = 0usize;
    loop {
        line.clear();
        match stdin.read_line(&mut line) {
            Ok(0) => break,
            Ok(_) => {}
            Err(e) => return Err(format!("cannot read stdin: {e}")),
        }
        let tokens: Vec<&str> = line.split_whitespace().collect();
        if tokens.is_empty() || tokens[0].starts_with('#') {
            continue;
        }
        if tokens.len() < 2 {
            eprintln!("cgraph: need `<SRC>... <K>`, got {:?}", line.trim());
            continue;
        }
        let parse = |t: &str| t.parse::<u64>().map_err(|_| format!("bad number {t:?}"));
        let k = parse(tokens[tokens.len() - 1])? as u32;
        let sources: Vec<u64> =
            tokens[..tokens.len() - 1].iter().map(|t| parse(t)).collect::<Result<_, _>>()?;
        // A rejected query (e.g. a source outside the vertex range)
        // fails only its own line; the stream keeps serving.
        match service.submit(KhopQuery::multi(id, sources, k)) {
            Ok(ticket) => {
                tx.send((id, ticket)).expect("printer thread alive");
                id += 1;
            }
            Err(cgraph_core::ServiceError::ShutDown) => return Err("service shut down".into()),
            Err(e) => eprintln!("cgraph: rejected {:?}: {e}", line.trim()),
        }
    }
    if let Some(u) = updater {
        u.join().expect("update-stream thread panicked");
    }
    drop(tx);
    printer.join().expect("printer thread panicked");
    service.shutdown();
    if let Some(o) = &obs {
        write_obs(o)?;
    }
    Ok(())
}

/// `cgraph mutate <FILE> [-p MACHINES] [--commit-every N]
/// [--fold-threshold N] ...`
///
/// Interactive/scripted live mutations: reads a mixed op stream from
/// stdin, one op per line —
///
/// * `add SRC DST [W]` (alias `+`) — buffer an edge insertion,
/// * `del SRC DST` (alias `-`) — buffer an edge deletion,
/// * `commit` — fold buffered updates into a new epoch (prints it),
/// * `query SRC... K` (alias `q`) — k-hop query against the current
///   snapshot; the answer prints with the epoch it was computed at.
///
/// Updates buffer until a `commit` (or a crossed `--commit-every`
/// threshold); queries always answer against the latest committed
/// epoch. EOF commits anything still buffered and prints the stats
/// summary.
pub fn mutate(args: Args) -> Result<(), String> {
    args.reject_unknown(SERVICE_FLAGS)?;
    let path = args.require(0, "graph file")?;
    let obs = obs_from_args(&args);
    let service = start_service(&args, path, obs.as_ref())?;

    let stdin = std::io::stdin();
    let mut line = String::new();
    let mut id = 0usize;
    let mut buf: Vec<EdgeUpdate> = Vec::new();
    let mut dirty = false;
    loop {
        line.clear();
        match stdin.read_line(&mut line) {
            Ok(0) => break,
            Ok(_) => {}
            Err(e) => return Err(format!("cannot read stdin: {e}")),
        }
        let tokens: Vec<&str> = line.split_whitespace().collect();
        if tokens.is_empty() || tokens[0].starts_with('#') {
            continue;
        }
        // Ops that look at the graph flush the local buffer first, so
        // a script reads top-to-bottom: every earlier update is at
        // least *pending* before a commit or query runs.
        let flush = |buf: &mut Vec<EdgeUpdate>, dirty: &mut bool| {
            if buf.is_empty() {
                return;
            }
            match service.apply_updates(buf.drain(..).collect()) {
                Ok(()) => *dirty = true,
                Err(e) => eprintln!("cgraph: {e}"),
            }
        };
        match tokens[0] {
            "add" | "+" | "del" | "-" => match parse_update_line(&line) {
                Ok(Some(u)) => buf.push(u),
                Ok(None) => {}
                Err(e) => eprintln!("cgraph: {e}"),
            },
            "commit" => {
                flush(&mut buf, &mut dirty);
                match service.commit_epoch() {
                    Ok(ep) => {
                        dirty = false;
                        println!("committed epoch {ep}");
                    }
                    Err(e) => return Err(e.to_string()),
                }
            }
            "query" | "q" => {
                flush(&mut buf, &mut dirty);
                if tokens.len() < 3 {
                    eprintln!("cgraph: need `query <SRC>... <K>`, got {:?}", line.trim());
                    continue;
                }
                let parse = |t: &str| t.parse::<u64>().map_err(|_| format!("bad number {t:?}"));
                let k = parse(tokens[tokens.len() - 1])? as u32;
                let sources: Vec<u64> = tokens[1..tokens.len() - 1]
                    .iter()
                    .map(|t| parse(t))
                    .collect::<Result<_, _>>()?;
                match service.query(KhopQuery::multi(id, sources, k)) {
                    Ok(r) => println!(
                        "[{id}] visited {} (depth {}) @ epoch {}, response {:?}",
                        r.visited,
                        r.depth(),
                        r.epoch,
                        r.response_time
                    ),
                    Err(e) => println!("[{id}] error: {e}"),
                }
                id += 1;
            }
            other => eprintln!("cgraph: unknown op {other:?} (add/del/commit/query)"),
        }
    }
    // EOF: publish anything still buffered so the stream's effects are
    // never silently dropped.
    if !buf.is_empty() {
        match service.apply_updates(buf.drain(..).collect()) {
            Ok(()) => dirty = true,
            Err(e) => eprintln!("cgraph: {e}"),
        }
    }
    if dirty {
        match service.commit_epoch() {
            Ok(ep) => println!("committed epoch {ep}"),
            Err(e) => return Err(e.to_string()),
        }
    }
    print_service_stats(&service);
    service.shutdown();
    if let Some(o) = &obs {
        write_obs(o)?;
    }
    Ok(())
}

/// `cgraph replay <FILE> [-p M] [--replicas N] [-q N] [-k K] [--rate QPS]
/// [--batch-width W] [--delay-us D] [--depth N] [--chaos SPEC]
/// [--deadline-ms MS] [--retries N] [--ckpt-interval K]
/// [--degrade-after N]`
///
/// Open-loop load generator: replays a deterministic stream of `N`
/// k-hop queries through the streaming service at `--rate` queries/sec
/// (0 = as fast as possible), then reports throughput and the latency
/// distribution. The open loop means submission times never wait for
/// responses — exactly how an external client population behaves.
pub fn replay(args: Args) -> Result<(), String> {
    let mut known: Vec<&str> = SERVICE_FLAGS.to_vec();
    known.extend(["-q", "-k", "--rate", "--zipf", "--zipf-seed"]);
    args.reject_unknown(&known)?;
    let path = args.require(0, "graph file")?;
    let queries: usize = args.flag_parse("-q", 1000)?;
    let k: u32 = args.flag_parse("-k", 3)?;
    let rate: f64 = args.flag_parse("--rate", 0.0)?;
    let zipf_alpha: f64 = args.flag_parse("--zipf", 0.0)?;
    let zipf_seed: u64 = args.flag_parse("--zipf-seed", 42)?;
    let obs = obs_from_args(&args);
    let service = Arc::new(start_service(&args, path, obs.as_ref())?);
    let updater = args
        .flag("--update-stream")
        .map(|p| spawn_update_stream(Arc::clone(&service), p.to_string()));
    let n = {
        let edges = load_graph(path)?;
        edges.num_vertices()
    };

    // `--zipf A` replays a seeded Zipf(A)-skewed source stream — the
    // repeat-heavy traffic shape the query plane (result cache and
    // coalescing) is built for; the default is the legacy scrambled
    // near-uniform stream.
    let zipf_sources: Option<Vec<u64>> = (zipf_alpha > 0.0).then(|| {
        let stream = cgraph_gen::QueryStream::zipf(zipf_seed, zipf_alpha, queries);
        stream.ranks().iter().map(|&r| (r as u64).wrapping_mul(0x9E37) % n).collect()
    });

    let start = Instant::now();
    let mut tickets = Vec::with_capacity(queries);
    for i in 0..queries {
        if rate > 0.0 {
            let due = start + Duration::from_secs_f64(i as f64 / rate);
            let now = Instant::now();
            if due > now {
                std::thread::sleep(due - now);
            }
        }
        let source = match &zipf_sources {
            Some(srcs) => srcs[i],
            None => (i as u64).wrapping_mul(0x9E37) % n,
        };
        tickets.push(service.submit(KhopQuery::single(i, source, k)).map_err(|e| e.to_string())?);
    }
    let mut visited = 0u64;
    let mut failed = 0usize;
    for t in tickets {
        match t.wait() {
            Ok(r) => visited += r.visited,
            Err(_) => failed += 1,
        }
    }
    let wall = start.elapsed();
    println!(
        "replayed {queries} x {k}-hop queries in {wall:?} \
         ({:.0} queries/s), {visited} vertices visited, {failed} failed",
        queries as f64 / wall.as_secs_f64().max(1e-12)
    );
    if let Some(u) = updater {
        u.join().expect("update-stream thread panicked");
    }
    print_service_stats(&service);
    service.shutdown();
    if let Some(o) = &obs {
        write_obs(o)?;
    }
    Ok(())
}
