//! Command implementations.

use crate::args::Args;
use crate::{build_engine, load_graph, run_bench, save_graph, summary};
use cgraph_ql::Session;
use std::io::Read;

/// `cgraph generate <MODEL> [ARGS..] [--seed S] -o <FILE>`
pub fn generate(args: Args) -> Result<(), String> {
    args.reject_unknown(&["--seed", "-o", "--raw"])?;
    let model = args.require(0, "model name")?.to_string();
    let seed: u64 = args.flag_parse("--seed", 42)?;
    let out = args.flag("-o").ok_or("missing -o <FILE>")?.to_string();
    let list = match model.as_str() {
        "graph500" => {
            let scale: u32 = args.pos_parse(1, "scale")?;
            let ef: usize = args.pos_parse(2, "edge factor")?;
            cgraph_gen::graph500(scale, ef, seed)
        }
        "rmat" => {
            let scale: u32 = args.pos_parse(1, "scale")?;
            let edges: usize = args.pos_parse(2, "edge count")?;
            cgraph_gen::rmat(scale, edges, cgraph_gen::RmatParams::GRAPH500, seed)
        }
        "er" => {
            let n: u64 = args.pos_parse(1, "vertex count")?;
            let m: usize = args.pos_parse(2, "edge count")?;
            cgraph_gen::erdos_renyi(n, m, seed)
        }
        "smallworld" => {
            let n: u64 = args.pos_parse(1, "vertex count")?;
            let k: usize = args.pos_parse(2, "ring degree k")?;
            let beta: f64 = args.pos_parse(3, "rewire probability")?;
            cgraph_gen::small_world(n, k, beta, seed)
        }
        "ba" => {
            let n: u64 = args.pos_parse(1, "vertex count")?;
            let m: usize = args.pos_parse(2, "attachments per vertex")?;
            cgraph_gen::pref_attach(n, m, seed)
        }
        other => return Err(format!("unknown model {other:?}")),
    };
    // Clean before writing (dedup, drop loops) unless told otherwise.
    let list = if args.switch("--raw") {
        list
    } else {
        let mut b = cgraph_graph::GraphBuilder::new();
        b.add_edge_list(&list);
        b.build().edges
    };
    save_graph(&out, &list)?;
    println!("wrote {} vertices, {} edges to {out}", list.num_vertices(), list.len());
    Ok(())
}

/// `cgraph stats <FILE>`
pub fn stats(args: Args) -> Result<(), String> {
    args.reject_unknown(&[])?;
    let path = args.require(0, "graph file")?;
    let edges = load_graph(path)?;
    let (s, hist) = summary(&edges);
    println!("graph     : {path}");
    println!("vertices  : {}", s.num_vertices);
    println!("edges     : {}", s.num_edges);
    println!("E/V ratio : {:.2}", s.edge_vertex_ratio());
    println!(
        "out-degree: min {}, median {}, mean {:.1}, max {}, isolated {}",
        s.degrees.min, s.degrees.median, s.degrees.mean, s.degrees.max, s.degrees.isolated
    );
    println!("degree histogram (2^i buckets):");
    for (i, count) in hist.iter().enumerate() {
        if *count > 0 {
            let lo = if i == 0 { 0 } else { 1usize << i };
            println!("  [{lo:>8}, {:>8}) : {count}", 1usize << (i + 1));
        }
    }
    Ok(())
}

/// `cgraph convert <IN> <OUT>`
pub fn convert(args: Args) -> Result<(), String> {
    args.reject_unknown(&[])?;
    let input = args.require(0, "input file")?;
    let output = args.require(1, "output file")?.to_string();
    let edges = load_graph(input)?;
    save_graph(&output, &edges)?;
    println!("converted {input} -> {output} ({} edges)", edges.len());
    Ok(())
}

/// `cgraph query <FILE> [-p MACHINES] [-e STATEMENT]...`
pub fn query(args: Args) -> Result<(), String> {
    args.reject_unknown(&["-p", "-e"])?;
    let path = args.require(0, "graph file")?;
    let machines: usize = args.flag_parse("-p", 3)?;
    let edges = load_graph(path)?;
    let engine = build_engine(&edges, machines);
    let session = Session::new(&engine);

    let program = {
        let inline = args.flag_all("-e");
        if inline.is_empty() {
            let mut buf = String::new();
            std::io::stdin()
                .read_to_string(&mut buf)
                .map_err(|e| format!("cannot read stdin: {e}"))?;
            buf
        } else {
            inline.join("\n")
        }
    };
    let queries = cgraph_ql::parse_program(&program).map_err(|e| e.to_string())?;
    if queries.is_empty() {
        return Err("no statements given (use -e or stdin)".into());
    }
    let answers = session.execute_batch(queries);
    for a in &answers {
        println!("[{}] {}  ({:?})", a.index, a.output, a.response_time);
    }
    Ok(())
}

/// `cgraph bench <FILE> [-p MACHINES] [-q QUERIES] [-k HOPS]`
pub fn bench(args: Args) -> Result<(), String> {
    args.reject_unknown(&["-p", "-q", "-k"])?;
    let path = args.require(0, "graph file")?;
    let machines: usize = args.flag_parse("-p", 3)?;
    let queries: usize = args.flag_parse("-q", 100)?;
    let k: u32 = args.flag_parse("-k", 3)?;
    let edges = load_graph(path)?;
    println!("{}", run_bench(&edges, machines, queries, k));
    Ok(())
}
