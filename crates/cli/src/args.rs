//! Minimal argument parsing (positional + `--flag value` pairs).

/// Parsed command arguments: positionals in order, flags by name.
pub struct Args {
    positional: Vec<String>,
    flags: Vec<(String, String)>,
    switches: Vec<String>,
}

impl Args {
    /// Splits raw arguments into positionals, `--key value` flags and
    /// repeated `-e value` options.
    pub fn new(raw: Vec<String>) -> Self {
        let mut positional = Vec::new();
        let mut flags = Vec::new();
        let mut switches = Vec::new();
        let mut it = raw.into_iter().peekable();
        while let Some(a) = it.next() {
            if a.starts_with('-') && a.len() > 1 && !a.chars().nth(1).unwrap().is_ascii_digit() {
                match it.peek() {
                    Some(v) if !v.starts_with("--") => {
                        flags.push((a, it.next().unwrap()));
                    }
                    _ => switches.push(a),
                }
            } else {
                positional.push(a);
            }
        }
        Self { positional, flags, switches }
    }

    /// Positional argument `i`.
    pub fn pos(&self, i: usize) -> Option<&str> {
        self.positional.get(i).map(String::as_str)
    }

    /// Required positional with an error message.
    pub fn require(&self, i: usize, what: &str) -> Result<&str, String> {
        self.pos(i).ok_or_else(|| format!("missing {what}"))
    }

    /// Number of positionals.
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn len(&self) -> usize {
        self.positional.len()
    }

    /// True when no positionals were given.
    #[allow(dead_code)]
    pub fn is_empty(&self) -> bool {
        self.positional.is_empty()
    }

    /// Last value of a flag (e.g. `flag("-o")`).
    pub fn flag(&self, name: &str) -> Option<&str> {
        self.flags.iter().rev().find(|(k, _)| k == name).map(|(_, v)| v.as_str())
    }

    /// All values of a repeated flag (e.g. `-e stmt -e stmt`).
    pub fn flag_all(&self, name: &str) -> Vec<&str> {
        self.flags.iter().filter(|(k, _)| k == name).map(|(_, v)| v.as_str()).collect()
    }

    /// Parses a flag value, with default.
    pub fn flag_parse<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.flag(name) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("invalid value for {name}: {v:?}")),
        }
    }

    /// True when a bare switch (no value) was given.
    pub fn switch(&self, name: &str) -> bool {
        self.switches.iter().any(|s| s == name)
    }

    /// Rejects any flag/switch not in `known` (catches typos like
    /// `--machines` instead of `-p`).
    pub fn reject_unknown(&self, known: &[&str]) -> Result<(), String> {
        for (k, _) in &self.flags {
            if !known.contains(&k.as_str()) {
                return Err(format!("unknown option {k:?} (expected one of {known:?})"));
            }
        }
        for k in &self.switches {
            if !known.contains(&k.as_str()) {
                return Err(format!("unknown option {k:?} (expected one of {known:?})"));
            }
        }
        Ok(())
    }

    /// Parses a positional value.
    pub fn pos_parse<T: std::str::FromStr>(&self, i: usize, what: &str) -> Result<T, String> {
        let raw = self.require(i, what)?;
        raw.parse().map_err(|_| format!("invalid {what}: {raw:?}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Args {
        Args::new(s.split_whitespace().map(str::to_string).collect())
    }

    #[test]
    fn positionals_and_flags() {
        let a = args("graph500 15 16 --seed 7 -o out.cg");
        assert_eq!(a.pos(0), Some("graph500"));
        assert_eq!(a.pos_parse::<u32>(1, "scale").unwrap(), 15);
        assert_eq!(a.flag("--seed"), Some("7"));
        assert_eq!(a.flag("-o"), Some("out.cg"));
        assert_eq!(a.len(), 3);
    }

    #[test]
    fn repeated_flags() {
        let a = args("g.cg -e STATS -e COMPONENTS");
        assert_eq!(a.flag_all("-e"), vec!["STATS", "COMPONENTS"]);
    }

    #[test]
    fn negative_numbers_are_positional() {
        let a = args("-5 foo");
        assert_eq!(a.pos(0), Some("-5"));
        assert_eq!(a.pos(1), Some("foo"));
    }

    #[test]
    fn defaults_and_errors() {
        let a = args("x");
        assert_eq!(a.flag_parse("-p", 3usize).unwrap(), 3);
        assert!(a.require(5, "path").is_err());
        let b = args("x -p nope y");
        assert!(b.flag_parse::<usize>("-p", 1).is_err());
    }
}
