//! Ablation A6 — partitioning strategy: naive by-vertex-count vs
//! balanced by out-degree vs balanced by total (in+out) degree.
//!
//! §3.1: "To balance the workload, we optimize each partition to
//! contain a similar number of edges." This bench quantifies that
//! choice: on a skewed (Kronecker) graph, by-vertex ranges give one
//! machine most of the edges, so the straggler dominates both
//! traversal batches and PageRank. The bench reports wall time on this
//! host; the printed straggler shares show the imbalance directly.

use cgraph_core::gas::PageRank;
use cgraph_core::{DistributedEngine, EngineConfig, RangePartition};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_partition(c: &mut Criterion) {
    // Raw (unscrambled) RMAT: hubs concentrate at low vertex IDs — the
    // adversarial layout for naive by-vertex ranges, and precisely the
    // case edge-balanced range partitioning is designed for. (Graph 500
    // scrambling would hide the effect by uniformising the ID space.)
    let raw = cgraph_gen::rmat(12, 1 << 16, cgraph_gen::RmatParams::GRAPH500, 0xAB6);
    let mut b = cgraph_graph::GraphBuilder::new();
    b.add_edge_list(&raw);
    let edges = b.build().edges;
    let p = 4;

    let strategies: Vec<(&str, RangePartition)> = vec![
        ("by_vertices", RangePartition::by_vertices(edges.num_vertices(), p)),
        ("by_out_degree", RangePartition::from_edges(edges.num_vertices(), edges.edges(), p)),
        (
            "by_total_degree",
            RangePartition::from_edges_total_degree(edges.num_vertices(), edges.edges(), p),
        ),
    ];

    let mut group = c.benchmark_group("partition_pagerank_5iter");
    group.sample_size(10);
    for (name, partition) in strategies {
        let engine = DistributedEngine::with_partition(&edges, partition, EngineConfig::new(p));
        // Report the edge imbalance this strategy produces.
        let edges_per: Vec<usize> = engine.shards().iter().map(|s| s.num_out_edges()).collect();
        let max = *edges_per.iter().max().unwrap() as f64;
        let mean = edges_per.iter().sum::<usize>() as f64 / p as f64;
        let sim = engine.run_gas(&PageRank::default(), 5).sim_exec_time();
        eprintln!(
            "[A6] {name}: out-edges per machine {edges_per:?} \
             (straggler {:.2}x mean; simulated cluster time {sim:?})",
            max / mean
        );
        group.bench_function(name, |bch| bch.iter(|| engine.run_gas(&PageRank::default(), 5)));
    }
    group.finish();
}

criterion_group!(benches, bench_partition);
criterion_main!(benches);
