//! Ablation A3 — edge-set blocking vs flat CSR.
//!
//! §3.2 claims the blocked layout improves locality for batched
//! traversals (frontier words and destination ranges stay cache-
//! resident per tile). The flat policy stores one tile per shard; the
//! default policy blocks to LLC-sized tiles with consolidation.

use cgraph_core::{DistributedEngine, EngineConfig};
use cgraph_graph::ConsolidationPolicy;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_edgeset(c: &mut Criterion) {
    let raw = cgraph_gen::graph500(13, 16, 0xAB3);
    let mut b = cgraph_graph::GraphBuilder::new();
    b.add_edge_list(&raw);
    let edges = b.build().edges;
    let sources: Vec<u64> = (0..64u64).map(|i| (i * 97) % edges.num_vertices()).collect();
    let ks = vec![3u32; 64];

    let mut group = c.benchmark_group("edgeset_64x3hop");
    group.sample_size(10);
    for (name, policy) in [
        ("flat_csr", ConsolidationPolicy::flat()),
        // A fine fixed grid: many tiny tiles, the pre-consolidation
        // state §3.2 calls inefficient.
        ("fine_grid_no_consolidation", ConsolidationPolicy::grid(1 << 8)),
        // The same fine grid with consolidation enabled — the paper's
        // remedy; fewer, larger tiles.
        (
            "fine_grid_consolidated",
            ConsolidationPolicy {
                target_edges_per_set: 1 << 8,
                min_edges_per_set: 1 << 12,
                horizontal: true,
                vertical: true,
            },
        ),
        ("blocked_default", ConsolidationPolicy::default()),
    ] {
        let engine = DistributedEngine::new(
            &edges,
            EngineConfig::new(2).traversal_only().with_edge_set_policy(policy),
        );
        let tiles: usize = engine.shards().iter().map(|s| s.out_sets().sets().len()).sum();
        eprintln!("[A3] policy {name}: {tiles} tiles total");
        group.bench_function(name, |b| {
            b.iter(|| engine.run_traversal_batch(&sources, &ks).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_edgeset);
criterion_main!(benches);
