//! Ablation A4 — synchronous supersteps vs asynchronous free-running
//! execution for a single k-hop query.
//!
//! §3.3 supports both; sync pays a barrier per hop, async pays
//! per-message sends and label correction. On small-diameter graphs
//! with few machines the barrier count is tiny, so sync usually wins;
//! async's advantage appears when stragglers make barriers expensive.

use cgraph_core::traverse::ValueMode;
use cgraph_core::{DistributedEngine, EngineConfig};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_sync_async(c: &mut Criterion) {
    let raw = cgraph_gen::graph500(12, 16, 0xAB4);
    let mut b = cgraph_graph::GraphBuilder::new();
    b.add_edge_list(&raw);
    let edges = b.build().edges;
    let sync_engine = DistributedEngine::new(&edges, EngineConfig::new(3).traversal_only());
    let async_engine =
        DistributedEngine::new(&edges, EngineConfig::new(3).traversal_only().asynchronous());
    let src = 5u64;

    let mut group = c.benchmark_group("sync_vs_async_3hop");
    group.sample_size(10);
    group.bench_function("sync_supersteps", |b| {
        b.iter(|| sync_engine.run_single_queue(&[src], 3, ValueMode::TwoLevel))
    });
    group.bench_function("async_quiescence", |b| {
        b.iter(|| async_engine.run_single_queue(&[src], 3, ValueMode::TwoLevel))
    });
    group.finish();
}

criterion_group!(benches, bench_sync_async);
criterion_main!(benches);
