//! Ablation A2 — shared-subgraph batching on vs off.
//!
//! The scheduler either packs 64 queries into one bit-frontier batch
//! (shared edge-set scans) or runs them one by one. Sharing should win
//! because overlapping 3-hop neighbourhoods are traversed once per
//! batch instead of once per query (Fig. 3b's argument).

use cgraph_core::{DistributedEngine, EngineConfig, KhopQuery, QueryScheduler, SchedulerConfig};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_sharing(c: &mut Criterion) {
    let raw = cgraph_gen::graph500(12, 16, 0xAB2);
    let mut b = cgraph_graph::GraphBuilder::new();
    b.add_edge_list(&raw);
    let edges = b.build().edges;
    let engine = DistributedEngine::new(&edges, EngineConfig::new(2).traversal_only());
    let queries: Vec<KhopQuery> = (0..64usize)
        .map(|i| KhopQuery::single(i, (i as u64 * 61) % edges.num_vertices(), 3))
        .collect();

    let mut group = c.benchmark_group("sharing_64x3hop");
    group.sample_size(10);
    group.bench_function("shared_batches", |b| {
        let s = QueryScheduler::new(&engine, SchedulerConfig::default());
        b.iter(|| s.execute(&queries))
    });
    group.bench_function("per_query_serial", |b| {
        let s = QueryScheduler::new(&engine, SchedulerConfig::serial());
        b.iter(|| s.execute(&queries))
    });
    group.finish();
}

criterion_group!(benches, bench_sharing);
criterion_main!(benches);
