//! Ablation A1/A5 — bit-packed frontier vs queue-based frontier, and
//! the memory footprint of dynamic (two-level) vertex values.
//!
//! The paper's §3.5 argument: with many concurrent traversals, set/queue
//! frontiers pay allocation + locking; bit arrays give constant-time,
//! allocation-free updates. Expect the 64-query batch to beat 64
//! queue-based runs by a wide margin.

use cgraph_core::traverse::ValueMode;
use cgraph_core::{DistributedEngine, EngineConfig};
use criterion::{criterion_group, criterion_main, Criterion};

fn build_engine() -> (DistributedEngine, Vec<u64>) {
    let raw = cgraph_gen::graph500(12, 16, 0xAB1);
    let mut b = cgraph_graph::GraphBuilder::new();
    b.add_edge_list(&raw);
    let edges = b.build().edges;
    let engine = DistributedEngine::new(&edges, EngineConfig::new(2).traversal_only());
    let sources: Vec<u64> = (0..64u64).map(|i| (i * 37) % edges.num_vertices()).collect();
    (engine, sources)
}

fn bench_frontier(c: &mut Criterion) {
    let (engine, sources) = build_engine();
    let ks = vec![3u32; 64];

    let mut group = c.benchmark_group("frontier_64x3hop");
    group.sample_size(10);
    group.bench_function("bit_batch", |b| {
        b.iter(|| engine.run_traversal_batch(&sources, &ks).unwrap())
    });
    group.bench_function("queue_serial", |b| {
        b.iter(|| {
            for &s in &sources {
                engine.run_single_queue(&[s], 3, ValueMode::TwoLevel);
            }
        })
    });
    group.finish();

    // A5: report the memory metric once (not a timing bench). Use a
    // larger-diameter small-world graph where frontiers stay thin —
    // the regime where the two-level window pays (k-hop queries with
    // small k on big graphs: the frontier is a sliver of |V|).
    let sw = cgraph_gen::small_world(50_000, 4, 0.02, 0xA5);
    let mut b = cgraph_graph::GraphBuilder::new();
    b.add_edge_list(&sw);
    let sw = b.build().edges;
    let sw_engine = DistributedEngine::new(&sw, EngineConfig::new(1).traversal_only());
    let two = sw_engine.run_single_queue(&[0], 4, ValueMode::TwoLevel);
    let full = sw_engine.run_single_queue(&[0], 4, ValueMode::Full);
    eprintln!(
        "[A5 memory] peak live vertex-value entries (4-hop, 50K-vertex small world): \
         two-level = {}, full = {} ({:.0}x reduction)",
        two.peak_value_entries,
        full.peak_value_entries,
        full.peak_value_entries as f64 / two.peak_value_entries.max(1) as f64
    );
}

criterion_group!(benches, bench_frontier);
criterion_main!(benches);
