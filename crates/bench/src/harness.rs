//! Shared experiment machinery.

use cgraph_gen::{dataset_by_name, Dataset};
use cgraph_graph::{Csr, EdgeList, VertexId};
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::io::Write;
use std::path::PathBuf;
use std::time::Duration;

/// Directory where experiment CSVs land.
pub fn experiments_dir() -> PathBuf {
    let dir = PathBuf::from("target/experiments");
    std::fs::create_dir_all(&dir).expect("create experiments dir");
    dir
}

/// Directory where generated datasets are cached.
pub fn datasets_dir() -> PathBuf {
    let dir = PathBuf::from("target/datasets");
    std::fs::create_dir_all(&dir).expect("create datasets dir");
    dir
}

/// Loads a named dataset, generating and caching it (binary format)
/// on first use so repeated experiment runs are fast. The cache name
/// carries [`cgraph_gen::RNG_STREAM_VERSION`], so datasets generated
/// by a different (e.g. upstream-`rand_chacha`) stream are never
/// silently mixed with this build's.
pub fn load_dataset(ds: Dataset) -> EdgeList {
    let spec = ds.spec();
    let path = datasets_dir().join(format!("{}.{}.cg", spec.name, cgraph_gen::RNG_STREAM_VERSION));
    if path.exists() {
        if let Ok(list) = cgraph_gen::io::read_binary(&path) {
            return list;
        }
    }
    eprintln!("[harness] generating dataset {} (~{})", spec.name, spec.paper_name);
    let list = ds.generate();
    cgraph_gen::io::write_binary(&path, &list).expect("cache dataset");
    list
}

/// Loads a dataset by CLI name, exiting with a usage hint on error.
pub fn load_dataset_by_name(name: &str) -> EdgeList {
    match dataset_by_name(name) {
        Some(ds) => load_dataset(ds),
        None => {
            eprintln!("unknown dataset {name:?}; use OR, FR, FRS-A, FRS-B or TINY");
            std::process::exit(2);
        }
    }
}

/// Samples `count` distinct source vertices with out-degree ≥ 1,
/// uniformly, deterministically under `seed` — the paper's "source
/// vertices are randomly chosen".
pub fn random_sources(edges: &EdgeList, count: usize, seed: u64) -> Vec<VertexId> {
    let csr = Csr::from_edges(edges.num_vertices(), edges.edges());
    let mut candidates: Vec<VertexId> =
        (0..edges.num_vertices()).filter(|&v| csr.degree(v) > 0).collect();
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    candidates.shuffle(&mut rng);
    candidates.truncate(count);
    assert!(candidates.len() == count, "graph has too few non-isolated vertices");
    candidates
}

/// Formats a duration compactly (µs/ms/s).
pub fn fmt_dur(d: Duration) -> String {
    let us = d.as_micros();
    if us < 1_000 {
        format!("{us}µs")
    } else if us < 1_000_000 {
        format!("{:.2}ms", us as f64 / 1e3)
    } else {
        format!("{:.3}s", us as f64 / 1e6)
    }
}

/// Prints a fixed-width table to stdout.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n=== {title} ===");
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let line = |cells: &[String]| {
        let mut s = String::new();
        for (i, c) in cells.iter().enumerate() {
            s.push_str(&format!("{:>width$}  ", c, width = widths[i]));
        }
        s
    };
    println!("{}", line(&header.iter().map(|s| s.to_string()).collect::<Vec<_>>()));
    for row in rows {
        println!("{}", line(row));
    }
}

/// Writes a CSV file under `target/experiments/`.
pub fn write_csv(name: &str, header: &[&str], rows: &[Vec<String>]) {
    let path = experiments_dir().join(name);
    let mut f = std::fs::File::create(&path).expect("create csv");
    writeln!(f, "{}", header.join(",")).unwrap();
    for row in rows {
        writeln!(f, "{}", row.join(",")).unwrap();
    }
    println!("[csv] {}", path.display());
}

/// Writes a [`cgraph_obs::MetricsRegistry`] snapshot (Prometheus text
/// format) under `target/experiments/`, next to the CSVs, so every
/// timing table an experiment prints has the registry state that
/// produced it sitting beside it.
pub fn write_metrics_snapshot(name: &str, obs: &cgraph_obs::Obs) {
    let path = experiments_dir().join(name);
    std::fs::write(&path, obs.metrics.render_text()).expect("write metrics snapshot");
    println!("[metrics] {}", path.display());
}

/// Parses `--key value` style CLI overrides: `arg_usize(&args, "--queries", 100)`.
pub fn arg_usize(args: &[String], key: &str, default: usize) -> usize {
    args.iter()
        .position(|a| a == key)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Parses a `--key value` string override.
pub fn arg_string(args: &[String], key: &str, default: &str) -> String {
    args.iter()
        .position(|a| a == key)
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| default.to_string())
}

/// Standard experiment banner explaining the scaled-down setting.
pub fn banner(fig: &str, paper_setting: &str, our_setting: &str) {
    println!("--------------------------------------------------------------");
    println!("{fig}");
    println!("  paper : {paper_setting}");
    println!("  here  : {our_setting}");
    println!("--------------------------------------------------------------");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_sources_are_distinct_and_seeded() {
        let g = cgraph_gen::erdos_renyi(200, 1000, 1);
        let a = random_sources(&g, 50, 9);
        let b = random_sources(&g, 50, 9);
        assert_eq!(a, b);
        let mut s = a.clone();
        s.sort_unstable();
        s.dedup();
        assert_eq!(s.len(), 50);
    }

    #[test]
    fn fmt_dur_ranges() {
        assert_eq!(fmt_dur(Duration::from_micros(500)), "500µs");
        assert_eq!(fmt_dur(Duration::from_millis(12)), "12.00ms");
        assert_eq!(fmt_dur(Duration::from_secs(2)), "2.000s");
    }

    #[test]
    fn arg_parsing() {
        let args: Vec<String> =
            ["--queries", "42", "--dataset", "FR"].iter().map(|s| s.to_string()).collect();
        assert_eq!(arg_usize(&args, "--queries", 7), 42);
        assert_eq!(arg_usize(&args, "--missing", 7), 7);
        assert_eq!(arg_string(&args, "--dataset", "OR"), "FR");
    }
}
