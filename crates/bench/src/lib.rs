//! # cgraph-bench — the experiment harness
//!
//! One binary per table/figure of the paper (see DESIGN.md §4 for the
//! index) plus criterion ablation benches. This library holds the
//! shared machinery: dataset caching, source sampling, result tables
//! and CSV dumps.
//!
//! All binaries print the paper's rows/series to stdout and write CSV
//! under `target/experiments/` for EXPERIMENTS.md.

#![warn(missing_docs)]

pub mod harness;

pub use harness::*;
