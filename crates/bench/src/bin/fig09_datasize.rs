//! Figure 9 — data-size scalability: 100 concurrent 3-hop queries on
//! OR / FR / FRS-B, 9 machines; sorted response times.
//!
//! Paper: ~85% of queries within 0.4 s (FR) / 0.6 s (FRS-100B);
//! upper bounds 1.2 s and 1.6 s — growing the graph 100× costs the
//! tail only ~30%.

use cgraph_bench::*;
use cgraph_core::{DistributedEngine, EngineConfig, KhopQuery, QueryScheduler, SchedulerConfig};
use cgraph_gen::Dataset;
use std::time::Duration;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let num_queries = arg_usize(&args, "--queries", 100);
    let machines = arg_usize(&args, "--machines", 9);
    let k = arg_usize(&args, "--k", 3) as u32;
    banner(
        "Figure 9: data-size scalability (100 concurrent 3-hop queries, 9 machines)",
        "OR-100M / FR-1B / FRS-100B; upper bounds 1.2s (FR), 1.6s (FRS)",
        &format!("{num_queries} queries, {machines} simulated machines, scaled datasets"),
    );

    let mut summary = Vec::new();
    let mut csv_rows: Vec<Vec<String>> = Vec::new();
    for ds in [Dataset::Or, Dataset::Fr, Dataset::FrsB] {
        let name = ds.spec().name;
        let edges = load_dataset(ds);
        eprintln!("[fig09] building engine for {name} ({} edges)...", edges.len());
        let engine = DistributedEngine::new(&edges, EngineConfig::new(machines).traversal_only());
        let sources = random_sources(&edges, num_queries, 0xF1609);
        let queries: Vec<KhopQuery> =
            sources.iter().enumerate().map(|(i, &s)| KhopQuery::single(i, s, k)).collect();
        let res = QueryScheduler::new(
            &engine,
            SchedulerConfig { use_sim_time: true, ..Default::default() },
        )
        .execute(&queries);
        let mut times: Vec<Duration> = res.iter().map(|r| r.response_time).collect();
        times.sort_unstable();
        let p85 = times[(num_queries * 85 / 100).min(num_queries - 1)];
        let max = *times.last().unwrap();
        println!(
            "[{name}] p50 {}  p85 {}  max {}",
            fmt_dur(times[num_queries / 2]),
            fmt_dur(p85),
            fmt_dur(max)
        );
        summary.push(vec![
            name.to_string(),
            edges.len().to_string(),
            fmt_dur(times[num_queries / 2]),
            fmt_dur(p85),
            fmt_dur(max),
        ]);
        for (i, t) in times.iter().enumerate() {
            csv_rows.push(vec![name.to_string(), i.to_string(), t.as_secs_f64().to_string()]);
        }
    }
    print_table(
        "Figure 9: response-time summary per dataset (simulated cluster time)",
        &["dataset", "edges", "p50", "p85", "max"],
        &summary,
    );
    println!(
        "\nshape check: max(FRS-B)/max(FR) should be a modest factor \
         (paper: 1.6s/1.2s = 1.33)"
    );
    write_csv("fig09_datasize.csv", &["dataset", "rank", "seconds"], &csv_rows);
}
