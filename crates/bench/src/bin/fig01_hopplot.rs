//! Figure 1 — the hop plot (cumulative distance distribution).
//!
//! Paper: Slashdot Zoo, δ = 12, δ₀.₅ = 3.51, δ₀.₉ = 4.71 — "most of
//! the network will be visited with less than 5 hops".
//! Here: a Watts–Strogatz small-world graph of comparable shape plus
//! the OR social analogue, sampled via batched multi-source BFS.

use cgraph_analytics::hop_plot;
use cgraph_bench::{arg_usize, banner, load_dataset, print_table, write_csv};
use cgraph_core::{DistributedEngine, EngineConfig};
use cgraph_gen::Dataset;
use cgraph_graph::{BuildOptions, GraphBuilder};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let sources = arg_usize(&args, "--sources", 64);
    banner(
        "Figure 1: hop plot",
        "Slashdot Zoo (79K vertices); δ=12, δ0.5=3.51, δ0.9=4.71",
        "small-world graph (50K vertices) + OR analogue; BFS-sampled CDF",
    );

    let mut rows = Vec::new();
    for (name, edges) in [
        ("small-world", {
            let raw = cgraph_gen::small_world(50_000, 6, 0.1, 0x51A5);
            let mut b =
                GraphBuilder::with_options(BuildOptions { symmetrize: true, ..Default::default() });
            b.add_edge_list(&raw);
            b.build().edges
        }),
        ("OR", load_dataset(Dataset::Or)),
    ] {
        let engine = DistributedEngine::new(&edges, EngineConfig::new(2).traversal_only());
        let hp = hop_plot(&engine, sources, 7);
        let cdf = hp.cumulative_fractions();
        println!("\n[{name}] {} vertices, {} edges", edges.num_vertices(), edges.len());
        for (d, frac) in cdf.iter().enumerate() {
            println!("  distance ≤ {d:>2}: {:>6.2}%", frac * 100.0);
        }
        let d = hp.diameter();
        let d50 = hp.effective_diameter(0.5);
        let d90 = hp.effective_diameter(0.9);
        println!("  δ = {d}   δ0.5 = {d50:.2}   δ0.9 = {d90:.2}");
        rows.push(vec![name.to_string(), d.to_string(), format!("{d50:.2}"), format!("{d90:.2}")]);
    }
    print_table(
        "Figure 1 summary (paper: δ=12, δ0.5=3.51, δ0.9=4.71)",
        &["graph", "δ", "δ0.5", "δ0.9"],
        &rows,
    );
    write_csv("fig01_hopplot.csv", &["graph", "diameter", "d50", "d90"], &rows);
}
