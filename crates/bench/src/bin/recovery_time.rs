//! Durability cost matrix — snapshot cadence vs crash-recovery time
//! vs steady-state query throughput.
//!
//! A durable [`cgraph_core::QueryService`] pays for `kill -9` safety
//! twice: on the hot path (WAL appends + group-commit fsync + periodic
//! snapshot writes) and at restart (scan, checksum-verify, replay the
//! WAL tail). Both costs are steered by one knob — the snapshot
//! cadence. This bench replays the same seeded query + update workload
//! at cadences 1 / 4 / 8 / 32 / never against a durability-off
//! baseline, then times `open_or_recover` on each resulting data dir.
//!
//! Reported per configuration: queries/s, slowdown vs the baseline,
//! epochs committed, snapshots written, WAL bytes, recovery wall, and
//! WAL records replayed at recovery. Shape checks assert the
//! acceptance criterion: at the default cadence (8) durability costs
//! < 10% of baseline throughput, and every recovery lands on the last
//! committed epoch.

use cgraph_bench::*;
use cgraph_core::{
    DistributedEngine, DurabilityConfig, EdgeUpdate, EngineConfig, KhopQuery, QueryService,
    ServiceConfig, ServiceStats,
};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Deterministic xorshift stream for the update mix.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }
}

/// Applies paced update batches, committing one epoch per batch, until
/// `stop` is raised.
fn update_stream(service: &QueryService, n: u64, commit_every: usize, stop: &AtomicBool) {
    let mut rng = Rng(0xD0_5EED);
    while !stop.load(Ordering::Relaxed) {
        let batch: Vec<EdgeUpdate> = (0..commit_every)
            .map(|_| {
                let s = rng.next() % n;
                let t = rng.next() % n;
                EdgeUpdate::insert(s, t.wrapping_add(1) % n)
            })
            .collect();
        if service.apply_updates(batch.into_iter().collect()).is_err() {
            return;
        }
        if service.commit_epoch().is_err() {
            return;
        }
        std::thread::sleep(Duration::from_millis(25));
    }
}

/// One measured pass: queries on the caller thread, updates + commits
/// on a background thread. Returns `(queries/s, stats)`.
fn run_pass(
    service: &QueryService,
    sources: &[u64],
    k: u32,
    n: u64,
    commit_every: usize,
) -> (f64, ServiceStats) {
    let stop = AtomicBool::new(false);
    let qps = std::thread::scope(|scope| {
        scope.spawn(|| update_stream(service, n, commit_every, &stop));
        let t0 = Instant::now();
        for (i, &src) in sources.iter().enumerate() {
            service.query(KhopQuery::single(i, src, k)).expect("query");
        }
        let wall = t0.elapsed();
        stop.store(true, Ordering::Relaxed);
        sources.len() as f64 / wall.as_secs_f64().max(1e-12)
    });
    // The update thread has joined: the stats (and the epoch counter a
    // later recovery must land on) are final.
    (qps, service.stats())
}

/// A scratch data directory under the target dir, wiped on entry.
fn scratch_dir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("cgraph-recovery-bench-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn durable_service(
    edges: &cgraph_graph::EdgeList,
    machines: usize,
    dir: &Path,
    cadence: u64,
) -> QueryService {
    let config = ServiceConfig {
        durability: Some(DurabilityConfig::new(dir).snapshot_every(cadence)),
        ..ServiceConfig::default()
    };
    let (service, _) = QueryService::open_or_recover(edges, EngineConfig::new(machines), config)
        .expect("open durable service");
    service
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let vertices = arg_usize(&args, "--vertices", 4_000) as u64;
    let edge_count = arg_usize(&args, "--edges", 16_000);
    let queries = arg_usize(&args, "--queries", 400);
    let k = arg_usize(&args, "--k", 3) as u32;
    let machines = arg_usize(&args, "--machines", 2);
    let commit_every = arg_usize(&args, "--commit-every", 500);
    banner(
        "Durability: snapshot cadence vs recovery time vs steady-state cost",
        "C-Graph serves continuously; durability is out of scope for the paper",
        "WAL + checksummed epoch snapshots; crash-restart via open_or_recover",
    );

    let edges = cgraph_gen::erdos_renyi(vertices, edge_count, 0xD0_0D);
    let sources = random_sources(&edges, queries.min(vertices as usize / 2), 0xF1613);

    // Durability-off baseline: same engine, same streams.
    eprintln!("[recovery] baseline (durability off)...");
    let engine = Arc::new(DistributedEngine::new(&edges, EngineConfig::new(machines)));
    let baseline = QueryService::start(engine, ServiceConfig::default());
    let (base_qps, base_stats) = run_pass(&baseline, &sources, k, vertices, commit_every);
    baseline.shutdown();
    drop(baseline);
    println!(
        "baseline: {base_qps:.0} queries/s, {} epochs committed, no durability",
        base_stats.epoch_commits
    );

    let mut rows = Vec::new();
    let mut csv_rows = Vec::new();
    let mut default_slowdown = f64::NAN;
    for cadence in [1u64, 4, 8, 32, u64::MAX] {
        let label = if cadence == u64::MAX { "never".to_string() } else { cadence.to_string() };
        eprintln!("[recovery] cadence {label}...");
        let dir = scratch_dir(&label);
        let service = durable_service(&edges, machines, &dir, cadence);
        let (qps, stats) = run_pass(&service, &sources, k, vertices, commit_every);
        service.shutdown();
        drop(service);
        let slowdown = base_qps / qps.max(1e-12);
        if cadence == 8 {
            default_slowdown = slowdown;
        }

        // Crash-restart: time a cold open_or_recover over the dir the
        // run left behind.
        let t0 = Instant::now();
        let config = ServiceConfig {
            durability: Some(DurabilityConfig::new(&dir).snapshot_every(cadence)),
            ..ServiceConfig::default()
        };
        let (recovered, outcome) =
            QueryService::open_or_recover(&edges, EngineConfig::new(machines), config)
                .expect("recovery");
        let recovery_wall = t0.elapsed();
        assert!(outcome.recovered, "cadence {label}: the run must leave durable state behind");
        assert_eq!(
            outcome.epoch, stats.epoch_commits,
            "cadence {label}: recovery must land on the last committed epoch"
        );
        recovered.shutdown();
        drop(recovered);
        let _ = std::fs::remove_dir_all(&dir);

        rows.push(vec![
            label.clone(),
            format!("{qps:.0}"),
            format!("{:.2}x", slowdown),
            stats.epoch_commits.to_string(),
            stats.snapshots_written.to_string(),
            stats.wal_bytes.to_string(),
            fmt_dur(recovery_wall),
            outcome.wal_records_replayed.to_string(),
        ]);
        csv_rows.push(vec![
            label,
            format!("{qps:.1}"),
            format!("{slowdown:.3}"),
            stats.epoch_commits.to_string(),
            stats.snapshots_written.to_string(),
            stats.wal_bytes.to_string(),
            recovery_wall.as_secs_f64().to_string(),
            outcome.wal_records_replayed.to_string(),
        ]);
    }

    print_table(
        "Snapshot cadence vs steady-state cost vs recovery",
        &[
            "cadence",
            "queries/s",
            "slowdown",
            "epochs",
            "snapshots",
            "wal B",
            "recovery",
            "replayed",
        ],
        &rows,
    );
    write_csv(
        "recovery_time.csv",
        &[
            "cadence",
            "queries_per_s",
            "slowdown_vs_baseline",
            "epochs",
            "snapshots",
            "wal_bytes",
            "recovery_s",
            "wal_replayed",
        ],
        &csv_rows,
    );

    println!("\nShape checks:");
    println!("  [ok] every cadence recovered to the last committed epoch");
    assert!(
        default_slowdown < 1.10,
        "default cadence (8) must cost < 10% of baseline throughput, measured {:.1}%",
        (default_slowdown - 1.0) * 100.0
    );
    println!(
        "  [ok] default cadence (8) costs {:.1}% of baseline throughput (< 10%)",
        (default_slowdown - 1.0) * 100.0
    );
}
