//! Metrics overhead — the observability plane's throughput cost.
//!
//! The registry's design claim is that instrumentation is *lock-cheap*:
//! handles are registered once (mutex-guarded) and the hot paths touch
//! only cached atomics, so turning the whole plane on should cost a few
//! percent at most. This experiment proves it: the identical 1k-query
//! stream is pushed through a live [`cgraph_core::QueryService`] twice —
//! registry off ([`ServiceConfig::obs`] unset) and registry + tracing on
//! — and the two throughputs are compared. Interleaved A/B/A/B rounds
//! cancel drift (thermal, cache warm-up) on the shared host.
//!
//! The "on" run's registry snapshot lands in `target/experiments/`
//! next to the CSV, as every experiment's does.

use cgraph_bench::*;
use cgraph_core::{DistributedEngine, EngineConfig, KhopQuery, QueryService, ServiceConfig};
use cgraph_obs::Obs;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Pushes the stream through a fresh service and returns the wall time.
fn run_stream(
    engine: &Arc<DistributedEngine>,
    stream: &[KhopQuery],
    obs: Option<Arc<Obs>>,
) -> Duration {
    let service = QueryService::start(
        Arc::clone(engine),
        ServiceConfig { max_batch_delay: Duration::from_micros(500), obs, ..Default::default() },
    );
    let t0 = Instant::now();
    let tickets: Vec<_> =
        stream.iter().map(|q| service.submit(q.clone()).expect("service must accept")).collect();
    for t in tickets {
        t.wait().expect("query failed");
    }
    let wall = t0.elapsed();
    service.shutdown();
    wall
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let machines = arg_usize(&args, "--machines", 3);
    let queries = arg_usize(&args, "--queries", 1000);
    let k = arg_usize(&args, "--k", 3) as u32;
    let rounds = arg_usize(&args, "--rounds", 5);
    banner(
        "Metrics overhead: observability plane on vs off",
        "not a paper figure: cost model for the cgraph-obs registry + tracing",
        "identical 1k-query stream, interleaved on/off rounds, same service config",
    );

    let edges = load_dataset_by_name(&arg_string(&args, "--dataset", "TINY"));
    let sources = random_sources(&edges, queries.min(256), 0x5E21);
    let engine =
        Arc::new(DistributedEngine::new(&edges, EngineConfig::new(machines).traversal_only()));
    let stream: Vec<KhopQuery> =
        (0..queries).map(|i| KhopQuery::single(i, sources[i % sources.len()], k)).collect();

    // Warm-up round (dataset pages, thread pools, branch predictors).
    eprintln!("[metrics] warm-up...");
    run_stream(&engine, &stream, None);

    let obs = Obs::shared();
    let mut offs = Vec::with_capacity(rounds);
    let mut ons = Vec::with_capacity(rounds);
    for round in 0..rounds {
        eprintln!("[metrics] round {}/{rounds}...", round + 1);
        // Alternate which arm goes first: a consistent within-round
        // ordering would fold any monotone drift into one arm.
        if round % 2 == 0 {
            offs.push(run_stream(&engine, &stream, None));
            ons.push(run_stream(&engine, &stream, Some(Arc::clone(&obs))));
        } else {
            ons.push(run_stream(&engine, &stream, Some(Arc::clone(&obs))));
            offs.push(run_stream(&engine, &stream, None));
        }
    }
    // Median round per arm: one scheduler hiccup (this is a shared
    // host) must not decide the verdict either way.
    let median = |v: &mut Vec<Duration>| {
        v.sort_unstable();
        v[v.len() / 2]
    };
    let off = median(&mut offs);
    let on = median(&mut ons);
    let qps_off = queries as f64 / off.as_secs_f64().max(1e-12);
    let qps_on = queries as f64 / on.as_secs_f64().max(1e-12);
    let overhead = (qps_off / qps_on.max(1e-12) - 1.0) * 100.0;

    print_table(
        &format!("{queries} x {k}-hop stream, median of {rounds} rounds, {machines} machines"),
        &["registry", "wall (median round)", "queries/s", "overhead"],
        &[
            vec!["off".into(), fmt_dur(off), format!("{qps_off:.0}"), "-".into()],
            vec!["on".into(), fmt_dur(on), format!("{qps_on:.0}"), format!("{overhead:+.1}%")],
        ],
    );
    write_csv(
        "metrics_overhead",
        &["registry", "wall_s", "qps"],
        &[
            vec!["off".into(), off.as_secs_f64().to_string(), qps_off.to_string()],
            vec!["on".into(), on.as_secs_f64().to_string(), qps_on.to_string()],
        ],
    );
    write_metrics_snapshot("metrics_overhead.prom", &obs);
    println!(
        "\nobservability plane costs {overhead:+.1}% throughput \
         ({qps_on:.0} vs {qps_off:.0} queries/s); {} metric families registered",
        obs.metrics.names().len()
    );
}
