//! Table 1 — Datasets Description.
//!
//! Paper: OR-100M (3.07M V / 117M E), FR-1B (65.6M / 1.8B),
//! FRS-72B (131M / 72B), FRS-100B (984M / 106.5B).
//! Here: the scaled analogues (≈50× smaller), same relative ordering
//! and matching edge/vertex ratios.

use cgraph_bench::{load_dataset, print_table, write_csv};
use cgraph_gen::Dataset;
use cgraph_graph::{Csr, GraphStats};

fn main() {
    let paper: &[(&str, u64, u64)] = &[
        ("Orkut (OR-100M)", 3_072_441, 117_185_083),
        ("Friendster (FR-1B)", 65_608_366, 1_806_067_135),
        ("Friendster-Synthetic (FRS-72B)", 131_216_732, 72_224_268_540),
        ("Friendster-Synthetic (FRS-100B)", 984_125_490, 106_557_960_965),
    ];
    let mut rows = Vec::new();
    for (i, ds) in [Dataset::Or, Dataset::Fr, Dataset::FrsA, Dataset::FrsB].into_iter().enumerate()
    {
        let spec = ds.spec();
        let g = load_dataset(ds);
        let csr = Csr::from_edges(g.num_vertices(), g.edges());
        let s = GraphStats::from_csr(&csr);
        let (pname, pv, pe) = paper[i];
        rows.push(vec![
            spec.name.to_string(),
            pname.to_string(),
            s.num_vertices.to_string(),
            s.num_edges.to_string(),
            format!("{:.1}", s.edge_vertex_ratio()),
            format!("{:.1}", pe as f64 / pv as f64),
            s.degrees.max.to_string(),
        ]);
    }
    print_table(
        "Table 1: Datasets Description (scaled analogues)",
        &["name", "stands for", "|V|", "|E|", "E/V", "paper E/V", "max deg"],
        &rows,
    );
    write_csv(
        "table1_datasets.csv",
        &["name", "stands_for", "vertices", "edges", "ev_ratio", "paper_ev_ratio", "max_degree"],
        &rows,
    );
}
