//! Lane-width ablation — the fig13 concurrent-BFS workload (FR graph,
//! 3 machines) packed at batch widths W = 64 / 128 / 256 / 512.
//!
//! A W-wide batch shares every frontier-row scan across W queries
//! instead of 64, so the edge-set rows scanned *per query* must fall
//! monotonically as W grows; queries/s shows how much of that saving
//! survives the wider per-row mask work.

use cgraph_bench::*;
use cgraph_core::{DistributedEngine, EngineConfig};
use cgraph_gen::dataset_by_name;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let machines = arg_usize(&args, "--machines", 3);
    let queries = arg_usize(&args, "--queries", 512);
    let k = arg_usize(&args, "--k", 4) as u32;
    let dataset = arg_string(&args, "--dataset", "FR");
    banner(
        "Lane-width ablation: k-hop batches at W = 64/128/256/512 (FR, 3 machines)",
        "§3.5 fixes one 64-bit word per vertex; wider batches are the natural extension",
        "runtime-width packing: scans-per-query must fall monotonically with W",
    );

    let edges = load_dataset(dataset_by_name(&dataset).expect("known dataset"));
    let sources = random_sources(&edges, queries, 0xF1613);
    let ks = vec![k; queries];
    eprintln!("[ablation] building engine...");
    let engine = DistributedEngine::new(&edges, EngineConfig::new(machines).traversal_only());

    let mut rows = Vec::new();
    let mut csv_rows = Vec::new();
    let mut prev_spq = f64::INFINITY;
    let mut monotone = true;
    for width in [64usize, 128, 256, 512] {
        eprintln!("[ablation] W = {width}...");
        let t0 = std::time::Instant::now();
        let mut scans = 0u64;
        for (cs, ck) in sources.chunks(width).zip(ks.chunks(width)) {
            let r = engine.run_traversal_batch(cs, ck).unwrap();
            scans += r.scans;
        }
        let wall = t0.elapsed();
        let qps = queries as f64 / wall.as_secs_f64().max(1e-12);
        let spq = scans as f64 / queries as f64;
        monotone &= spq <= prev_spq;
        prev_spq = spq;
        rows.push(vec![
            width.to_string(),
            fmt_dur(wall),
            format!("{qps:.0}"),
            scans.to_string(),
            format!("{spq:.1}"),
        ]);
        csv_rows.push(vec![
            width.to_string(),
            wall.as_secs_f64().to_string(),
            format!("{qps:.1}"),
            scans.to_string(),
            format!("{spq:.2}"),
        ]);
    }
    print_table(
        &format!("Lane-width ablation: {queries} x {k}-hop queries ({dataset})"),
        &["W", "wall", "queries/s", "rows scanned", "scans/query"],
        &rows,
    );
    println!(
        "\nshape check: scans/query falls monotonically 64 -> 512 ({})",
        if monotone { "holds" } else { "VIOLATED" }
    );
    write_csv(
        "ablation_lane_width.csv",
        &["width", "wall_s", "queries_per_s", "rows_scanned", "scans_per_query"],
        &csv_rows,
    );
}
