//! Figure 7 — single-machine comparison of concurrent 3-hop queries,
//! C-Graph vs Titan, OR graph.
//!
//! Paper: 100 concurrent queries × 10 random sources each; C-Graph
//! 21×–74× faster rank-wise, all queries < 1 s while Titan goes to
//! 70 s. Here: same protocol on the OR analogue (sources per query
//! configurable — Titan's record-store traversal is expensive on a
//! single core, so the default is 2 sources/query; pass
//! `--sources 10 --queries 100` for the paper's exact counts).

use cgraph_bench::*;
use cgraph_core::metrics::{rankwise_speedup, ResponseStats};
use cgraph_core::{DistributedEngine, EngineConfig, KhopQuery, QueryScheduler, SchedulerConfig};
use cgraph_gen::Dataset;
use std::time::Duration;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let num_queries = arg_usize(&args, "--queries", 100);
    let per_query = arg_usize(&args, "--sources", 2);
    let k = arg_usize(&args, "--k", 3) as u32;
    banner(
        "Figure 7: 100 concurrent 3-hop queries, C-Graph vs Titan (1 machine, OR)",
        "100 queries x 10 sources; C-Graph 21x-74x faster; all < 1s vs Titan up to 70s",
        &format!("{num_queries} queries x {per_query} sources on the OR analogue"),
    );

    let edges = load_dataset(Dataset::Or);
    let sources = random_sources(&edges, num_queries * per_query, 0xF1607);

    // --- C-Graph: batched concurrent execution on 1 machine ---------
    let engine = DistributedEngine::new(&edges, EngineConfig::new(1).traversal_only());
    let queries: Vec<KhopQuery> = (0..num_queries)
        .map(|q| KhopQuery::multi(q, sources[q * per_query..(q + 1) * per_query].to_vec(), k))
        .collect();
    let cg = QueryScheduler::new(&engine, SchedulerConfig::default()).execute(&queries);
    let mut cg_times: Vec<Duration> = cg.iter().map(|r| r.response_time).collect();
    cg_times.sort_unstable();

    // --- Titan: thread-pool concurrent execution --------------------
    eprintln!("[fig07] loading Titan store ({} edges)...", edges.len());
    let server = cgraph_baselines::TitanServer::new(
        cgraph_baselines::TitanDb::load(&edges),
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4),
    );
    let titan_queries: Vec<(u64, u32)> = sources.iter().map(|&s| (s, k)).collect();
    eprintln!("[fig07] running {} Titan traversals...", titan_queries.len());
    let titan_out = server.run_concurrent_khop(&titan_queries);
    // Fold traversals into queries (mean response per query).
    let mut titan_times: Vec<Duration> = (0..num_queries)
        .map(|q| {
            let slice = &titan_out[q * per_query..(q + 1) * per_query];
            slice.iter().map(|o| o.response_time).sum::<Duration>() / per_query as u32
        })
        .collect();
    titan_times.sort_unstable();

    // --- Report ------------------------------------------------------
    let cg_stats = ResponseStats::new(cg_times.clone());
    let titan_stats = ResponseStats::new(titan_times.clone());
    let speedups = rankwise_speedup(&cg_stats, &titan_stats);
    let smin = speedups.iter().cloned().fold(f64::INFINITY, f64::min);
    let smax = speedups.iter().cloned().fold(0.0, f64::max);

    let mut rows = Vec::new();
    for i in (0..num_queries).step_by((num_queries / 10).max(1)) {
        rows.push(vec![
            i.to_string(),
            fmt_dur(cg_times[i]),
            fmt_dur(titan_times[i]),
            format!("{:.1}x", speedups[i]),
        ]);
    }
    rows.push(vec![
        "max".into(),
        fmt_dur(*cg_times.last().unwrap()),
        fmt_dur(*titan_times.last().unwrap()),
        format!("{:.1}x", speedups[num_queries - 1]),
    ]);
    print_table(
        "Figure 7: sorted per-query response times",
        &["rank", "C-Graph", "Titan", "speedup"],
        &rows,
    );
    println!(
        "\nspeedup range {:.0}x–{:.0}x (paper: 21x–74x); C-Graph max {} (paper < 1s), \
         Titan max {} (paper up to 70s)",
        smin,
        smax,
        fmt_dur(*cg_times.last().unwrap()),
        fmt_dur(*titan_times.last().unwrap())
    );
    let csv_rows: Vec<Vec<String>> = (0..num_queries)
        .map(|i| {
            vec![
                i.to_string(),
                cg_times[i].as_secs_f64().to_string(),
                titan_times[i].as_secs_f64().to_string(),
            ]
        })
        .collect();
    write_csv("fig07_titan_vs_cgraph.csv", &["rank", "cgraph_s", "titan_s"], &csv_rows);
}
