//! Figure 12 — query-count scalability on FRS-B (9 machines):
//! 20 / 50 / 100 / 350 concurrent 3-hop queries.
//!
//! Paper: up to 100 queries, 80% finish within 0.6 s and 90% within
//! 1 s; at 350 queries the framework degrades (memory pressure) —
//! only ~40% respond within 1 s, ~60% within 2 s, the rest take
//! 4–7 s.

use cgraph_bench::*;
use cgraph_core::metrics::ResponseStats;
use cgraph_core::{DistributedEngine, EngineConfig, KhopQuery, QueryScheduler, SchedulerConfig};
use cgraph_gen::Dataset;
use std::time::Duration;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let machines = arg_usize(&args, "--machines", 9);
    let k = arg_usize(&args, "--k", 3) as u32;
    banner(
        "Figure 12: query-count scalability on FRS-B (9 machines)",
        "20/50/100/350 queries; degradation at 350 from resource limits",
        "same counts on the FRS-B analogue, simulated cluster time",
    );

    let edges = load_dataset(Dataset::FrsB);
    eprintln!("[fig12] building engine ({} edges)...", edges.len());
    let engine = DistributedEngine::new(&edges, EngineConfig::new(machines).traversal_only());

    let max_queries = 350usize;
    let sources = random_sources(&edges, max_queries, 0xF1612);

    // Run all query counts, then derive bucket edges from the slowest
    // configuration (the paper's grid covers its own measured range).
    let mut all_stats = Vec::new();
    for count in [20usize, 50, 100, 350] {
        eprintln!("[fig12] {count} concurrent queries...");
        let queries: Vec<KhopQuery> =
            sources[..count].iter().enumerate().map(|(i, &s)| KhopQuery::single(i, s, k)).collect();
        let res = QueryScheduler::new(
            &engine,
            SchedulerConfig { use_sim_time: true, ..Default::default() },
        )
        .execute(&queries);
        let stats = ResponseStats::new(res.iter().map(|r| r.response_time).collect::<Vec<_>>());
        all_stats.push((count, stats));
    }
    let overall_max =
        all_stats.iter().map(|(_, s)| s.max()).max().unwrap_or(Duration::from_millis(10));
    let step = (overall_max / 10 + Duration::from_nanos(1)).max(Duration::from_micros(100));
    let buckets: Vec<Duration> = (1..=10u32).map(|i| step * i).collect();
    let labels: Vec<String> = buckets.iter().map(|d| format!("≤{}", fmt_dur(*d))).collect();

    let mut rows = Vec::new();
    let mut csv_rows = Vec::new();
    for (count, stats) in &all_stats {
        let hist = stats.cumulative_histogram(&buckets);
        let mut cells = vec![count.to_string()];
        cells.extend(hist.iter().map(|pct| format!("{pct:.0}%")));
        cells.push(fmt_dur(stats.max()));
        rows.push(cells);
        for (b, pct) in hist.iter().enumerate() {
            csv_rows.push(vec![
                count.to_string(),
                buckets[b].as_secs_f64().to_string(),
                pct.to_string(),
            ]);
        }
    }
    let mut header: Vec<&str> = vec!["queries"];
    header.extend(labels.iter().map(String::as_str));
    header.push("max");
    print_table("Figure 12: cumulative % of queries within bucket", &header, &rows);
    println!(
        "\nshape check (paper): ≤100 queries respond fast; 350 queries degrade \
         markedly with a long tail"
    );
    write_csv("fig12_querycount.csv", &["queries", "bucket_s", "cum_pct"], &csv_rows);
}
