//! Figure 8a — response-time distribution of all subgraph traversals,
//! C-Graph vs Titan, OR graph, single machine.
//!
//! Paper: box plot over 1000 traversals; mean 8.6 s (Titan) vs 0.25 s
//! (C-Graph); ~10% of Titan queries > 50 s.

use cgraph_bench::*;
use cgraph_core::metrics::ResponseStats;
use cgraph_core::{DistributedEngine, EngineConfig, KhopQuery, QueryScheduler, SchedulerConfig};
use cgraph_gen::Dataset;
use std::time::Duration;

fn five_number_row(name: &str, s: &ResponseStats) -> Vec<String> {
    let f = s.five_number();
    vec![
        name.to_string(),
        fmt_dur(f[0]),
        fmt_dur(f[1]),
        fmt_dur(f[2]),
        fmt_dur(f[3]),
        fmt_dur(f[4]),
        fmt_dur(s.mean()),
    ]
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let traversals = arg_usize(&args, "--traversals", 200);
    let k = arg_usize(&args, "--k", 3) as u32;
    banner(
        "Figure 8a: traversal-time distribution, C-Graph vs Titan (OR, 1 machine)",
        "1000 traversals; mean 8.6s (Titan) vs 0.25s (C-Graph)",
        &format!("{traversals} traversals on the OR analogue"),
    );

    let edges = load_dataset(Dataset::Or);
    let sources = random_sources(&edges, traversals, 0xF160A);

    let engine = DistributedEngine::new(&edges, EngineConfig::new(1).traversal_only());
    let queries: Vec<KhopQuery> =
        sources.iter().enumerate().map(|(i, &s)| KhopQuery::single(i, s, k)).collect();
    let cg = QueryScheduler::new(&engine, SchedulerConfig::default()).execute(&queries);
    let cg_stats =
        ResponseStats::new(cg.iter().map(|r| r.response_time).collect::<Vec<Duration>>());

    eprintln!("[fig08a] running Titan traversals...");
    let server = cgraph_baselines::TitanServer::new(
        cgraph_baselines::TitanDb::load(&edges),
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4),
    );
    let titan_queries: Vec<(u64, u32)> = sources.iter().map(|&s| (s, k)).collect();
    let titan_out = server.run_concurrent_khop(&titan_queries);
    let titan_stats = ResponseStats::new(titan_out.iter().map(|o| o.response_time).collect());

    let rows = vec![five_number_row("C-Graph", &cg_stats), five_number_row("Titan", &titan_stats)];
    print_table(
        "Figure 8a: distribution (min/q1/median/q3/max/mean)",
        &["system", "min", "q1", "median", "q3", "max", "mean"],
        &rows,
    );
    println!(
        "\nmean ratio Titan/C-Graph = {:.1}x (paper: 8.6s / 0.25s = 34x)",
        titan_stats.mean().as_secs_f64() / cg_stats.mean().as_secs_f64().max(1e-12)
    );
    write_csv(
        "fig08a_dist_titan.csv",
        &["system", "min", "q1", "median", "q3", "max", "mean"],
        &rows,
    );
}
