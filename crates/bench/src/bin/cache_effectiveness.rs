//! Cache effectiveness — the query plane on a Zipf-skewed stream.
//!
//! A serving deployment's traffic is not uniform: popular sources are
//! re-queried constantly (the paper's "heavy traffic from millions of
//! users"). This bench replays the same seeded Zipf(α) 1k-query
//! stream through the live [`cgraph_core::QueryService`] under four
//! query-plane configurations:
//!
//! 1. **baseline** — plane off (the plain PR-4 fill-or-deadline path);
//! 2. **cache** — bounded result cache (deterministic CLOCK eviction);
//! 3. **cache+coalesce** — plus single-flighting of identical queries;
//! 4. **cache+coalesce+locality** — plus partition-locality packing.
//!
//! The stream is **windowed**: a burst of `--window` queries is
//! submitted open-loop, redeemed, and only then the next burst goes
//! out — a closed-loop client population with bounded outstanding
//! work. (A single all-at-once burst would let the coalescer absorb
//! every duplicate before the first batch ever commits, measuring
//! coalescing only; windowing lets committed results serve the later
//! bursts, which is what a steady-state serving deployment looks
//! like.)
//!
//! Reported per configuration: wall, queries/s, speedup over baseline,
//! cache hit rate (hits / queries), and coalesced traversals. Results
//! must be identical across all four configurations — the plane may
//! only change *when and where* a traversal executes, never its
//! answer.

use cgraph_bench::*;
use cgraph_core::{
    DistributedEngine, EngineConfig, KhopQuery, QueryPlaneConfig, QueryService, ServiceConfig,
    ServiceStats,
};
use cgraph_gen::QueryStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn plane(cache: bool, coalesce: bool, locality: bool) -> QueryPlaneConfig {
    QueryPlaneConfig {
        cache_capacity_bytes: cache.then_some(8 << 20),
        coalesce,
        pack_locality: locality,
        ..Default::default()
    }
}

fn run_stream(
    engine: &Arc<DistributedEngine>,
    stream: &[(usize, u64, u32)],
    window: usize,
    plane: QueryPlaneConfig,
) -> (Duration, u64, ServiceStats) {
    let service = QueryService::start(
        Arc::clone(engine),
        ServiceConfig {
            // Tight flush deadline: waves that the cache thinned below
            // a full batch must not idle-wait for lanes that will
            // never arrive (identical for every configuration).
            max_batch_delay: Duration::from_micros(50),
            query_plane: plane,
            ..Default::default()
        },
    );
    let t0 = Instant::now();
    let mut visited = 0u64;
    for wave in stream.chunks(window) {
        let tickets: Vec<_> = wave
            .iter()
            .map(|&(id, src, k)| service.submit(KhopQuery::single(id, src, k)).expect("submit"))
            .collect();
        for t in tickets {
            visited += t.wait().expect("query failed").visited;
        }
    }
    let wall = t0.elapsed();
    let stats = service.stats();
    service.shutdown();
    (wall, visited, stats)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let machines = arg_usize(&args, "--machines", 3);
    let queries = arg_usize(&args, "--queries", 1000);
    let k = arg_usize(&args, "--k", 3) as u32;
    let alpha_pct = arg_usize(&args, "--alpha-pct", 100); // α × 100
    let alpha = alpha_pct as f64 / 100.0;
    let window = arg_usize(&args, "--window", 250);
    banner(
        "Cache effectiveness: query plane on a Zipf-skewed stream (TINY, 3 machines)",
        "serving extension (not a paper figure): repeat-heavy open stream",
        "same seeded Zipf stream, plane off vs cache vs +coalesce vs +locality",
    );

    let edges = load_dataset_by_name(&arg_string(&args, "--dataset", "TINY"));
    // Zipf ranks mapped onto a degree-filtered candidate set: the
    // hottest rank is always the same vertex, exactly like real
    // hot-key traffic.
    let candidates = random_sources(&edges, 256, 0x5E21);
    let zipf = QueryStream::zipf(0xCAC4E, alpha, queries);
    let stream: Vec<(usize, u64, u32)> =
        zipf.sources(&candidates).into_iter().enumerate().map(|(i, s)| (i, s, k)).collect();
    let engine =
        Arc::new(DistributedEngine::new(&edges, EngineConfig::new(machines).traversal_only()));

    let configs: [(&str, QueryPlaneConfig); 4] = [
        ("baseline", plane(false, false, false)),
        ("cache", plane(true, false, false)),
        ("cache+coalesce", plane(true, true, false)),
        ("cache+coalesce+locality", plane(true, true, true)),
    ];

    let mut rows = Vec::new();
    let mut csv_rows = Vec::new();
    let mut base_qps = 0.0f64;
    let mut base_visited = 0u64;
    let mut full_qps = 0.0f64;
    let mut full_hit_rate = 0.0f64;
    let mut answers_agree = true;
    for (i, (name, cfg)) in configs.into_iter().enumerate() {
        eprintln!("[cache] {name}...");
        let (wall, visited, stats) = run_stream(&engine, &stream, window, cfg);
        let qps = queries as f64 / wall.as_secs_f64().max(1e-12);
        let hit_rate = stats.cache_hits as f64 / queries as f64;
        if i == 0 {
            base_qps = qps;
            base_visited = visited;
        } else {
            answers_agree &= visited == base_visited;
        }
        if i == 2 {
            full_qps = qps;
            full_hit_rate = hit_rate;
        }
        let speedup = qps / base_qps.max(1e-12);
        rows.push(vec![
            name.to_string(),
            fmt_dur(wall),
            format!("{qps:.0}"),
            format!("{speedup:.2}x"),
            format!("{:.1}%", 100.0 * hit_rate),
            stats.coalesced_traversals.to_string(),
            stats.cache_evictions.to_string(),
        ]);
        csv_rows.push(vec![
            name.to_string(),
            wall.as_secs_f64().to_string(),
            format!("{qps:.1}"),
            format!("{speedup:.3}"),
            format!("{:.4}", hit_rate),
            stats.cache_hits.to_string(),
            stats.coalesced_traversals.to_string(),
            stats.cache_evictions.to_string(),
            visited.to_string(),
        ]);
    }

    print_table(
        &format!("Query plane on {queries} x {k}-hop Zipf(α={alpha}) queries"),
        &["config", "wall", "queries/s", "speedup", "hit rate", "coalesced", "evicted"],
        &rows,
    );
    println!(
        "\nshape check: identical answers across all configurations ({})",
        if answers_agree { "holds" } else { "VIOLATED" }
    );
    println!(
        "shape check: cache+coalesce >= 1.5x baseline at >= 40% hit rate \
         ({:.2}x at {:.1}% — {})",
        full_qps / base_qps.max(1e-12),
        100.0 * full_hit_rate,
        if full_qps >= 1.5 * base_qps && full_hit_rate >= 0.40 { "holds" } else { "VIOLATED" }
    );
    write_csv(
        "cache_effectiveness.csv",
        &[
            "config",
            "wall_s",
            "queries_per_s",
            "speedup",
            "hit_rate",
            "cache_hits",
            "coalesced",
            "evicted",
            "visited",
        ],
        &csv_rows,
    );
}
