//! §4.2 (text, no figure number) — PageRank on Titan vs C-Graph:
//! "For the Orkut (OR-100M) graph, Titan execution time was hours for
//! a single iteration while C-Graph only took seconds."
//!
//! We run one PageRank iteration through the Titan record store (a
//! property decode per edge) and 10 iterations through the C-Graph
//! GAS engine, and report the per-iteration ratio.

use cgraph_bench::*;
use cgraph_core::gas::PageRank;
use cgraph_core::{DistributedEngine, EngineConfig};
use cgraph_gen::Dataset;
use std::time::Instant;

fn main() {
    banner(
        "§4.2 extra: PageRank iteration cost, Titan vs C-Graph (OR, 1 machine)",
        "Titan: hours per iteration; C-Graph: seconds (for 10 iterations)",
        "one Titan iteration vs ten C-Graph iterations on the OR analogue",
    );
    let edges = load_dataset(Dataset::Or);

    eprintln!("[titan-pr] loading record store...");
    let db = cgraph_baselines::TitanDb::load(&edges);
    let ranks = vec![1.0f64; edges.num_vertices() as usize];
    let t0 = Instant::now();
    let titan_next = db.pagerank_iteration(&ranks, 0.85);
    let titan_iter = t0.elapsed();

    let engine = DistributedEngine::new(&edges, EngineConfig::new(1));
    let t0 = Instant::now();
    let gas = engine.run_gas(&PageRank::default(), 10);
    let cgraph_ten = t0.elapsed();
    let cgraph_iter = cgraph_ten / 10;

    // Sanity: the two systems compute the same iteration.
    let max_diff = titan_next
        .iter()
        .zip(&gas.values)
        .map(|(a, _)| *a)
        .zip(engine.run_gas(&PageRank::default(), 1).values)
        .map(|(t, c)| (t - c).abs())
        .fold(0.0f64, f64::max);

    let rows = vec![
        vec!["Titan (1 iter)".to_string(), fmt_dur(titan_iter)],
        vec!["C-Graph (per iter)".to_string(), fmt_dur(cgraph_iter)],
        vec!["C-Graph (10 iters)".to_string(), fmt_dur(cgraph_ten)],
    ];
    print_table("PageRank iteration cost", &["system", "time"], &rows);
    println!(
        "\nper-iteration ratio Titan/C-Graph = {:.0}x (paper: hours vs seconds ⇒ ~1000x); \
         results agree to {max_diff:.2e}",
        titan_iter.as_secs_f64() / cgraph_iter.as_secs_f64().max(1e-12)
    );
    write_csv(
        "extra_titan_pagerank.csv",
        &["system", "seconds"],
        &[
            vec!["titan_1iter".into(), titan_iter.as_secs_f64().to_string()],
            vec!["cgraph_per_iter".into(), cgraph_iter.as_secs_f64().to_string()],
        ],
    );
}
