//! Service throughput — persistent cluster vs per-batch thread spawn.
//!
//! The serving path's whole reason to exist: a long-lived
//! [`cgraph_comm::PersistentCluster`] amortises machine-thread start-up
//! across the stream, where the closed-batch path pays
//! `Cluster::new` + `p` thread spawns + joins for *every* batch.
//!
//! Two measurements over the identical 1k-query stream:
//!
//! 1. **substrate** — the same pre-packed batch sequence executed via
//!    `run_traversal_batch` (spawn per batch) and via
//!    `run_traversal_batch_on` (persistent), isolating the substrate
//!    cost with identical work;
//! 2. **open loop** — the stream pushed through a live
//!    [`cgraph_core::QueryService`] by concurrent submitters, reporting
//!    end-to-end queries/sec and the latency distribution.

use cgraph_bench::*;
use cgraph_comm::PersistentCluster;
use cgraph_core::{DistributedEngine, EngineConfig, KhopQuery, QueryService, ServiceConfig};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let machines = arg_usize(&args, "--machines", 3);
    let queries = arg_usize(&args, "--queries", 1000);
    let k = arg_usize(&args, "--k", 3) as u32;
    let submitters = arg_usize(&args, "--submitters", 4);
    banner(
        "Service throughput: persistent cluster vs per-batch spawn",
        "serving extension (not a paper figure): same stream, two substrates",
        "1k-query open stream; batches identical across both paths",
    );

    let edges = load_dataset_by_name(&arg_string(&args, "--dataset", "TINY"));
    // A few hundred distinct sources reused round-robin: plenty of
    // variety without outrunning small datasets' non-isolated vertices.
    let sources = random_sources(&edges, queries.min(256), 0x5E21);
    let engine =
        Arc::new(DistributedEngine::new(&edges, EngineConfig::new(machines).traversal_only()));
    let stream: Vec<KhopQuery> =
        (0..queries).map(|i| KhopQuery::single(i, sources[i % sources.len()], k)).collect();

    // --- 1. substrate comparison: identical pre-packed batches -------
    let batches: Vec<(Vec<u64>, Vec<u32>)> = stream
        .chunks(64)
        .map(|c| (c.iter().map(|q| q.sources[0]).collect(), c.iter().map(|q| q.k).collect()))
        .collect();

    eprintln!("[service] spawn-per-batch substrate ({} batches)...", batches.len());
    let t0 = Instant::now();
    let mut visited_spawn = 0u64;
    for (srcs, ks) in &batches {
        visited_spawn +=
            engine.run_traversal_batch(srcs, ks).unwrap().per_lane_visited.iter().sum::<u64>();
    }
    let spawn_wall = t0.elapsed();

    eprintln!("[service] persistent-cluster substrate...");
    let cluster = PersistentCluster::with_model(machines, engine.config().net_model);
    let t0 = Instant::now();
    let mut visited_persist = 0u64;
    for (srcs, ks) in &batches {
        visited_persist += engine
            .run_traversal_batch_on(&cluster, srcs, ks)
            .expect("batch failed")
            .per_lane_visited
            .iter()
            .sum::<u64>();
    }
    let persist_wall = t0.elapsed();
    cluster.shutdown();
    assert_eq!(visited_spawn, visited_persist, "substrates must agree on results");

    let qps_spawn = queries as f64 / spawn_wall.as_secs_f64().max(1e-12);
    let qps_persist = queries as f64 / persist_wall.as_secs_f64().max(1e-12);
    let ratio = qps_persist / qps_spawn.max(1e-12);

    // --- 2. open-loop stream through the live service ----------------
    // --rate caps each submitter's arrival process (queries/sec across
    // all submitters, 0 = as fast as possible): open loop, so arrivals
    // never wait for responses.
    let rate = arg_usize(&args, "--rate", 0);
    eprintln!("[service] open-loop stream, {submitters} submitters, rate {rate} q/s...");
    let service = Arc::new(QueryService::start(
        Arc::clone(&engine),
        ServiceConfig { max_batch_delay: Duration::from_micros(500), ..Default::default() },
    ));
    let t0 = Instant::now();
    let handles: Vec<_> = (0..submitters)
        .map(|t| {
            let service = Arc::clone(&service);
            let mine: Vec<KhopQuery> = stream.iter().skip(t).step_by(submitters).cloned().collect();
            let per_thread_rate = rate as f64 / submitters as f64;
            std::thread::spawn(move || {
                let start = Instant::now();
                let mut visited = 0u64;
                let mut tickets = Vec::with_capacity(mine.len());
                for (i, q) in mine.into_iter().enumerate() {
                    if per_thread_rate > 0.0 {
                        let due = start + Duration::from_secs_f64(i as f64 / per_thread_rate);
                        let now = Instant::now();
                        if due > now {
                            std::thread::sleep(due - now);
                        }
                    }
                    tickets.push(service.submit(q).expect("service must accept"));
                }
                for ticket in tickets {
                    visited += ticket.wait().expect("service query failed").visited;
                }
                visited
            })
        })
        .collect();
    let service_visited: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
    let service_wall = t0.elapsed();
    assert_eq!(service_visited, visited_spawn, "service must agree on results");
    let stats = service.stats();
    let qps_service = queries as f64 / service_wall.as_secs_f64().max(1e-12);
    service.shutdown();

    let rows = vec![
        vec![
            "spawn-per-batch".into(),
            fmt_dur(spawn_wall),
            format!("{qps_spawn:.0}"),
            "-".into(),
            "-".into(),
        ],
        vec![
            "persistent".into(),
            fmt_dur(persist_wall),
            format!("{qps_persist:.0}"),
            "-".into(),
            format!("{ratio:.2}x"),
        ],
        vec![
            "service (open loop)".into(),
            fmt_dur(service_wall),
            format!("{qps_service:.0}"),
            format!(
                "p50 {} / p99 {}",
                fmt_dur(stats.response.median()),
                fmt_dur(stats.response.quantile(0.99))
            ),
            "-".into(),
        ],
    ];
    print_table(
        &format!("{queries} x {k}-hop stream, {machines} machines"),
        &["path", "wall", "queries/s", "latency", "vs spawn"],
        &rows,
    );
    write_csv(
        "service_throughput",
        &["path", "wall_s", "qps"],
        &[
            vec!["spawn".into(), spawn_wall.as_secs_f64().to_string(), qps_spawn.to_string()],
            vec![
                "persistent".into(),
                persist_wall.as_secs_f64().to_string(),
                qps_persist.to_string(),
            ],
            vec!["service".into(), service_wall.as_secs_f64().to_string(), qps_service.to_string()],
        ],
    );
    println!(
        "\npersistent cluster sustains {ratio:.2}x the spawn-per-batch throughput \
         ({qps_persist:.0} vs {qps_spawn:.0} queries/s)"
    );
}
