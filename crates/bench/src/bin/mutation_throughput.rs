//! Mutation throughput — queries/s while sustaining a live update
//! stream.
//!
//! A serving deployment rarely gets to stop the world for ingest: edge
//! updates arrive while the query stream is hot. This bench replays
//! the same seeded Zipf(1.0) query stream through the live
//! [`cgraph_core::QueryService`] three ways:
//!
//! 1. **read-only** — no updates, the PR-5 query-plane baseline;
//! 2. **mutating/overlay** — a background thread applies edge updates
//!    and commits an epoch every `--commit-every` updates, with the
//!    fold threshold set high so commits publish **delta overlays**
//!    (base + sorted adjacency deltas on every scan);
//! 3. **mutating/fold** — same stream, fold threshold 0, so every
//!    commit **folds** the deltas into fresh base edge-sets.
//!
//! The update stream is paced (`--pace-us` between commit rounds,
//! 0 = flat-out ingest that saturates the dispatcher with commits).
//!
//! Reported per configuration: wall, queries/s, slowdown vs read-only,
//! epochs committed, folds, updates applied, and live overlay rows at
//! drain. Shape checks assert the acceptance criterion: the mutating
//! runs sustain nonzero queries/s while committing >= 3 epochs.

use cgraph_bench::*;
use cgraph_core::{
    DistributedEngine, EdgeUpdate, EngineConfig, KhopQuery, MutationConfig, QueryPlaneConfig,
    QueryService, ServiceConfig, ServiceStats,
};
use cgraph_gen::QueryStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Deterministic xorshift stream for the update mix.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }
}

/// Applies update batches and commits epochs until `stop` is raised,
/// then lands one final commit. Returns the number of updates sent.
fn update_stream(
    service: &QueryService,
    n: u64,
    commit_every: usize,
    pace: Duration,
    stop: &AtomicBool,
) -> u64 {
    let mut rng = Rng(0x5eed_cafe);
    let mut recent: Vec<(u64, u64)> = Vec::new();
    let mut sent = 0u64;
    while !stop.load(Ordering::Relaxed) {
        let batch: Vec<EdgeUpdate> = (0..commit_every)
            .map(|_| {
                // 1 delete (of an edge this stream inserted) per 4
                // inserts: the graph keeps growing, deletes stay real.
                if !recent.is_empty() && rng.next().is_multiple_of(4) {
                    let (s, t) = recent[(rng.next() % recent.len() as u64) as usize];
                    EdgeUpdate::delete(s, t)
                } else {
                    let s = rng.next() % n;
                    let t = rng.next() % n;
                    if recent.len() < 4096 {
                        recent.push((s, t));
                    }
                    EdgeUpdate::insert(s, t)
                }
            })
            .collect();
        sent += batch.len() as u64;
        if service.apply_updates(batch.into_iter().collect()).is_err() {
            break; // service shut down under us
        }
        if service.commit_epoch().is_err() {
            break;
        }
        if !pace.is_zero() {
            std::thread::sleep(pace);
        }
    }
    let _ = service.commit_epoch();
    sent
}

fn run_stream(
    engine: &Arc<DistributedEngine>,
    stream: &[(usize, u64, u32)],
    window: usize,
    mutate: Option<(usize, usize)>, // (commit_every, fold_threshold)
    pace: Duration,
) -> (Duration, ServiceStats) {
    let mutation = match mutate {
        Some((_, fold_threshold)) => MutationConfig { fold_threshold, ..Default::default() },
        None => MutationConfig::default(),
    };
    let service = Arc::new(QueryService::start(
        Arc::clone(engine),
        ServiceConfig {
            max_batch_delay: Duration::from_micros(50),
            query_plane: QueryPlaneConfig {
                cache_capacity_bytes: Some(8 << 20),
                coalesce: true,
                ..Default::default()
            },
            mutation,
            ..Default::default()
        },
    ));
    let stop = Arc::new(AtomicBool::new(false));
    let updater = mutate.map(|(commit_every, _)| {
        let service = Arc::clone(&service);
        let stop = Arc::clone(&stop);
        let n = engine.num_vertices();
        std::thread::spawn(move || update_stream(&service, n, commit_every, pace, &stop))
    });
    let t0 = Instant::now();
    for wave in stream.chunks(window) {
        let tickets: Vec<_> = wave
            .iter()
            .map(|&(id, src, k)| service.submit(KhopQuery::single(id, src, k)).expect("submit"))
            .collect();
        for t in tickets {
            t.wait().expect("query failed");
        }
    }
    let wall = t0.elapsed();
    stop.store(true, Ordering::Relaxed);
    if let Some(h) = updater {
        h.join().expect("updater panicked");
    }
    let stats = service.stats();
    service.shutdown();
    (wall, stats)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let machines = arg_usize(&args, "--machines", 3);
    let queries = arg_usize(&args, "--queries", 1000);
    let k = arg_usize(&args, "--k", 3) as u32;
    let window = arg_usize(&args, "--window", 250);
    let commit_every = arg_usize(&args, "--commit-every", 128);
    let pace = Duration::from_micros(arg_usize(&args, "--pace-us", 200) as u64);
    banner(
        "Mutation throughput: queries/s under a live update stream (TINY, 3 machines)",
        "serving extension (not a paper figure): concurrent ingest + queries",
        "same seeded Zipf stream, read-only vs delta-overlay vs fold-every-commit",
    );

    let edges = load_dataset_by_name(&arg_string(&args, "--dataset", "TINY"));
    let candidates = random_sources(&edges, 256, 0x5E21);
    let zipf = QueryStream::zipf(0xCAC4E, 1.0, queries);
    let stream: Vec<(usize, u64, u32)> =
        zipf.sources(&candidates).into_iter().enumerate().map(|(i, s)| (i, s, k)).collect();
    let engine = Arc::new(DistributedEngine::new(&edges, EngineConfig::new(machines)));

    let configs: [(&str, Option<(usize, usize)>); 3] = [
        ("read-only", None),
        ("mutating/overlay", Some((commit_every, usize::MAX))),
        ("mutating/fold", Some((commit_every, 0))),
    ];

    let mut rows = Vec::new();
    let mut csv_rows = Vec::new();
    let mut base_qps = 0.0f64;
    let mut criterion_holds = true;
    for (i, (name, mutate)) in configs.into_iter().enumerate() {
        eprintln!("[mutation] {name}...");
        let (wall, stats) = run_stream(&engine, &stream, window, mutate, pace);
        let qps = queries as f64 / wall.as_secs_f64().max(1e-12);
        if i == 0 {
            base_qps = qps;
        } else {
            // The acceptance criterion: committed queries/s stays
            // nonzero while the update stream lands >= 3 epochs.
            criterion_holds &= qps > 0.0 && stats.epoch_commits >= 3;
        }
        rows.push(vec![
            name.to_string(),
            fmt_dur(wall),
            format!("{qps:.0}"),
            format!("{:.2}x", qps / base_qps.max(1e-12)),
            stats.epoch_commits.to_string(),
            stats.epoch_folds.to_string(),
            stats.updates_applied.to_string(),
            stats.delta_entries.to_string(),
        ]);
        csv_rows.push(vec![
            name.to_string(),
            wall.as_secs_f64().to_string(),
            format!("{qps:.1}"),
            stats.epoch_commits.to_string(),
            stats.epoch_folds.to_string(),
            stats.updates_applied.to_string(),
            stats.delta_entries.to_string(),
            stats.cache_hits.to_string(),
            stats.queries_failed.to_string(),
        ]);
    }

    print_table(
        &format!("{queries} x {k}-hop Zipf(1.0) queries vs a {commit_every}-update commit cadence"),
        &[
            "config",
            "wall",
            "queries/s",
            "vs read-only",
            "epochs",
            "folds",
            "updates",
            "delta rows",
        ],
        &rows,
    );
    println!(
        "\nshape check: mutating runs sustain nonzero queries/s across >= 3 epoch \
         commits ({})",
        if criterion_holds { "holds" } else { "VIOLATED" }
    );
    assert!(criterion_holds, "acceptance criterion violated: see table above");
    write_csv(
        "mutation_throughput.csv",
        &[
            "config",
            "wall_s",
            "qps",
            "epoch_commits",
            "epoch_folds",
            "updates_applied",
            "delta_entries",
            "cache_hits",
            "queries_failed",
        ],
        &csv_rows,
    );
}
