//! Replica scaling — the serving tier's replicated front-ends on a
//! Zipf-skewed stream.
//!
//! One [`ServiceGroup`] runs N query front-end replicas (admission
//! queue + result cache + coalescer each) over ONE shared cluster;
//! the deterministic router steers each query by source-partition
//! locality with a cache-heat tiebreak. On a single-core host the
//! win is **work avoidance through aggregate cache capacity**: each
//! replica's cache is deliberately sized below the hot set
//! (~90 entries vs 256 hot keys), so a single front-end churns its
//! CLOCK ring forever while four replicas — the router keeping each
//! partition's repeats on the replica that already cached them —
//! hold the entire hot set between them and answer at submit time.
//!
//! Measured per row, after an untimed warmup pass over the hot set
//! (steady-state serving, the tier's operating regime):
//!
//! * **admission throughput** — queries/s over the submission phases
//!   alone. Admission queues are bounded (`--depth`, default 32), so
//!   a churning single replica backpressures the submitter while the
//!   hot-set-resident group admits at memcpy speed.
//! * **client p95** — 95th percentile of per-query client-visible
//!   latency, admission stall *plus* service response, so a stalled
//!   submit cannot hide queue time from the tail (no coordinated
//!   omission).
//! * **hit rate** over the measured phase, and answer equivalence:
//!   results must be bit-identical across every row — replication may
//!   change *where* a traversal runs, never its answer.
//!
//! Rows: the plain pre-tier [`QueryService`], then the group at
//! N ∈ {1, 2, 4}. `--strict` turns the shape checks into hard
//! assertions (CI smoke omits it; EXPERIMENTS.md records a strict
//! run): 1 → 4 replicas must lift admission throughput ≥ 1.7× at a
//! client p95 no worse than the single-replica service's.

use cgraph_bench::*;
use cgraph_core::{
    DistributedEngine, EngineConfig, GroupConfig, KhopQuery, QueryPlaneConfig, QueryService,
    QueryTicket, RouterConfig, ServiceConfig, ServiceError, ServiceGroup, ServiceStats,
};
use cgraph_gen::QueryStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// ~90 entries of headroom per replica: a `CachedTraversal` for a
/// TINY answer runs ~90 B, so 8 KiB caches ~90 of the 256 candidate
/// keys — well under the hot set alone, comfortably over it four ways.
const PER_REPLICA_CACHE_BYTES: usize = 8 << 10;

type Answer = (u64, Vec<u64>);

/// The pre-tier single service and the group behind one submit/query
/// surface, so both measure through identical bench code.
enum Tier {
    Solo(QueryService),
    Group(ServiceGroup),
}

impl Tier {
    fn submit(&self, q: KhopQuery) -> Result<QueryTicket, ServiceError> {
        match self {
            Tier::Solo(s) => s.submit(q),
            Tier::Group(g) => g.submit(q),
        }
    }

    fn stats(&self) -> ServiceStats {
        match self {
            Tier::Solo(s) => s.stats(),
            Tier::Group(g) => g.stats(),
        }
    }

    fn shutdown(&self) {
        match self {
            Tier::Solo(s) => s.shutdown(),
            Tier::Group(g) => g.shutdown(),
        }
    }
}

struct RunOut {
    admit: Duration,
    p95: Duration,
    answers: Vec<Answer>,
    hit_rate: f64,
}

#[allow(clippy::too_many_arguments)]
fn run_stream(
    engine: &Arc<DistributedEngine>,
    stream: &[(usize, u64, u32)],
    hot_set: &[u64],
    k: u32,
    window: usize,
    depth: usize,
    delay: Duration,
    replicas: Option<usize>,
) -> RunOut {
    let service = ServiceConfig {
        max_batch_delay: delay,
        max_queue_depth: depth,
        query_plane: QueryPlaneConfig {
            cache_capacity_bytes: Some(PER_REPLICA_CACHE_BYTES),
            coalesce: true,
            ..Default::default()
        },
        ..Default::default()
    };
    let tier = match replicas {
        None => Tier::Solo(QueryService::start(Arc::clone(engine), service)),
        Some(n) => Tier::Group(ServiceGroup::start(
            Arc::clone(engine),
            GroupConfig { replicas: n, router: RouterConfig::default(), service },
        )),
    };

    // Untimed warmup: one pass over the full hot set, so the measured
    // phase runs against steady-state caches (the serving regime).
    for (i, &src) in hot_set.iter().enumerate() {
        tier.submit(KhopQuery::single(1_000_000 + i, src, k))
            .expect("warmup submit")
            .wait()
            .expect("warmup query");
    }
    let warm = tier.stats();

    let mut admit = Duration::ZERO;
    let mut answers = vec![(0u64, Vec::new()); stream.len()];
    let mut lats: Vec<Duration> = Vec::with_capacity(stream.len());
    for wave in stream.chunks(window) {
        let t0 = Instant::now();
        let tickets: Vec<_> = wave
            .iter()
            .map(|&(id, src, k)| {
                let s0 = Instant::now();
                let t = tier.submit(KhopQuery::single(id, src, k)).expect("submit");
                (s0.elapsed(), id, t)
            })
            .collect();
        admit += t0.elapsed();
        for (stall, id, t) in tickets {
            let r = t.wait().expect("query failed");
            lats.push(stall + r.response_time);
            answers[id] = (r.visited, r.per_level);
        }
    }
    lats.sort();
    let p95 = lats[lats.len() * 95 / 100];
    let done = tier.stats();
    let hit_rate = (done.cache_hits - warm.cache_hits) as f64 / stream.len() as f64;
    tier.shutdown();
    RunOut { admit, p95, answers, hit_rate }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let machines = arg_usize(&args, "--machines", 4);
    let queries = arg_usize(&args, "--queries", 1000);
    let k = arg_usize(&args, "--k", 6) as u32;
    let window = arg_usize(&args, "--window", 250);
    let depth = arg_usize(&args, "--depth", 32);
    let delay = Duration::from_micros(arg_usize(&args, "--delay-us", 50) as u64);
    let strict = args.iter().any(|a| a == "--strict");
    banner(
        "Replica scaling: serving tier at N front-ends (TINY, 4 machines)",
        "serving extension (not a paper figure): replicated front-ends, one cluster",
        "same seeded Zipf(1.0) stream, pre-tier service vs group at N in {1,2,4}",
    );

    let edges = load_dataset_by_name(&arg_string(&args, "--dataset", "TINY"));
    let candidates = random_sources(&edges, 256, 0x5E21);
    let zipf = QueryStream::zipf(0xCAC4E, 1.0, queries);
    let stream: Vec<(usize, u64, u32)> =
        zipf.sources(&candidates).into_iter().enumerate().map(|(i, s)| (i, s, k)).collect();
    let engine =
        Arc::new(DistributedEngine::new(&edges, EngineConfig::new(machines).traversal_only()));

    let mut rows = Vec::new();
    let mut csv_rows = Vec::new();
    let mut baseline: Option<Vec<Answer>> = None;
    let mut answers_agree = true;
    let mut one_qps = 0.0f64;
    let mut four_qps = 0.0f64;
    let mut single_p95 = Duration::ZERO;
    let mut four_p95 = Duration::ZERO;
    for (name, replicas) in [
        ("service (pre-tier)", None),
        ("group N=1", Some(1usize)),
        ("group N=2", Some(2)),
        ("group N=4", Some(4)),
    ] {
        eprintln!("[replicas] {name}...");
        let out = run_stream(&engine, &stream, &candidates, k, window, depth, delay, replicas);
        match &baseline {
            None => baseline = Some(out.answers),
            Some(b) => answers_agree &= *b == out.answers,
        }
        let qps = queries as f64 / out.admit.as_secs_f64().max(1e-12);
        match replicas {
            None => single_p95 = out.p95,
            Some(1) => one_qps = qps,
            Some(4) => {
                four_qps = qps;
                four_p95 = out.p95;
            }
            _ => {}
        }
        rows.push(vec![
            name.to_string(),
            fmt_dur(out.admit),
            format!("{qps:.0}"),
            if one_qps > 0.0 { format!("{:.2}x", qps / one_qps) } else { "-".into() },
            format!("{:.1}%", 100.0 * out.hit_rate),
            fmt_dur(out.p95),
        ]);
        csv_rows.push(vec![
            replicas.map_or_else(|| "solo".into(), |n| n.to_string()),
            name.to_string(),
            out.admit.as_secs_f64().to_string(),
            format!("{qps:.1}"),
            format!("{:.4}", out.hit_rate),
            out.p95.as_secs_f64().to_string(),
        ]);
    }

    print_table(
        &format!(
            "Serving tier on {queries} x {k}-hop Zipf(1.0) queries, window {window}, \
             queue depth {depth}"
        ),
        &["config", "admit wall", "admit q/s", "vs N=1", "hit rate", "client p95"],
        &rows,
    );
    let scaling = four_qps / one_qps.max(1e-12);
    println!(
        "\nshape check: identical answers across every replica count ({})",
        if answers_agree { "holds" } else { "VIOLATED" }
    );
    println!(
        "shape check: 1 -> 4 replicas >= 1.7x admission throughput ({scaling:.2}x — {})",
        if scaling >= 1.7 { "holds" } else { "VIOLATED" }
    );
    println!(
        "shape check: N=4 client p95 no worse than the single service ({} vs {} — {})",
        fmt_dur(four_p95),
        fmt_dur(single_p95),
        if four_p95 <= single_p95 { "holds" } else { "VIOLATED" }
    );
    write_csv(
        "replica_scaling.csv",
        &["replicas", "config", "admit_wall_s", "admit_queries_per_s", "hit_rate", "client_p95_s"],
        &csv_rows,
    );
    if strict {
        assert!(answers_agree, "answers diverged across replica counts");
        assert!(scaling >= 1.7, "1 -> 4 replica scaling {scaling:.2}x < 1.7x");
        assert!(
            four_p95 <= single_p95,
            "N=4 client p95 {four_p95:?} worse than single-replica {single_p95:?}"
        );
    }
}
