//! Figure 8b — response-time distribution of 100 concurrent 3-hop
//! queries, C-Graph vs serialized Gemini, FR graph, 3 machines.
//!
//! Paper: Gemini executes each query in tens of milliseconds but
//! serializes the batch, so mean response ≈ 4.25 s of stacked wait;
//! C-Graph ≈ 0.3 s.

use cgraph_bench::*;
use cgraph_core::metrics::ResponseStats;
use cgraph_core::{DistributedEngine, EngineConfig, KhopQuery, QueryScheduler, SchedulerConfig};
use cgraph_gen::Dataset;
use std::time::Duration;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let num_queries = arg_usize(&args, "--queries", 100);
    let k = arg_usize(&args, "--k", 3) as u32;
    banner(
        "Figure 8b: 100 concurrent 3-hop queries vs Gemini (FR, 3 machines)",
        "mean 4.25s (Gemini, stacked waits) vs ~0.3s (C-Graph)",
        &format!("{num_queries} queries on the FR analogue"),
    );

    let edges = load_dataset(Dataset::Fr);
    let sources = random_sources(&edges, num_queries, 0xF160B);

    let engine = DistributedEngine::new(&edges, EngineConfig::new(3).traversal_only());
    let queries: Vec<KhopQuery> =
        sources.iter().enumerate().map(|(i, &s)| KhopQuery::single(i, s, k)).collect();
    let cg = QueryScheduler::new(&engine, SchedulerConfig::default()).execute(&queries);
    let cg_stats =
        ResponseStats::new(cg.iter().map(|r| r.response_time).collect::<Vec<Duration>>());

    eprintln!("[fig08b] running Gemini (serialized) ...");
    let gemini = cgraph_baselines::GeminiEngine::new(&edges);
    let gm_out =
        gemini.run_queries_serialized(&sources.iter().map(|&s| (s, k)).collect::<Vec<_>>());
    let gm_stats = ResponseStats::new(gm_out.iter().map(|o| o.response_time).collect());
    let gm_exec = ResponseStats::new(gm_out.iter().map(|o| o.exec_time).collect());

    let row = |name: &str, s: &ResponseStats| {
        let f = s.five_number();
        vec![
            name.to_string(),
            fmt_dur(f[0]),
            fmt_dur(f[1]),
            fmt_dur(f[2]),
            fmt_dur(f[3]),
            fmt_dur(f[4]),
            fmt_dur(s.mean()),
        ]
    };
    let rows = vec![
        row("C-Graph", &cg_stats),
        row("Gemini (response)", &gm_stats),
        row("Gemini (exec only)", &gm_exec),
    ];
    print_table(
        "Figure 8b: distribution (min/q1/median/q3/max/mean)",
        &["system", "min", "q1", "median", "q3", "max", "mean"],
        &rows,
    );
    println!(
        "\nmean ratio Gemini/C-Graph = {:.1}x (paper: 4.25s / 0.3s = 14x); \
         note Gemini per-query exec stays small — the response gap is queue wait",
        gm_stats.mean().as_secs_f64() / cg_stats.mean().as_secs_f64().max(1e-12)
    );
    write_csv(
        "fig08b_dist_gemini.csv",
        &["system", "min", "q1", "median", "q3", "max", "mean"],
        &rows,
    );
}
