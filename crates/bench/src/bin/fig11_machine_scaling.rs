//! Figure 11 — multi-machine scalability of 100 concurrent k-hop
//! queries on FR, with 1 / 3 / 6 / 9 machines: cumulative response-time
//! histograms.
//!
//! Paper: with more machines most queries still finish fast (80%
//! within 0.2 s, 90% within 1 s) — more machines add boundary-vertex
//! synchronization but the partition-centric + edge-set design keeps
//! the distribution tight.

use cgraph_bench::*;
use cgraph_core::metrics::ResponseStats;
use cgraph_core::{DistributedEngine, EngineConfig, KhopQuery, QueryScheduler, SchedulerConfig};
use cgraph_gen::Dataset;
use std::time::Duration;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let num_queries = arg_usize(&args, "--queries", 100);
    let k = arg_usize(&args, "--k", 3) as u32;
    banner(
        "Figure 11: 100 concurrent 3-hop queries on FR, 1/3/6/9 machines",
        "cumulative histograms; 80% < 0.2s, 90% < 1s at all machine counts",
        &format!("{num_queries} queries, simulated cluster time, scaled buckets"),
    );

    let edges = load_dataset(Dataset::Fr);
    let sources = random_sources(&edges, num_queries, 0xF1611);
    let queries: Vec<KhopQuery> =
        sources.iter().enumerate().map(|(i, &s)| KhopQuery::single(i, s, k)).collect();

    // Collect all configurations first, then derive bucket edges from
    // the slowest one — the paper's fixed 0.2s..2.0s grid covers its
    // own measured range; ours auto-scales with the smaller dataset.
    let mut all_stats = Vec::new();
    for p in [1usize, 3, 6, 9] {
        eprintln!("[fig11] {p} machine(s)...");
        let engine = DistributedEngine::new(&edges, EngineConfig::new(p).traversal_only());
        let res = QueryScheduler::new(
            &engine,
            SchedulerConfig { use_sim_time: true, ..Default::default() },
        )
        .execute(&queries);
        let stats = ResponseStats::new(res.iter().map(|r| r.response_time).collect::<Vec<_>>());
        all_stats.push((p, stats));
    }
    let overall_max =
        all_stats.iter().map(|(_, s)| s.max()).max().unwrap_or(Duration::from_millis(10));
    let step = (overall_max / 10 + Duration::from_nanos(1)).max(Duration::from_micros(100));
    let edges_buckets: Vec<Duration> = (1..=10u32).map(|i| step * i).collect();
    let labels: Vec<String> = edges_buckets.iter().map(|d| format!("≤{}", fmt_dur(*d))).collect();

    let mut rows = Vec::new();
    let mut csv_rows = Vec::new();
    for (p, stats) in &all_stats {
        let hist = stats.cumulative_histogram(&edges_buckets);
        let mut cells = vec![format!("{p}")];
        cells.extend(hist.iter().map(|pct| format!("{pct:.0}%")));
        rows.push(cells);
        for (b, pct) in hist.iter().enumerate() {
            csv_rows.push(vec![
                p.to_string(),
                edges_buckets[b].as_secs_f64().to_string(),
                pct.to_string(),
            ]);
        }
    }
    let mut header: Vec<&str> = vec!["machines"];
    header.extend(labels.iter().map(String::as_str));
    print_table("Figure 11: cumulative % of queries within bucket", &header, &rows);
    println!("\nshape check (paper): distribution stays tight as machines grow");
    write_csv("fig11_machine_scaling.csv", &["machines", "bucket_s", "cum_pct"], &csv_rows);
}
