//! Fault matrix — recovery behaviour and overhead per fault class.
//!
//! Not a paper figure: C-Graph (ICPP'18) assumes fault-free machines.
//! This harness documents the robustness extension instead: for each
//! fault class of the deterministic chaos plane it runs the same
//! 64-lane k-hop batch stream through a [`cgraph_core::QueryService`]
//! with checkpointing, retries, and degradation enabled, and reports
//!
//! * how the fault was absorbed (confined replay / global rollback /
//!   retry / degradation),
//! * what it cost (batch overhead vs the fault-free baseline),
//! * and that no query was lost (`failed` must be 0 except for the
//!   deliberately unrecoverable row).
//!
//! Every plan carries a fixed seed: rerunning reproduces the exact
//! same faults, decisions, and counters.

use cgraph_bench::*;
use cgraph_core::{
    DistributedEngine, EngineConfig, FaultPlan, KhopQuery, QueryService, RecoveryConfig,
    ServiceConfig, ServiceStats,
};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Runs `queries` k-hop queries through a fresh service configured
/// with `plan`, returning lifetime stats and wall time.
fn run_case(
    edges: &cgraph_graph::EdgeList,
    machines: usize,
    queries: usize,
    k: u32,
    plan: Option<FaultPlan>,
    degrade_after: Option<u32>,
) -> (ServiceStats, Duration) {
    let engine =
        Arc::new(DistributedEngine::new(edges, EngineConfig::new(machines).traversal_only()));
    let service = QueryService::start(
        engine,
        ServiceConfig {
            max_batch_delay: Duration::from_micros(200),
            fault_plan: plan,
            max_retries: 2,
            retry_backoff: Duration::from_micros(100),
            recovery: RecoveryConfig { checkpoint_interval: 4, max_recoveries: 3 },
            degrade_after,
            ..Default::default()
        },
    );
    let sources = random_sources(edges, queries.min(256), 0xFA17);
    let t0 = Instant::now();
    let tickets: Vec<_> = (0..queries)
        .map(|i| service.submit(KhopQuery::single(i, sources[i % sources.len()], k)).unwrap())
        .collect();
    for t in tickets {
        let _ = t.wait();
    }
    let wall = t0.elapsed();
    let stats = service.stats();
    service.shutdown();
    (stats, wall)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let machines = arg_usize(&args, "--machines", 4);
    let queries = arg_usize(&args, "--queries", 512);
    let k = arg_usize(&args, "--k", 6) as u32;
    banner(
        "Fault matrix: chaos plane x recovery policy",
        "robustness extension (not a paper figure): C-Graph assumes fault-free machines",
        "same query stream per row; deterministic FaultPlan seeds; p=4 sync engine",
    );
    let edges = load_dataset_by_name(&arg_string(&args, "--dataset", "TINY"));

    // Each row: (label, plan, degrade_after). Crashes heal after one
    // attempt except the degradation row (repeated crashes of the
    // *last* machine, which re-partitioning removes) and the
    // unrecoverable row (which must exhaust every retry). The
    // transient crash hits superstep 4 — right after the interval-4
    // checkpoint commits — so recovery restores rather than replays.
    let cases: Vec<(&str, Option<FaultPlan>, Option<u32>)> = vec![
        ("fault-free", None, None),
        ("crash, transient", Some(FaultPlan::new(7).crash(2, 4).heal_after(1)), None),
        ("crash, repeated -> degrade", Some(FaultPlan::new(8).crash(3, 2)), Some(2)),
        ("drop 1% of messages", Some(FaultPlan::new(9).with_drop(0.01).heal_after(1)), None),
        ("dup 5% + reorder 5%", Some(FaultPlan::new(10).with_dup(0.05).with_reorder(0.05)), None),
        ("slow link 0->1 (+50us)", Some(FaultPlan::new(11).slow_link(0, 1, 50_000)), None),
        ("crash, unrecoverable (job 0)", Some(FaultPlan::new(12).crash(2, 2).arm_jobs(0..1)), None),
    ];

    let mut rows = Vec::new();
    let mut baseline_wall = Duration::ZERO;
    for (label, plan, degrade) in cases {
        eprintln!("[fault-matrix] {label}...");
        let spec = plan.as_ref().map_or_else(|| "-".to_string(), |p| p.to_string());
        let (s, wall) = run_case(&edges, machines, queries, k, plan, degrade);
        if label == "fault-free" {
            baseline_wall = wall;
        }
        let overhead = if baseline_wall.is_zero() {
            "1.00x".to_string()
        } else {
            format!("{:.2}x", wall.as_secs_f64() / baseline_wall.as_secs_f64())
        };
        rows.push(vec![
            label.to_string(),
            spec,
            s.queries_failed.to_string(),
            s.recoveries.to_string(),
            format!("{}/{}", s.checkpoints_restored, s.checkpoints_taken),
            s.partitions_replayed.to_string(),
            s.full_rollbacks.to_string(),
            s.retries.to_string(),
            s.degraded_generations.to_string(),
            overhead,
        ]);
    }
    let header = [
        "fault",
        "plan",
        "failed",
        "recoveries",
        "ckpt rst/taken",
        "part replayed",
        "rollbacks",
        "retries",
        "degraded",
        "wall vs clean",
    ];
    print_table("fault matrix", &header, &rows);
    write_csv("fault_matrix", &header, &rows);
}
