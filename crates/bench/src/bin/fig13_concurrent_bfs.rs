//! Figure 13 — concurrent full BFS vs Gemini, FR graph, 3 machines,
//! 1 / 64 / 128 / 256 concurrent queries: total execution time.
//!
//! Paper: Gemini's total time is linear in query count (serialized);
//! C-Graph (bit operations enabled) grows sublinearly — 1.7× faster at
//! 64/128 queries and 2.4× at 256.

use cgraph_bench::*;
use cgraph_core::{DistributedEngine, EngineConfig};
use cgraph_gen::Dataset;
use std::time::Duration;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let machines = arg_usize(&args, "--machines", 3);
    banner(
        "Figure 13: concurrent BFS total time vs Gemini (FR, 3 machines)",
        "Gemini linear in query count; C-Graph sublinear; 1.7x@64/128, 2.4x@256",
        "bit-operation batches vs serialized parallel BFS on the FR analogue",
    );

    let edges = load_dataset(Dataset::Fr);
    let sources = random_sources(&edges, 256, 0xF1613);
    eprintln!("[fig13] building engines...");
    let engine = DistributedEngine::new(&edges, EngineConfig::new(machines).traversal_only());
    let gemini = cgraph_baselines::GeminiEngine::new(&edges);

    let mut rows = Vec::new();
    let mut csv_rows = Vec::new();
    for count in [1usize, 64, 128, 256] {
        eprintln!("[fig13] {count} concurrent BFS...");
        // C-Graph: 64-lane batches of full BFS.
        let t0 = std::time::Instant::now();
        let mut sim_total = Duration::ZERO;
        for chunk in sources[..count].chunks(64) {
            let ks = vec![u32::MAX; chunk.len()];
            let r = engine.run_traversal_batch(chunk, &ks).unwrap();
            sim_total += r.sim_exec_time();
        }
        let cg_wall = t0.elapsed();

        // Gemini: serialized queries.
        let gm_out = gemini.run_queries_serialized(
            &sources[..count].iter().map(|&s| (s, u32::MAX)).collect::<Vec<_>>(),
        );
        let gm_total = gm_out.last().unwrap().response_time;

        let ratio = gm_total.as_secs_f64() / cg_wall.as_secs_f64().max(1e-12);
        rows.push(vec![
            count.to_string(),
            fmt_dur(cg_wall),
            fmt_dur(sim_total),
            fmt_dur(gm_total),
            format!("{ratio:.1}x"),
        ]);
        csv_rows.push(vec![
            count.to_string(),
            cg_wall.as_secs_f64().to_string(),
            sim_total.as_secs_f64().to_string(),
            gm_total.as_secs_f64().to_string(),
        ]);
    }
    print_table(
        "Figure 13: total execution time for N concurrent BFS",
        &["queries", "C-Graph (wall)", "C-Graph (sim)", "Gemini", "Gemini/C-Graph"],
        &rows,
    );
    println!(
        "\nshape check (paper): Gemini linear; C-Graph sublinear; speedup grows \
         with query count (1.7x@64 → 2.4x@256)"
    );
    write_csv(
        "fig13_concurrent_bfs.csv",
        &["queries", "cgraph_wall_s", "cgraph_sim_s", "gemini_s"],
        &csv_rows,
    );
}
