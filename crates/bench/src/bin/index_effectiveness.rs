//! Index effectiveness — the boundary reachability index on
//! hot-source Zipf streams.
//!
//! A serving deployment's hottest sources are high-degree hub
//! vertices, and high-degree hubs are overwhelmingly *boundary*
//! vertices under range partitioning — exactly the set the
//! [`cgraph_index`] tier sketches. This bench replays a seeded
//! Zipf(α) stream whose top ranks land on indexed boundary sources
//! through the engine twice:
//!
//! 1. **baseline** — every query runs as a packed batched traversal;
//! 2. **indexed** — queries the current-epoch index can answer are
//!    served from the distance sketches without traversing (zero
//!    scans), and the residual traversal batches carry a
//!    [`PrunePlan`](cgraph_core::PrunePlan) that suppresses provably
//!    no-op frontier deliveries.
//!
//! Answers must be **bit-identical** between the two runs — the index
//! may only change *whether* a traversal executes and *what the wire
//! carries*, never a `visited` count or a per-level profile. Note the
//! scans/query win comes entirely from index-only answers: a sound
//! prune suppresses deliveries that could not have set a frontier
//! bit, so the pruned batches scan exactly the rows the unpruned
//! ones would (see INDEXING.md §4); pruning pays off in suppressed
//! wire traffic and absorb work, reported separately.
//!
//! Reported per dataset: index build wall / sources / resident bytes,
//! index-only answer rate, queries/s and scans per query for both
//! runs, and the suppressed-delivery counts. Shape checks assert the
//! ISSUE-8 acceptance bar: bit-identical answers and ≥ 2× queries/s
//! and ≥ 2× scan reduction on the hot-source stream.

use cgraph_bench::*;
use cgraph_core::{DistributedEngine, EngineConfig, IndexConfig, ReachIndex};
use cgraph_gen::QueryStream;
use cgraph_graph::VertexId;
use std::time::{Duration, Instant};

/// One query's canonical answer: distinct vertices reached plus the
/// trailing-zero-trimmed per-level profile (trimming makes the
/// profile invariant to how the query was packed or answered).
#[derive(Clone, PartialEq, Eq, Debug)]
struct Answer {
    visited: u64,
    per_level: Vec<u64>,
}

fn trim(mut levels: Vec<u64>) -> Vec<u64> {
    while levels.last() == Some(&0) {
        levels.pop();
    }
    levels
}

/// Lane `lane` of a batch result as a canonical [`Answer`].
fn lane_answer(br: &cgraph_core::BatchResult, lane: usize) -> Answer {
    let levels = br.per_level.iter().map(|row| row[lane]).collect();
    Answer { visited: br.per_lane_visited[lane], per_level: trim(levels) }
}

struct RunStats {
    wall: Duration,
    scans: u64,
    index_only: u64,
    pruned_sends: u64,
    pruned_partitions: u64,
    answers: Vec<Answer>,
}

/// Baseline: every query is a lane in a packed traversal batch.
fn run_baseline(engine: &DistributedEngine, stream: &[VertexId], k: u32, lanes: usize) -> RunStats {
    let mut answers = Vec::with_capacity(stream.len());
    let mut scans = 0u64;
    let t0 = Instant::now();
    for chunk in stream.chunks(lanes) {
        let ks = vec![k; chunk.len()];
        let br = engine.run_traversal_batch(chunk, &ks).expect("baseline batch");
        scans += br.scans;
        for lane in 0..chunk.len() {
            answers.push(lane_answer(&br, lane));
        }
    }
    RunStats {
        wall: t0.elapsed(),
        scans,
        index_only: 0,
        pruned_sends: 0,
        pruned_partitions: 0,
        answers,
    }
}

/// Indexed: sketch-answerable queries skip the engine entirely; the
/// rest run as pruned batches.
fn run_indexed(
    engine: &DistributedEngine,
    index: &dyn ReachIndex,
    stream: &[VertexId],
    k: u32,
    lanes: usize,
) -> RunStats {
    let mut answers: Vec<Option<Answer>> = vec![None; stream.len()];
    let mut pending: Vec<usize> = Vec::new();
    let mut scans = 0u64;
    let mut index_only = 0u64;
    let mut pruned_sends = 0u64;
    let mut pruned_partitions = 0u64;
    let t0 = Instant::now();
    for (qid, &src) in stream.iter().enumerate() {
        match index.answer(src, k) {
            Some(ans) => {
                index_only += 1;
                answers[qid] = Some(Answer { visited: ans.visited, per_level: ans.per_level });
            }
            None => pending.push(qid),
        }
    }
    for chunk in pending.chunks(lanes) {
        let sources: Vec<VertexId> = chunk.iter().map(|&qid| stream[qid]).collect();
        let ks = vec![k; chunk.len()];
        let plan = index.prune_plan(&sources);
        let br =
            engine.run_traversal_batch_pruned(&sources, &ks, plan.as_ref()).expect("pruned batch");
        scans += br.scans;
        pruned_sends += br.pruned_sends;
        pruned_partitions += br.pruned_partitions;
        for (lane, &qid) in chunk.iter().enumerate() {
            answers[qid] = Some(lane_answer(&br, lane));
        }
    }
    RunStats {
        wall: t0.elapsed(),
        scans,
        index_only,
        pruned_sends,
        pruned_partitions,
        answers: answers.into_iter().map(|a| a.expect("every query answered")).collect(),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let machines = arg_usize(&args, "--machines", 3);
    let queries = arg_usize(&args, "--queries", 1000);
    let k = arg_usize(&args, "--k", 4) as u32;
    let alpha_pct = arg_usize(&args, "--alpha-pct", 100); // α × 100
    let alpha = alpha_pct as f64 / 100.0;
    let hops = arg_usize(&args, "--hops", 8) as u32;
    let max_sources = arg_usize(&args, "--max-sources", 512);
    let lanes = arg_usize(&args, "--lanes", 64);
    let datasets = arg_string(&args, "--datasets", "OR,FR");
    banner(
        "Index effectiveness: boundary reachability index on hot-source Zipf streams",
        "serving extension (not a paper figure): index tier of ISSUE 8",
        "same seeded Zipf stream, batched traversals vs sketch answers + pruned batches",
    );

    let mut rows = Vec::new();
    let mut csv_rows = Vec::new();
    let mut md_rows: Vec<String> = Vec::new();
    let mut all_agree = true;
    let mut all_fast = true;
    for name in datasets.split(',').map(str::trim).filter(|s| !s.is_empty()) {
        eprintln!("[index] {name}: loading + building engine...");
        let edges = load_dataset_by_name(name);
        let engine = DistributedEngine::new(&edges, EngineConfig::new(machines).traversal_only());

        let t0 = Instant::now();
        let tier = cgraph_index::BoundaryIndexBuilder::new(IndexConfig { hops, max_sources })
            .build_tier(&engine)
            .expect("index build");
        let build_wall = t0.elapsed();
        eprintln!(
            "[index] {name}: {} sources, {} labels, {} B in {}",
            tier.num_sources(),
            tier.label_entries(),
            tier.size_bytes(),
            fmt_dur(build_wall)
        );

        // Hot-source candidate set: the Zipf head lands on indexed
        // boundary sources (hub traffic), the tail on uniformly
        // random sources the index cannot answer.
        let mut candidates: Vec<VertexId> = tier.sources().iter().copied().take(192).collect();
        for v in random_sources(&edges, 256, 0x1DE8) {
            if candidates.len() >= 256 {
                break;
            }
            if !candidates.contains(&v) {
                candidates.push(v);
            }
        }
        let stream =
            QueryStream::zipf(0x1DE80 + queries as u64, alpha, queries).sources(&candidates);

        eprintln!("[index] {name}: baseline run...");
        let base = run_baseline(&engine, &stream, k, lanes);
        eprintln!("[index] {name}: indexed run...");
        let fast = run_indexed(&engine, &tier, &stream, k, lanes);

        let agree = base.answers == fast.answers;
        all_agree &= agree;
        let base_qps = queries as f64 / base.wall.as_secs_f64().max(1e-12);
        let fast_qps = queries as f64 / fast.wall.as_secs_f64().max(1e-12);
        let speedup = fast_qps / base_qps.max(1e-12);
        let base_spq = base.scans as f64 / queries as f64;
        let fast_spq = fast.scans as f64 / queries as f64;
        let scan_cut = base_spq / fast_spq.max(1e-12);
        let rate = fast.index_only as f64 / queries as f64;
        all_fast &= speedup >= 2.0 && scan_cut >= 2.0;

        rows.push(vec![
            name.to_string(),
            fmt_dur(build_wall),
            tier.num_sources().to_string(),
            format!("{:.1}%", 100.0 * rate),
            format!("{base_qps:.0}"),
            format!("{fast_qps:.0}"),
            format!("{speedup:.2}x"),
            format!("{base_spq:.0}"),
            format!("{fast_spq:.0}"),
            format!("{scan_cut:.2}x"),
            fast.pruned_sends.to_string(),
            if agree { "yes".into() } else { "NO".into() },
        ]);
        csv_rows.push(vec![
            name.to_string(),
            build_wall.as_secs_f64().to_string(),
            tier.num_sources().to_string(),
            tier.size_bytes().to_string(),
            format!("{rate:.4}"),
            format!("{base_qps:.1}"),
            format!("{fast_qps:.1}"),
            format!("{speedup:.3}"),
            format!("{base_spq:.1}"),
            format!("{fast_spq:.1}"),
            fast.pruned_sends.to_string(),
            fast.pruned_partitions.to_string(),
            agree.to_string(),
        ]);
        md_rows.push(format!(
            "| {name} | {} | {} | {:.1}% | {base_qps:.0} | {fast_qps:.0} | {speedup:.2}× | \
             {base_spq:.0} | {fast_spq:.0} | {} | {} |",
            fmt_dur(build_wall),
            tier.num_sources(),
            100.0 * rate,
            fast.pruned_sends,
            if agree { "yes" } else { "NO" },
        ));
    }

    print_table(
        &format!("Boundary index on {queries} x {k}-hop Zipf(α={alpha}) hot-source queries"),
        &[
            "dataset",
            "build",
            "sources",
            "index-only",
            "base q/s",
            "index q/s",
            "speedup",
            "scans/q",
            "scans/q ix",
            "scan cut",
            "pruned",
            "identical",
        ],
        &rows,
    );
    println!(
        "\nshape check: bit-identical answers on every dataset ({})",
        if all_agree { "holds" } else { "VIOLATED" }
    );
    println!(
        "shape check: >= 2x queries/s and >= 2x scans/query on every dataset ({})",
        if all_fast { "holds" } else { "VIOLATED" }
    );
    println!("\nEXPERIMENTS.md rows:");
    for r in &md_rows {
        println!("{r}");
    }
    write_csv(
        "index_effectiveness.csv",
        &[
            "dataset",
            "build_s",
            "sources",
            "bytes",
            "index_only_rate",
            "base_qps",
            "index_qps",
            "speedup",
            "base_scans_per_q",
            "index_scans_per_q",
            "pruned_sends",
            "pruned_partitions",
            "identical",
        ],
        &csv_rows,
    );
    if !(all_agree && all_fast) {
        std::process::exit(1);
    }
}
