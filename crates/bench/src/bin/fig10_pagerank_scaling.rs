//! Figure 10 — multi-machine scalability of PageRank (10 iterations),
//! 1–9 machines, normalized to single-machine time.
//!
//! Paper: FR-1B speeds up 1.8× / 2.4× / 2.9× at 3/6/9 machines; the
//! small OR graph stops scaling past 6 machines (communication
//! dominates); the large FRS-72B scales best (4.5× at 9).
//!
//! Machines are threads on a shared host here, so the scaling-relevant
//! metric is *simulated cluster time*: the straggler machine's busy
//! time plus modelled network time (see DESIGN.md).

use cgraph_bench::*;
use cgraph_core::gas::PageRank;
use cgraph_core::{DistributedEngine, EngineConfig};
use cgraph_gen::Dataset;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let iters = arg_usize(&args, "--iters", 10) as u32;
    banner(
        "Figure 10: PageRank multi-machine scalability (10 iterations)",
        "FR: 1.8x/2.4x/2.9x @ 3/6/9; OR flat past 6; FRS-72B up to 4.5x @ 9",
        "simulated cluster time (straggler busy + modelled network)",
    );

    let machine_counts = [1usize, 2, 3, 6, 9];
    let mut rows = Vec::new();
    let mut csv_rows = Vec::new();
    for ds in [Dataset::Or, Dataset::Fr, Dataset::FrsA] {
        let name = ds.spec().name;
        let edges = load_dataset(ds);
        let mut norm: Option<f64> = None;
        let mut cells = vec![name.to_string()];
        for &p in &machine_counts {
            eprintln!("[fig10] {name} on {p} machine(s)...");
            let engine = DistributedEngine::new(&edges, EngineConfig::new(p));
            let r = engine.run_gas(&PageRank::default(), iters);
            let t = r.sim_exec_time().as_secs_f64();
            let base = *norm.get_or_insert(t);
            cells.push(format!("{:.2}", t / base));
            csv_rows.push(vec![name.to_string(), p.to_string(), (t / base).to_string()]);
        }
        rows.push(cells);
    }
    print_table(
        "Figure 10: time normalized to 1 machine (lower is better)",
        &["dataset", "p=1", "p=2", "p=3", "p=6", "p=9"],
        &rows,
    );
    println!(
        "\nshape check (paper): FR @3/6/9 ≈ 0.56/0.42/0.34; OR flattens by 6–9; \
         FRS (largest) scales best"
    );
    write_csv("fig10_pagerank_scaling.csv", &["dataset", "machines", "norm_time"], &csv_rows);
}
