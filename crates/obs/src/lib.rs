//! # cgraph-obs — the observability plane
//!
//! Zero-dependency metrics + tracing substrate shared by every cgraph
//! layer (service, engine, cluster, chaos/recovery). Two halves:
//!
//! * [`metrics`] — a lock-cheap [`MetricsRegistry`] handing out typed
//!   atomic handles ([`Counter`], [`Gauge`], [`Histogram`]) with
//!   Prometheus-style text exposition ([`MetricsRegistry::render_text`])
//!   and a parser ([`parse_text`]) for tests and tooling.
//! * [`trace`] — structured span/instant events carrying
//!   `(job, attempt, superstep, machine)` and **no wall clock**,
//!   ring-buffered per machine thread and drained into a
//!   deterministic, replayable log ([`TraceSink::drain`]).
//!
//! The [`Obs`] bundle ties both together; layers receive an
//! `Arc<Obs>` and register their own handles. See `OBSERVABILITY.md`
//! at the repository root for the full metric catalogue and trace
//! schema.
//!
//! ```
//! use cgraph_obs::{Obs, TraceCtx, COORD};
//!
//! let obs = Obs::shared();
//! obs.metrics.counter("demo_total", "demo").inc();
//! obs.trace.tracer(COORD).instant("demo", TraceCtx::default(), 1);
//! assert!(obs.metrics.render_text().contains("demo_total 1"));
//! assert_eq!(obs.trace.drain().len(), 1);
//! ```

#![warn(missing_docs)]

pub mod metrics;
pub mod trace;

pub use metrics::{
    log2_edges, parse_text, Counter, Gauge, Histogram, MetricsRegistry, ParsedHistogram, Snapshot,
    PAPER_LATENCY_EDGES_SECS,
};
pub use trace::{TraceCtx, TraceEvent, TraceKind, TraceSink, Tracer, COORD};

/// Default per-machine trace-ring capacity: large enough for a long
/// chaos-seeded stream without wrapping, small enough to stay cheap.
pub const DEFAULT_TRACE_CAPACITY: usize = 1 << 16;

/// The bundle a process shares across layers: one registry, one trace
/// sink.
pub struct Obs {
    /// Metric registry (get-or-create typed handles).
    pub metrics: MetricsRegistry,
    /// Trace sink (per-machine rings).
    pub trace: TraceSink,
}

impl Default for Obs {
    fn default() -> Self {
        Self::new()
    }
}

impl Obs {
    /// Creates a bundle with the default trace capacity.
    pub fn new() -> Self {
        Self::with_trace_capacity(DEFAULT_TRACE_CAPACITY)
    }

    /// Creates a bundle whose trace rings hold `capacity` events each.
    pub fn with_trace_capacity(capacity: usize) -> Self {
        Self { metrics: MetricsRegistry::new(), trace: TraceSink::new(capacity) }
    }

    /// Convenience: a fresh bundle behind an `Arc`, ready to hand to
    /// the service/cluster layers.
    pub fn shared() -> std::sync::Arc<Self> {
        std::sync::Arc::new(Self::new())
    }
}
