//! Structured tracing: ring-buffered span/instant events, drained into
//! a deterministic, replayable event log.
//!
//! Every event carries the logical coordinates of the work it
//! describes — `(job, attempt, superstep, machine)` — and **no wall
//! clock**, so two seeded runs of the same workload produce
//! byte-identical logs that diff cleanly. Each machine thread writes
//! into its own fixed-capacity ring ([`Tracer`] is the per-thread
//! handle; recording is one short critical section on an uncontended
//! mutex), and [`TraceSink::drain`] merges the rings into a single log
//! ordered by `(job, attempt, superstep, machine, per-ring sequence)`.
//!
//! The coordinator (service dispatcher / recovery planner) records
//! under the reserved machine id [`COORD`], rendered as `coord`.
//!
//! ```
//! use cgraph_obs::{TraceCtx, TraceSink, COORD};
//!
//! let sink = TraceSink::new(16);
//! let t = sink.tracer(COORD);
//! t.instant("batch_dispatch", TraceCtx { job: 1, attempt: 0, superstep: 0, machine: COORD }, 8);
//! let log = TraceSink::render(&sink.drain());
//! assert_eq!(log, "job=1 attempt=0 step=0 machine=coord instant batch_dispatch value=8\n");
//! ```

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Reserved machine id for coordinator-side events (rendered `coord`).
pub const COORD: u32 = u32::MAX;

/// Logical coordinates of the work an event describes.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TraceCtx {
    /// Batch/job id (the service's `batch_seq`, or the cluster
    /// generation for bare engine runs).
    pub job: u64,
    /// Submission attempt within the job (0 = first).
    pub attempt: u32,
    /// BSP superstep the event belongs to.
    pub superstep: u32,
    /// Machine (partition) id, or [`COORD`].
    pub machine: u32,
}

/// Event flavour: paired span boundaries or a point event.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum TraceKind {
    /// Span entry.
    Enter,
    /// Span exit.
    Exit,
    /// Point event.
    Instant,
}

impl TraceKind {
    fn as_str(self) -> &'static str {
        match self {
            TraceKind::Enter => "enter",
            TraceKind::Exit => "exit",
            TraceKind::Instant => "instant",
        }
    }
}

/// One structured trace event. Contains no wall-clock field by design.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Logical coordinates.
    pub ctx: TraceCtx,
    /// Event flavour.
    pub kind: TraceKind,
    /// Instrumentation point name (static so recording never
    /// allocates).
    pub name: &'static str,
    /// Point-specific payload (bits set, messages sent, bytes, …).
    pub value: u64,
}

struct Ring {
    events: Mutex<Vec<(u64, TraceEvent)>>,
    seq: AtomicU64,
    dropped: AtomicU64,
    capacity: usize,
}

impl Ring {
    fn record(&self, ev: TraceEvent) {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let mut events = self.events.lock().unwrap_or_else(|e| e.into_inner());
        if events.len() >= self.capacity {
            // Ring semantics: drop the oldest retained event.
            events.remove(0);
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        events.push((seq, ev));
    }
}

/// Cheap cloneable per-machine handle into the sink's ring.
#[derive(Clone)]
pub struct Tracer {
    ring: Arc<Ring>,
    machine: u32,
}

impl Tracer {
    /// Machine id this tracer records under.
    pub fn machine(&self) -> u32 {
        self.machine
    }

    /// Records an arbitrary event.
    pub fn record(&self, kind: TraceKind, name: &'static str, ctx: TraceCtx, value: u64) {
        self.ring.record(TraceEvent { ctx, kind, name, value });
    }

    /// Records a span entry.
    pub fn enter(&self, name: &'static str, ctx: TraceCtx, value: u64) {
        self.record(TraceKind::Enter, name, ctx, value);
    }

    /// Records a span exit.
    pub fn exit(&self, name: &'static str, ctx: TraceCtx, value: u64) {
        self.record(TraceKind::Exit, name, ctx, value);
    }

    /// Records a point event.
    pub fn instant(&self, name: &'static str, ctx: TraceCtx, value: u64) {
        self.record(TraceKind::Instant, name, ctx, value);
    }
}

/// Collects per-machine rings and drains them into one deterministic
/// log.
pub struct TraceSink {
    rings: Mutex<BTreeMap<u32, Arc<Ring>>>,
    capacity: usize,
}

impl TraceSink {
    /// Creates a sink whose per-machine rings hold `capacity` events
    /// each (oldest dropped on overflow; drops are counted).
    pub fn new(capacity: usize) -> Self {
        Self { rings: Mutex::new(BTreeMap::new()), capacity: capacity.max(1) }
    }

    /// Get-or-create the tracer for `machine`. One ring per machine
    /// id; callers must ensure at most one thread writes to a machine
    /// id at a time if they need strictly ordered sequence numbers
    /// (the BSP cluster guarantees this: one thread per machine, jobs
    /// serialized).
    pub fn tracer(&self, machine: u32) -> Tracer {
        let mut rings = self.rings.lock().unwrap_or_else(|e| e.into_inner());
        let ring = rings.entry(machine).or_insert_with(|| {
            Arc::new(Ring {
                events: Mutex::new(Vec::new()),
                seq: AtomicU64::new(0),
                dropped: AtomicU64::new(0),
                capacity: self.capacity,
            })
        });
        Tracer { ring: Arc::clone(ring), machine }
    }

    /// Total events discarded to ring overflow across all machines.
    pub fn dropped(&self) -> u64 {
        let rings = self.rings.lock().unwrap_or_else(|e| e.into_inner());
        rings.values().map(|r| r.dropped.load(Ordering::Relaxed)).sum()
    }

    /// Drains every ring and returns the merged log sorted by
    /// `(job, attempt, superstep, machine, per-ring seq)`. The sort
    /// key contains no wall-clock component, so seeded runs drain
    /// identically.
    pub fn drain(&self) -> Vec<TraceEvent> {
        let rings = self.rings.lock().unwrap_or_else(|e| e.into_inner());
        let mut all: Vec<(u64, TraceEvent)> = Vec::new();
        for ring in rings.values() {
            let mut events = ring.events.lock().unwrap_or_else(|e| e.into_inner());
            all.append(&mut events);
        }
        all.sort_by_key(|(seq, ev)| {
            (ev.ctx.job, ev.ctx.attempt, ev.ctx.superstep, ev.ctx.machine, *seq)
        });
        all.into_iter().map(|(_, ev)| ev).collect()
    }

    /// Renders a drained log as one line per event:
    /// `job=J attempt=A step=S machine=M kind name value=V`.
    pub fn render(events: &[TraceEvent]) -> String {
        let mut out = String::new();
        for ev in events {
            out.push_str(&format!(
                "job={} attempt={} step={} machine={} {} {} value={}\n",
                ev.ctx.job,
                ev.ctx.attempt,
                ev.ctx.superstep,
                MachineLabel(ev.ctx.machine),
                ev.kind.as_str(),
                ev.name,
                ev.value
            ));
        }
        out
    }
}

struct MachineLabel(u32);

impl std::fmt::Display for MachineLabel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.0 == COORD {
            write!(f, "coord")
        } else {
            write!(f, "{}", self.0)
        }
    }
}

/// Records a point event through an `Option<&Tracer>`-like expression
/// (anything with `.as_ref()` yielding `Option<&Tracer>`), skipping
/// all work when tracing is off.
#[macro_export]
macro_rules! trace_instant {
    ($tracer:expr, $name:literal, $ctx:expr, $value:expr) => {
        if let Some(t) = $tracer.as_ref() {
            t.instant($name, $ctx, $value as u64);
        }
    };
}

/// Wraps an expression in an enter/exit span pair recorded through an
/// optional tracer; evaluates and returns the body either way.
#[macro_export]
macro_rules! trace_span {
    ($tracer:expr, $name:literal, $ctx:expr, $value:expr, $body:expr) => {{
        if let Some(t) = $tracer.as_ref() {
            t.enter($name, $ctx, $value as u64);
        }
        let out = $body;
        if let Some(t) = $tracer.as_ref() {
            t.exit($name, $ctx, $value as u64);
        }
        out
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(job: u64, step: u32, machine: u32) -> TraceCtx {
        TraceCtx { job, attempt: 0, superstep: step, machine }
    }

    #[test]
    fn drain_orders_by_logical_coordinates() {
        let sink = TraceSink::new(64);
        let t1 = sink.tracer(1);
        let t0 = sink.tracer(0);
        // Recorded out of logical order across rings.
        t1.instant("b", ctx(0, 1, 1), 0);
        t0.instant("a", ctx(0, 1, 0), 0);
        t1.instant("c", ctx(0, 0, 1), 0);
        t0.instant("d", ctx(1, 0, 0), 0);
        let names: Vec<&str> = sink.drain().iter().map(|e| e.name).collect();
        assert_eq!(names, vec!["c", "a", "b", "d"]);
    }

    #[test]
    fn per_ring_seq_breaks_ties_in_record_order() {
        let sink = TraceSink::new(64);
        let t = sink.tracer(2);
        t.enter("step", ctx(0, 0, 2), 5);
        t.instant("send", ctx(0, 0, 2), 3);
        t.exit("step", ctx(0, 0, 2), 5);
        let kinds: Vec<TraceKind> = sink.drain().iter().map(|e| e.kind).collect();
        assert_eq!(kinds, vec![TraceKind::Enter, TraceKind::Instant, TraceKind::Exit]);
    }

    #[test]
    fn ring_overflow_drops_oldest_and_counts() {
        let sink = TraceSink::new(2);
        let t = sink.tracer(0);
        for i in 0..5u64 {
            t.instant("e", ctx(0, i as u32, 0), i);
        }
        assert_eq!(sink.dropped(), 3);
        let vals: Vec<u64> = sink.drain().iter().map(|e| e.value).collect();
        assert_eq!(vals, vec![3, 4]);
    }

    #[test]
    fn render_is_line_per_event_and_coord_labeled() {
        let sink = TraceSink::new(8);
        sink.tracer(COORD).instant("dispatch", ctx(7, 0, COORD), 2);
        let log = TraceSink::render(&sink.drain());
        assert_eq!(log, "job=7 attempt=0 step=0 machine=coord instant dispatch value=2\n");
    }

    #[test]
    fn macros_compile_against_option_tracer() {
        let sink = TraceSink::new(8);
        let some = Some(sink.tracer(0));
        let none: Option<Tracer> = None;
        trace_instant!(some, "evt", ctx(0, 0, 0), 1u32);
        let x = trace_span!(some, "span", ctx(0, 0, 0), 2u32, 40 + 2);
        assert_eq!(x, 42);
        trace_instant!(none, "evt", ctx(0, 0, 0), 1u32);
        let y = trace_span!(none, "span", ctx(0, 0, 0), 2u32, 1);
        assert_eq!(y, 1);
        assert_eq!(sink.drain().len(), 3);
    }
}
