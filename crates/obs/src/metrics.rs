//! Lock-cheap metrics registry with Prometheus-style text exposition.
//!
//! The registry hands out typed handles ([`Counter`], [`Gauge`],
//! [`Histogram`]) that layers cache outside their hot loops; every
//! update after registration is a single atomic RMW (plus a CAS loop
//! for histogram sums), never a lock. Registration itself
//! (get-or-create by name + label set) takes a registry-wide mutex and
//! is expected once per component lifetime, not per superstep.
//!
//! Naming follows the Prometheus convention: `snake_case` families
//! prefixed with the owning layer (`cgraph_service_`, `cgraph_engine_`,
//! `cgraph_comm_`, `cgraph_recovery_`), `_total` suffix on counters,
//! and units spelled out (`_seconds`, `_bytes`). Labels distinguish
//! series within a family (for example `link="0->2"` on the per-link
//! traffic counters).
//!
//! [`MetricsRegistry::render_text`] emits the classic text format
//! (`# HELP` / `# TYPE` headers, cumulative `_bucket{le="..."}` rows),
//! and [`parse_text`] parses such a snapshot back for tests and
//! tooling.
//!
//! ```
//! use cgraph_obs::MetricsRegistry;
//!
//! let reg = MetricsRegistry::new();
//! let queries = reg.counter("demo_queries_total", "Queries admitted.");
//! queries.add(3);
//! let text = reg.render_text();
//! assert!(text.contains("demo_queries_total 3"));
//! let snap = cgraph_obs::parse_text(&text).unwrap();
//! assert_eq!(snap.counters["demo_queries_total"], 3);
//! ```

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

/// The paper's fixed response-time bucket edges (Figs. 11–12): 0.2 s to
/// 2.0 s in 0.2 s steps. Values above 2.0 s land in the implicit
/// `+Inf` bucket.
pub const PAPER_LATENCY_EDGES_SECS: [f64; 10] = [0.2, 0.4, 0.6, 0.8, 1.0, 1.2, 1.4, 1.6, 1.8, 2.0];

/// Power-of-two bucket edges `1, 2, 4, …, 2^(n-1)` for count-valued
/// histograms (frontier sizes, supersteps per batch).
pub fn log2_edges(n: u32) -> Vec<f64> {
    (0..n).map(|i| (1u64 << i) as f64).collect()
}

/// Monotonically increasing counter (`AtomicU64`).
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Increments by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increments by `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Instantaneous signed value (`AtomicI64`): queue depths, occupancy.
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// Sets the gauge to `v`.
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Adds `n` (may be negative).
    pub fn add(&self, n: i64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Fixed-bucket histogram. Buckets are cumulative only at render time;
/// internally each atomic slot counts observations falling in
/// `(edges[i-1], edges[i]]`, with one extra slot for `+Inf`.
#[derive(Debug)]
pub struct Histogram {
    edges: Vec<f64>,
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    /// Sum of observed values, stored as f64 bits and accumulated with
    /// a CAS loop (no lock on the observe path).
    sum_bits: AtomicU64,
}

impl Histogram {
    fn new(edges: Vec<f64>) -> Self {
        let n = edges.len();
        Self {
            edges,
            buckets: (0..=n).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0f64.to_bits()),
        }
    }

    /// Records one observation.
    pub fn observe(&self, v: f64) {
        let idx = self.edges.partition_point(|&e| e < v);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        let mut cur = self.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + v).to_bits();
            match self.sum_bits.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(actual) => cur = actual,
            }
        }
    }

    /// Records a [`std::time::Duration`] in seconds.
    pub fn observe_duration(&self, d: std::time::Duration) {
        self.observe(d.as_secs_f64());
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.sum_bits.load(Ordering::Relaxed))
    }

    /// Bucket upper edges (exclusive of the implicit `+Inf`).
    pub fn edges(&self) -> &[f64] {
        &self.edges
    }

    /// Non-cumulative per-bucket counts (last slot is `+Inf`).
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect()
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    Counter,
    Gauge,
    Histogram,
}

enum Series {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

struct Family {
    help: String,
    kind: Kind,
    /// Keyed by rendered label set (`""` or `{k="v",...}`), in
    /// BTreeMap order so rendering is stable.
    series: BTreeMap<String, Series>,
}

/// Process-wide metric registry: get-or-create typed handles, stable
/// text exposition.
///
/// Handles are `Arc`s — callers register once and cache the handle;
/// the registry lock is never taken on the update path.
#[derive(Default)]
pub struct MetricsRegistry {
    families: Mutex<BTreeMap<String, Family>>,
}

fn render_labels(labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let inner: Vec<String> = labels.iter().map(|(k, v)| format!("{k}=\"{v}\"")).collect();
    format!("{{{}}}", inner.join(","))
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn lock(&self) -> MutexGuard<'_, BTreeMap<String, Family>> {
        self.families.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn family<'a>(
        map: &'a mut BTreeMap<String, Family>,
        name: &str,
        help: &str,
        kind: Kind,
    ) -> &'a mut Family {
        let fam = map.entry(name.to_string()).or_insert_with(|| Family {
            help: help.to_string(),
            kind,
            series: BTreeMap::new(),
        });
        assert_eq!(fam.kind, kind, "metric {name} re-registered with a different type");
        fam
    }

    /// Get-or-create an unlabeled counter.
    pub fn counter(&self, name: &str, help: &str) -> Arc<Counter> {
        self.counter_with(name, &[], help)
    }

    /// Get-or-create a counter with a label set.
    pub fn counter_with(&self, name: &str, labels: &[(&str, &str)], help: &str) -> Arc<Counter> {
        let mut map = self.lock();
        let fam = Self::family(&mut map, name, help, Kind::Counter);
        let entry = fam
            .series
            .entry(render_labels(labels))
            .or_insert_with(|| Series::Counter(Arc::new(Counter::default())));
        match entry {
            Series::Counter(c) => Arc::clone(c),
            _ => unreachable!("family kind checked above"),
        }
    }

    /// Get-or-create an unlabeled gauge.
    pub fn gauge(&self, name: &str, help: &str) -> Arc<Gauge> {
        let mut map = self.lock();
        let fam = Self::family(&mut map, name, help, Kind::Gauge);
        let entry = fam
            .series
            .entry(String::new())
            .or_insert_with(|| Series::Gauge(Arc::new(Gauge::default())));
        match entry {
            Series::Gauge(g) => Arc::clone(g),
            _ => unreachable!("family kind checked above"),
        }
    }

    /// Get-or-create an unlabeled histogram with the given bucket
    /// edges. Edges must be strictly increasing; an `+Inf` bucket is
    /// implicit. If the family already exists the stored edges win.
    pub fn histogram(&self, name: &str, help: &str, edges: &[f64]) -> Arc<Histogram> {
        assert!(
            edges.windows(2).all(|w| w[0] < w[1]),
            "histogram edges must be strictly increasing"
        );
        let mut map = self.lock();
        let fam = Self::family(&mut map, name, help, Kind::Histogram);
        let entry = fam
            .series
            .entry(String::new())
            .or_insert_with(|| Series::Histogram(Arc::new(Histogram::new(edges.to_vec()))));
        match entry {
            Series::Histogram(h) => Arc::clone(h),
            _ => unreachable!("family kind checked above"),
        }
    }

    /// Registered family names, sorted (the catalogue surface that
    /// `OBSERVABILITY.md` documents).
    pub fn names(&self) -> Vec<String> {
        self.lock().keys().cloned().collect()
    }

    /// Renders the Prometheus text exposition format. Families and
    /// series appear in sorted order, so two registries holding the
    /// same values render identically.
    pub fn render_text(&self) -> String {
        let map = self.lock();
        let mut out = String::new();
        for (name, fam) in map.iter() {
            let kind = match fam.kind {
                Kind::Counter => "counter",
                Kind::Gauge => "gauge",
                Kind::Histogram => "histogram",
            };
            let _ = writeln!(out, "# HELP {name} {}", fam.help);
            let _ = writeln!(out, "# TYPE {name} {kind}");
            for (labels, series) in fam.series.iter() {
                match series {
                    Series::Counter(c) => {
                        let _ = writeln!(out, "{name}{labels} {}", c.get());
                    }
                    Series::Gauge(g) => {
                        let _ = writeln!(out, "{name}{labels} {}", g.get());
                    }
                    Series::Histogram(h) => {
                        let counts = h.bucket_counts();
                        let mut cum = 0u64;
                        for (i, edge) in h.edges().iter().enumerate() {
                            cum += counts[i];
                            let _ = writeln!(out, "{name}_bucket{{le=\"{edge}\"}} {cum}");
                        }
                        cum += counts[h.edges().len()];
                        let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {cum}");
                        let _ = writeln!(out, "{name}_sum {}", h.sum());
                        let _ = writeln!(out, "{name}_count {}", h.count());
                    }
                }
            }
        }
        out
    }
}

/// A parsed histogram family from [`parse_text`].
#[derive(Debug, Clone, PartialEq)]
pub struct ParsedHistogram {
    /// `(upper_edge, cumulative_count)` rows; the final row is the
    /// `+Inf` bucket (`f64::INFINITY`).
    pub buckets: Vec<(f64, u64)>,
    /// Sum of observations.
    pub sum: f64,
    /// Total observation count.
    pub count: u64,
}

/// A parsed metrics snapshot: series keyed by full name (labels
/// included).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    /// Counter series values.
    pub counters: BTreeMap<String, u64>,
    /// Gauge series values.
    pub gauges: BTreeMap<String, i64>,
    /// Histogram families.
    pub histograms: BTreeMap<String, ParsedHistogram>,
}

impl Snapshot {
    /// Sums every counter series of family `name` (labels collapsed).
    pub fn counter_family(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .filter(|(k, _)| *k == name || k.starts_with(&format!("{name}{{")))
            .map(|(_, v)| v)
            .sum()
    }
}

/// Parses [`MetricsRegistry::render_text`] output back into a
/// [`Snapshot`]. Returns an error describing the first malformed line.
pub fn parse_text(text: &str) -> Result<Snapshot, String> {
    let mut snap = Snapshot::default();
    let mut kinds: BTreeMap<String, String> = BTreeMap::new();
    for line in text.lines() {
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut it = rest.split_whitespace();
            let name = it.next().ok_or_else(|| format!("bad TYPE line: {line}"))?;
            let kind = it.next().ok_or_else(|| format!("bad TYPE line: {line}"))?;
            kinds.insert(name.to_string(), kind.to_string());
            continue;
        }
        if line.starts_with('#') {
            continue;
        }
        let (series, value) =
            line.rsplit_once(' ').ok_or_else(|| format!("bad sample line: {line}"))?;
        let family = series.split('{').next().unwrap_or(series);
        let base = family
            .strip_suffix("_bucket")
            .or_else(|| family.strip_suffix("_sum"))
            .or_else(|| family.strip_suffix("_count"))
            .filter(|b| kinds.get(*b).map(String::as_str) == Some("histogram"));
        if let Some(base) = base {
            let hist = snap.histograms.entry(base.to_string()).or_insert(ParsedHistogram {
                buckets: Vec::new(),
                sum: 0.0,
                count: 0,
            });
            if family.ends_with("_bucket") {
                let le = series
                    .split("le=\"")
                    .nth(1)
                    .and_then(|s| s.split('"').next())
                    .ok_or_else(|| format!("bucket without le label: {line}"))?;
                let edge = if le == "+Inf" {
                    f64::INFINITY
                } else {
                    le.parse::<f64>().map_err(|e| format!("bad le {le}: {e}"))?
                };
                let cum = value.parse::<u64>().map_err(|e| format!("bad bucket value: {e}"))?;
                hist.buckets.push((edge, cum));
            } else if family.ends_with("_sum") {
                hist.sum = value.parse::<f64>().map_err(|e| format!("bad sum: {e}"))?;
            } else {
                hist.count = value.parse::<u64>().map_err(|e| format!("bad count: {e}"))?;
            }
            continue;
        }
        match kinds.get(family).map(String::as_str) {
            Some("counter") => {
                let v = value.parse::<u64>().map_err(|e| format!("bad counter value: {e}"))?;
                snap.counters.insert(series.to_string(), v);
            }
            Some("gauge") => {
                let v = value.parse::<i64>().map_err(|e| format!("bad gauge value: {e}"))?;
                snap.gauges.insert(series.to_string(), v);
            }
            other => return Err(format!("sample {series} has unknown type {other:?}")),
        }
    }
    Ok(snap)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_roundtrip() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("t_total", "help");
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let same = reg.counter("t_total", "help");
        same.inc();
        assert_eq!(c.get(), 6);
        let g = reg.gauge("t_depth", "help");
        g.set(7);
        g.add(-2);
        assert_eq!(g.get(), 5);
        let snap = parse_text(&reg.render_text()).unwrap();
        assert_eq!(snap.counters["t_total"], 6);
        assert_eq!(snap.gauges["t_depth"], 5);
    }

    #[test]
    fn labeled_counters_render_per_series() {
        let reg = MetricsRegistry::new();
        reg.counter_with("t_link_total", &[("link", "0->1")], "help").add(3);
        reg.counter_with("t_link_total", &[("link", "1->0")], "help").add(9);
        let snap = parse_text(&reg.render_text()).unwrap();
        assert_eq!(snap.counters["t_link_total{link=\"0->1\"}"], 3);
        assert_eq!(snap.counter_family("t_link_total"), 12);
        assert_eq!(reg.names(), vec!["t_link_total".to_string()]);
    }

    #[test]
    fn histogram_buckets_are_cumulative_and_consistent() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("t_lat_seconds", "help", &PAPER_LATENCY_EDGES_SECS);
        for v in [0.1, 0.2, 0.3, 1.9, 5.0] {
            h.observe(v);
        }
        assert_eq!(h.count(), 5);
        let snap = parse_text(&reg.render_text()).unwrap();
        let hist = &snap.histograms["t_lat_seconds"];
        assert_eq!(hist.count, 5);
        assert_eq!(hist.buckets.last().unwrap(), &(f64::INFINITY, 5));
        // 0.2-edge bucket holds 0.1 and the boundary value 0.2.
        assert_eq!(hist.buckets[0], (0.2, 2));
        // Cumulative counts are monotone.
        assert!(hist.buckets.windows(2).all(|w| w[0].1 <= w[1].1));
        assert!((hist.sum - 7.5).abs() < 1e-9);
    }

    #[test]
    fn zero_observation_lands_in_the_first_bucket() {
        // Cache hits observe a literal 0.0-second latency; it must
        // land in the lowest finite bucket (edges are `< v`, so zero
        // never skips past an edge), count toward the total, and
        // leave the sum exact.
        let reg = MetricsRegistry::new();
        let h = reg.histogram("t_lat_seconds", "help", &PAPER_LATENCY_EDGES_SECS);
        h.observe(0.0);
        h.observe_duration(std::time::Duration::ZERO);
        h.observe(1.0);
        assert_eq!(h.count(), 3);
        assert_eq!(h.bucket_counts()[0], 2);
        let snap = parse_text(&reg.render_text()).unwrap();
        let hist = &snap.histograms["t_lat_seconds"];
        assert_eq!(hist.buckets[0], (0.2, 2));
        assert!((hist.sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn log2_edges_cover_powers() {
        assert_eq!(log2_edges(4), vec![1.0, 2.0, 4.0, 8.0]);
        let h = Histogram::new(log2_edges(3));
        h.observe(1.0);
        h.observe(2.0);
        h.observe(3.0);
        h.observe(100.0);
        assert_eq!(h.bucket_counts(), vec![1, 1, 1, 1]);
    }
}
