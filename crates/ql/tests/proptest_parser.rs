//! Property-based tests of the query-language parser.

use cgraph_ql::{parse, parse_program, Query};
use proptest::prelude::*;

/// Strategy producing a valid statement and its expected AST.
fn valid_statement() -> impl Strategy<Value = (String, Query)> {
    prop_oneof![
        (0u64..10_000, 0u32..20).prop_map(|(s, k)| {
            (format!("KHOP {s} {k}"), Query::Khop { source: s, k, list_levels: 0 })
        }),
        (0u64..10_000, 0u32..20, 1usize..8).prop_map(|(s, k, n)| {
            (format!("KHOP {s} {k} LIST {n}"), Query::Khop { source: s, k, list_levels: n })
        }),
        (0u64..10_000).prop_map(|s| (format!("BFS {s}"), Query::Bfs { source: s })),
        (0u64..10_000, 0u64..10_000, 0u32..20).prop_map(|(s, t, k)| {
            (format!("REACHABLE {s} {t} {k}"), Query::Reachable { source: s, target: t, k })
        }),
        (0u64..10_000).prop_map(|s| (format!("SSSP {s}"), Query::Sssp { source: s, bound: None })),
        (1u32..100).prop_map(|n| (format!("PAGERANK {n}"), Query::PageRank { iterations: n })),
        Just(("COMPONENTS".to_string(), Query::Components)),
        (0u32..50).prop_map(|k| (format!("KCORE {k}"), Query::KCore { k })),
        Just(("STATS".to_string(), Query::Stats)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn valid_statements_parse((text, expected) in valid_statement()) {
        prop_assert_eq!(parse(&text).unwrap(), expected);
    }

    #[test]
    fn case_and_whitespace_insensitive((text, expected) in valid_statement(),
                                       pad in 0usize..4) {
        let mangled = format!("{}{}{}", " ".repeat(pad), text.to_lowercase(), "\t".repeat(pad));
        let parsed = parse(&mangled).unwrap();
        prop_assert_eq!(parsed, expected);
    }

    #[test]
    fn trailing_comment_ignored((text, expected) in valid_statement(),
                                comment in "[ -~]{0,30}") {
        let with_comment = format!("{text} --{comment}");
        let parsed = parse(&with_comment).unwrap();
        prop_assert_eq!(parsed, expected);
    }

    #[test]
    fn programs_preserve_statement_order(stmts in prop::collection::vec(valid_statement(), 1..20)) {
        let text: String = stmts.iter().map(|(t, _)| format!("{t}\n")).collect();
        let parsed = parse_program(&text).unwrap();
        prop_assert_eq!(parsed.len(), stmts.len());
        for ((_, expected), got) in stmts.iter().zip(&parsed) {
            prop_assert_eq!(expected, got);
        }
    }

    #[test]
    fn garbage_never_panics(junk in "[ -~]{0,60}") {
        // Any printable input either parses or errors — no panics.
        let _ = parse(&junk);
        let _ = parse_program(&junk);
    }

    #[test]
    fn unknown_verbs_rejected(verb in "[A-Z]{3,10}", arg in 0u64..100) {
        prop_assume!(!matches!(
            verb.as_str(),
            "KHOP" | "BFS" | "REACHABLE" | "SSSP" | "PAGERANK" | "COMPONENTS" | "KCORE"
                | "STATS"
        ));
        let stmt = format!("{verb} {arg}");
        prop_assert!(parse(&stmt).is_err());
    }
}
