//! Line-oriented parser for the query language.
//!
//! Grammar is deliberately flat (one statement per line, tokens split
//! on whitespace, `--` comments); errors carry the line number and a
//! human-readable reason.

use crate::ast::Query;

/// A parse failure with location info.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub reason: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.reason)
    }
}

impl std::error::Error for ParseError {}

fn err(line: usize, reason: impl Into<String>) -> ParseError {
    ParseError { line, reason: reason.into() }
}

fn want<T: std::str::FromStr>(
    tok: Option<&&str>,
    line: usize,
    what: &str,
) -> Result<T, ParseError> {
    let tok = tok.ok_or_else(|| err(line, format!("missing {what}")))?;
    tok.parse().map_err(|_| err(line, format!("invalid {what}: {tok:?}")))
}

/// Parses one statement (line numbers start at `line` for messages).
pub fn parse_line(input: &str, line: usize) -> Result<Option<Query>, ParseError> {
    let stripped = match input.find("--") {
        Some(i) => &input[..i],
        None => input,
    };
    let tokens: Vec<&str> = stripped.split_whitespace().collect();
    if tokens.is_empty() {
        return Ok(None);
    }
    let mut it = tokens.iter();
    let verb = it.next().unwrap().to_ascii_uppercase();
    let q = match verb.as_str() {
        "KHOP" => {
            let source = want(it.next(), line, "source vertex")?;
            let k = want(it.next(), line, "hop count k")?;
            let list_levels = match it.next() {
                None => 0,
                Some(tok) if tok.eq_ignore_ascii_case("LIST") => {
                    want(it.next(), line, "LIST count")?
                }
                Some(tok) => return Err(err(line, format!("unexpected token {tok:?}"))),
            };
            Query::Khop { source, k, list_levels }
        }
        "BFS" => Query::Bfs { source: want(it.next(), line, "source vertex")? },
        "REACHABLE" => Query::Reachable {
            source: want(it.next(), line, "source vertex")?,
            target: want(it.next(), line, "target vertex")?,
            k: want(it.next(), line, "hop count k")?,
        },
        "SSSP" => {
            let source = want(it.next(), line, "source vertex")?;
            let bound = match it.next() {
                None => None,
                Some(tok) => Some(
                    tok.parse::<f32>().map_err(|_| err(line, format!("invalid bound {tok:?}")))?,
                ),
            };
            Query::Sssp { source, bound }
        }
        "PAGERANK" => Query::PageRank { iterations: want(it.next(), line, "iterations")? },
        "COMPONENTS" => Query::Components,
        "KCORE" => Query::KCore { k: want(it.next(), line, "coreness k")? },
        "STATS" => Query::Stats,
        other => return Err(err(line, format!("unknown command {other:?}"))),
    };
    if let Some(extra) = it.next() {
        return Err(err(line, format!("trailing token {extra:?}")));
    }
    Ok(Some(q))
}

/// Parses one statement from a single line.
///
/// ```
/// use cgraph_ql::{parse, Query};
/// assert_eq!(parse("KHOP 5 3").unwrap(),
///            Query::Khop { source: 5, k: 3, list_levels: 0 });
/// assert!(parse("NONSENSE").is_err());
/// ```
pub fn parse(input: &str) -> Result<Query, ParseError> {
    parse_line(input, 1)?.ok_or_else(|| err(1, "empty statement"))
}

/// Parses a multi-line program; blank lines and comments are skipped.
pub fn parse_program(input: &str) -> Result<Vec<Query>, ParseError> {
    let mut out = Vec::new();
    for (i, line) in input.lines().enumerate() {
        if let Some(q) = parse_line(line, i + 1)? {
            out.push(q);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_verb() {
        assert_eq!(parse("KHOP 5 3").unwrap(), Query::Khop { source: 5, k: 3, list_levels: 0 });
        assert_eq!(
            parse("khop 5 3 list 4").unwrap(),
            Query::Khop { source: 5, k: 3, list_levels: 4 }
        );
        assert_eq!(parse("BFS 9").unwrap(), Query::Bfs { source: 9 });
        assert_eq!(
            parse("REACHABLE 1 2 4").unwrap(),
            Query::Reachable { source: 1, target: 2, k: 4 }
        );
        assert_eq!(parse("SSSP 0").unwrap(), Query::Sssp { source: 0, bound: None });
        assert_eq!(parse("SSSP 0 2.5").unwrap(), Query::Sssp { source: 0, bound: Some(2.5) });
        assert_eq!(parse("PAGERANK 10").unwrap(), Query::PageRank { iterations: 10 });
        assert_eq!(parse("COMPONENTS").unwrap(), Query::Components);
        assert_eq!(parse("KCORE 3").unwrap(), Query::KCore { k: 3 });
        assert_eq!(parse("STATS").unwrap(), Query::Stats);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("FROBNICATE 1").is_err());
        assert!(parse("KHOP").is_err());
        assert!(parse("KHOP x 3").is_err());
        assert!(parse("KHOP 1 2 3").is_err()); // trailing token
        assert!(parse("BFS 1 2").is_err());
        assert!(parse("").is_err());
    }

    #[test]
    fn error_carries_line_number() {
        let program = "KHOP 1 2\nBOGUS\n";
        let e = parse_program(program).unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.to_string().contains("line 2"));
    }

    #[test]
    fn comments_and_blanks_skipped() {
        let program = "\n-- a comment\nKHOP 1 2 -- trailing comment\n\nSTATS\n";
        let qs = parse_program(program).unwrap();
        assert_eq!(qs.len(), 2);
        assert_eq!(qs[0], Query::Khop { source: 1, k: 2, list_levels: 0 });
        assert_eq!(qs[1], Query::Stats);
    }
}
