//! Query AST and result values.

use cgraph_graph::VertexId;
use std::time::Duration;

/// A parsed statement.
#[derive(Clone, Debug, PartialEq)]
pub enum Query {
    /// `KHOP src k [LIST n]` — k-hop reachability count (and
    /// optionally the first `n` per-level counts).
    Khop {
        /// Source vertex.
        source: VertexId,
        /// Hop budget.
        k: u32,
        /// How many per-level counts to return (0 = none).
        list_levels: usize,
    },
    /// `BFS src` — full reachability count.
    Bfs {
        /// Source vertex.
        source: VertexId,
    },
    /// `REACHABLE src dst k` — boolean bounded reachability.
    Reachable {
        /// Source vertex.
        source: VertexId,
        /// Target vertex.
        target: VertexId,
        /// Hop budget.
        k: u32,
    },
    /// `SSSP src [bound]` — shortest-path distance summary.
    Sssp {
        /// Source vertex.
        source: VertexId,
        /// Optional distance budget.
        bound: Option<f32>,
    },
    /// `PAGERANK iters` — top vertices by rank.
    PageRank {
        /// Iterations to run.
        iterations: u32,
    },
    /// `COMPONENTS` — weakly connected component count.
    Components,
    /// `KCORE k` — vertices with coreness ≥ k.
    KCore {
        /// Coreness threshold.
        k: u32,
    },
    /// `STATS` — graph summary.
    Stats,
}

impl Query {
    /// True when the statement is a local traversal that can share a
    /// bit-frontier batch with other such statements.
    pub fn is_traversal(&self) -> bool {
        matches!(self, Query::Khop { .. } | Query::Bfs { .. } | Query::Reachable { .. })
    }
}

/// The result of one executed statement.
#[derive(Clone, Debug, PartialEq)]
pub enum QueryOutput {
    /// Reachability count (KHOP/BFS), with optional per-level counts.
    Reach {
        /// Distinct vertices reached (source included).
        visited: u64,
        /// Per-level counts if requested.
        levels: Vec<u64>,
    },
    /// Boolean answer (REACHABLE).
    Bool(bool),
    /// SSSP summary.
    Distances {
        /// Vertices with a finite distance.
        reachable: u64,
        /// Largest finite distance.
        max_distance: f32,
    },
    /// Top-ranked vertices (PAGERANK): `(vertex, rank)` descending.
    Ranking(Vec<(VertexId, f64)>),
    /// Scalar count (COMPONENTS, KCORE).
    Count(u64),
    /// Graph summary: vertices, edges, max out-degree.
    Summary {
        /// Vertex count.
        vertices: u64,
        /// Edge count.
        edges: u64,
        /// Maximum out-degree.
        max_degree: u64,
    },
    /// The statement was rejected before execution (e.g. a vertex
    /// outside the graph).
    Error(String),
}

/// A statement result plus its response time within the wave.
#[derive(Clone, Debug)]
pub struct Answer {
    /// Position of the statement in the submitted program.
    pub index: usize,
    /// The parsed query (echoed for clients).
    pub query: Query,
    /// The computed output.
    pub output: QueryOutput,
    /// Response time measured from wave submission.
    pub response_time: Duration,
}

/// Renders an output as a single display line.
impl std::fmt::Display for QueryOutput {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueryOutput::Reach { visited, levels } if levels.is_empty() => {
                write!(f, "{visited} vertices reachable")
            }
            QueryOutput::Reach { visited, levels } => {
                write!(f, "{visited} vertices reachable; per-level {levels:?}")
            }
            QueryOutput::Bool(b) => write!(f, "{b}"),
            QueryOutput::Distances { reachable, max_distance } => {
                write!(f, "{reachable} reachable, max distance {max_distance}")
            }
            QueryOutput::Ranking(top) => {
                write!(f, "top: ")?;
                for (i, (v, r)) in top.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "v{v}={r:.3}")?;
                }
                Ok(())
            }
            QueryOutput::Count(c) => write!(f, "{c}"),
            QueryOutput::Summary { vertices, edges, max_degree } => {
                write!(f, "{vertices} vertices, {edges} edges, max out-degree {max_degree}")
            }
            QueryOutput::Error(msg) => write!(f, "error: {msg}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traversal_classification() {
        assert!(Query::Khop { source: 0, k: 3, list_levels: 0 }.is_traversal());
        assert!(Query::Bfs { source: 0 }.is_traversal());
        assert!(Query::Reachable { source: 0, target: 1, k: 2 }.is_traversal());
        assert!(!Query::PageRank { iterations: 5 }.is_traversal());
        assert!(!Query::Stats.is_traversal());
    }

    #[test]
    fn display_formats() {
        let r = QueryOutput::Reach { visited: 5, levels: vec![] };
        assert_eq!(r.to_string(), "5 vertices reachable");
        assert_eq!(QueryOutput::Bool(true).to_string(), "true");
        assert_eq!(QueryOutput::Count(3).to_string(), "3");
        let rk = QueryOutput::Ranking(vec![(7, 1.5)]);
        assert_eq!(rk.to_string(), "top: v7=1.500");
    }
}
