//! # cgraph-ql — a small query language over the C-Graph engine
//!
//! The paper frames C-Graph as the layer "between low-level database
//! and high-level algorithms" serving *multi-user* workloads: "several
//! users can send out query requests simultaneously" (§1–2). This
//! crate is that user-facing surface: a line-oriented query language,
//! a parser, and a session that plans each statement onto the right
//! engine path — batched bit-frontier traversals for reachability
//! queries, GAS for iterative computation, partition-centric programs
//! for the rest.
//!
//! ## Language
//!
//! ```text
//! KHOP <source> <k>            -- vertices within k hops
//! KHOP <source> <k> LIST <n>   -- ... and the first n per-level counts
//! BFS <source>                 -- full reachability
//! REACHABLE <src> <dst> <k>    -- can dst be reached within k hops?
//! SSSP <source> [<bound>]      -- shortest-path distances (optionally bounded)
//! PAGERANK <iters>             -- top-10 vertices by rank
//! COMPONENTS                   -- weakly connected component count
//! KCORE <k>                    -- number of vertices with coreness >= k
//! STATS                        -- graph summary
//! ```
//!
//! Multiple statements submitted together ([`Session::execute_batch`])
//! are treated as one concurrent wave: reachability queries are packed
//! into shared 64-lane batches exactly like the paper's concurrent
//! query workload.

#![warn(missing_docs)]

pub mod ast;
pub mod exec;
pub mod parser;

pub use ast::{Query, QueryOutput};
pub use exec::Session;
pub use parser::{parse, parse_program, ParseError};
