//! Planner + executor: maps statements onto engine paths.
//!
//! Traversal statements (KHOP/BFS/REACHABLE) submitted in the same
//! wave share 64-lane bit-frontier batches — the paper's concurrent
//! query path — while analytic statements (PAGERANK, COMPONENTS, …)
//! run on the GAS / partition-centric engines. Response times are
//! measured from wave submission, so a client sees exactly what a
//! multi-user deployment would.

use crate::ast::{Answer, Query, QueryOutput};
use cgraph_core::engine::DistributedEngine;
use cgraph_graph::bitmap::LANES;
use std::time::Instant;

/// A query session bound to one engine instance.
pub struct Session<'e> {
    engine: &'e DistributedEngine,
}

impl<'e> Session<'e> {
    /// Opens a session over `engine`.
    pub fn new(engine: &'e DistributedEngine) -> Self {
        Self { engine }
    }

    /// Executes a single statement.
    pub fn execute(&self, query: Query) -> Answer {
        self.execute_batch(vec![query]).pop().expect("one answer per query")
    }

    /// Every vertex operand a statement names, for validation.
    fn vertex_operands(q: &Query) -> Vec<u64> {
        match q {
            Query::Khop { source, .. } | Query::Bfs { source } | Query::Sssp { source, .. } => {
                vec![*source]
            }
            Query::Reachable { source, target, .. } => vec![*source, *target],
            _ => vec![],
        }
    }

    /// Executes a wave of statements submitted simultaneously.
    /// Traversals are packed into shared batches (in submission
    /// order); other statements run afterwards, in order. Statements
    /// naming vertices outside the graph are answered with
    /// [`QueryOutput::Error`] instead of being executed.
    pub fn execute_batch(&self, queries: Vec<Query>) -> Vec<Answer> {
        let submit = Instant::now();
        let mut answers: Vec<Option<Answer>> = (0..queries.len()).map(|_| None).collect();

        // Validate vertex operands up front.
        let n = self.engine.num_vertices();
        for (i, q) in queries.iter().enumerate() {
            if let Some(&bad) = Self::vertex_operands(q).iter().find(|&&v| v >= n) {
                answers[i] = Some(Answer {
                    index: i,
                    query: q.clone(),
                    output: QueryOutput::Error(format!(
                        "vertex {bad} does not exist (graph has {n} vertices)"
                    )),
                    response_time: submit.elapsed(),
                });
            }
        }

        // Plan: batch KHOP/BFS as shared bit-frontier lanes. REACHABLE
        // needs a per-vertex depth, which the counting batch does not
        // produce, so it runs in the analytic phase (hop-exact).
        let mut traversal_idx: Vec<usize> = Vec::new();
        for (i, q) in queries.iter().enumerate() {
            if matches!(q, Query::Khop { .. } | Query::Bfs { .. }) && answers[i].is_none() {
                traversal_idx.push(i);
            }
        }

        // Shared batched execution of traversals.
        for chunk in traversal_idx.chunks(LANES) {
            let sources: Vec<u64> = chunk
                .iter()
                .map(|&i| match &queries[i] {
                    Query::Khop { source, .. } | Query::Bfs { source } => *source,
                    _ => unreachable!("planner filtered traversals"),
                })
                .collect();
            let ks: Vec<u32> = chunk
                .iter()
                .map(|&i| match &queries[i] {
                    Query::Khop { k, .. } => *k,
                    Query::Bfs { .. } => u32::MAX,
                    _ => unreachable!(),
                })
                .collect();
            let br = self.engine.run_traversal_batch(&sources, &ks).unwrap();
            let elapsed = submit.elapsed();
            for (lane, &i) in chunk.iter().enumerate() {
                let visited = br.per_lane_visited[lane];
                let output = match &queries[i] {
                    Query::Khop { list_levels, .. } => QueryOutput::Reach {
                        visited,
                        levels: br
                            .per_level
                            .iter()
                            .take(*list_levels)
                            .map(|row| row[lane])
                            .collect(),
                    },
                    Query::Bfs { .. } => QueryOutput::Reach { visited, levels: vec![] },
                    _ => unreachable!(),
                };
                answers[i] = Some(Answer {
                    index: i,
                    query: queries[i].clone(),
                    output,
                    response_time: elapsed,
                });
            }
        }

        // Analytics, serially after the wave of traversals.
        for (i, q) in queries.iter().enumerate() {
            if answers[i].is_some() {
                continue;
            }
            let output = self.run_analytic(q);
            answers[i] = Some(Answer {
                index: i,
                query: q.clone(),
                output,
                response_time: submit.elapsed(),
            });
        }
        answers.into_iter().map(|a| a.expect("every query answered")).collect()
    }

    fn reachable(&self, source: u64, target: u64, k: u32) -> bool {
        if source == target {
            return true;
        }
        // Hop-exact membership, independent of edge weights: BFS
        // depths via the vertex-centric program, then compare to k.
        let depths = self.engine.run_vertex_program(&cgraph_analytics::VcBfs { source });
        depths[target as usize] <= k as u64
    }

    fn run_analytic(&self, q: &Query) -> QueryOutput {
        match q {
            Query::Reachable { source, target, k } => {
                QueryOutput::Bool(self.reachable(*source, *target, *k))
            }
            Query::Sssp { source, bound } => {
                let dist = match bound {
                    Some(b) => cgraph_analytics::sssp_within(self.engine, *source, *b),
                    None => cgraph_analytics::sssp(self.engine, *source),
                };
                let finite: Vec<f32> = dist.into_iter().filter(|d| d.is_finite()).collect();
                QueryOutput::Distances {
                    reachable: finite.len() as u64 - 1, // exclude the source
                    max_distance: finite.iter().copied().fold(0.0, f32::max),
                }
            }
            Query::PageRank { iterations } => {
                let ranks = cgraph_analytics::pagerank(self.engine, *iterations);
                let mut indexed: Vec<(u64, f64)> =
                    ranks.into_iter().enumerate().map(|(v, r)| (v as u64, r)).collect();
                indexed.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
                indexed.truncate(10);
                QueryOutput::Ranking(indexed)
            }
            Query::Components => {
                let labels = cgraph_analytics::weakly_connected_components(self.engine);
                let mut uniq = labels;
                uniq.sort_unstable();
                uniq.dedup();
                QueryOutput::Count(uniq.len() as u64)
            }
            Query::KCore { k } => {
                let core = cgraph_analytics::kcore_decomposition(self.engine);
                QueryOutput::Count(core.iter().filter(|&&c| c >= *k).count() as u64)
            }
            Query::Stats => {
                let max_degree = (0..self.engine.num_vertices())
                    .map(|v| {
                        let shard = &self.engine.shards()[self.engine.partition().owner(v)];
                        shard.global_out_degree(v) as u64
                    })
                    .max()
                    .unwrap_or(0);
                QueryOutput::Summary {
                    vertices: self.engine.num_vertices(),
                    edges: self.engine.shards().iter().map(|s| s.num_out_edges() as u64).sum(),
                    max_degree,
                }
            }
            _ => unreachable!("traversals handled in the batch phase"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse, parse_program};
    use cgraph_core::config::EngineConfig;
    use cgraph_graph::EdgeList;

    fn ring_engine(n: u64) -> DistributedEngine {
        let g: EdgeList = (0..n).map(|v| (v, (v + 1) % n)).collect();
        DistributedEngine::new(&g, EngineConfig::new(2))
    }

    #[test]
    fn khop_statement() {
        let e = ring_engine(20);
        let s = Session::new(&e);
        let a = s.execute(parse("KHOP 0 3").unwrap());
        assert_eq!(a.output, QueryOutput::Reach { visited: 4, levels: vec![] });
    }

    #[test]
    fn khop_with_levels() {
        let e = ring_engine(20);
        let s = Session::new(&e);
        let a = s.execute(parse("KHOP 0 3 LIST 3").unwrap());
        assert_eq!(a.output, QueryOutput::Reach { visited: 4, levels: vec![1, 1, 1] });
    }

    #[test]
    fn reachable_statement() {
        let e = ring_engine(10);
        let s = Session::new(&e);
        assert_eq!(s.execute(parse("REACHABLE 0 3 3").unwrap()).output, QueryOutput::Bool(true));
        assert_eq!(s.execute(parse("REACHABLE 0 4 3").unwrap()).output, QueryOutput::Bool(false));
        assert_eq!(s.execute(parse("REACHABLE 5 5 0").unwrap()).output, QueryOutput::Bool(true));
    }

    #[test]
    fn reachable_is_hop_bounded_not_weight_bounded() {
        // One heavy edge (weight 5.0): the target is 1 hop away even
        // though its weighted distance exceeds k.
        let mut g = EdgeList::new();
        g.push(cgraph_graph::Edge::weighted(0, 1, 5.0));
        let e = DistributedEngine::new(&g, EngineConfig::new(1));
        let s = Session::new(&e);
        assert_eq!(
            s.execute(parse("REACHABLE 0 1 1").unwrap()).output,
            QueryOutput::Bool(true),
            "k counts hops, not edge weight"
        );
    }

    #[test]
    fn out_of_range_vertex_rejected_cleanly() {
        let e = ring_engine(8);
        let s = Session::new(&e);
        let a = s.execute(parse("KHOP 99 2").unwrap());
        assert!(matches!(a.output, QueryOutput::Error(_)), "{:?}", a.output);
        // The rest of a wave still executes.
        let answers = s.execute_batch(
            parse_program(
                "BFS 99
KHOP 0 1
",
            )
            .unwrap(),
        );
        assert!(matches!(answers[0].output, QueryOutput::Error(_)));
        assert_eq!(answers[1].output, QueryOutput::Reach { visited: 2, levels: vec![] });
    }

    #[test]
    fn mixed_program_wave() {
        let e = ring_engine(16);
        let s = Session::new(&e);
        let program = "
            KHOP 0 2
            STATS
            BFS 3
            COMPONENTS
        ";
        let answers = s.execute_batch(parse_program(program).unwrap());
        assert_eq!(answers.len(), 4);
        assert_eq!(answers[0].output, QueryOutput::Reach { visited: 3, levels: vec![] });
        assert!(matches!(answers[1].output, QueryOutput::Summary { vertices: 16, .. }));
        assert_eq!(answers[2].output, QueryOutput::Reach { visited: 16, levels: vec![] });
        assert_eq!(answers[3].output, QueryOutput::Count(1));
        // Every answer keeps its submission index.
        for (i, a) in answers.iter().enumerate() {
            assert_eq!(a.index, i);
        }
    }

    #[test]
    fn large_wave_spans_batches() {
        let e = ring_engine(200);
        let s = Session::new(&e);
        let queries: Vec<Query> =
            (0..100).map(|i| parse(&format!("KHOP {i} 2")).unwrap()).collect();
        let answers = s.execute_batch(queries);
        assert!(answers
            .iter()
            .all(|a| a.output == QueryOutput::Reach { visited: 3, levels: vec![] }));
    }

    #[test]
    fn sssp_and_kcore_statements() {
        let e = ring_engine(8);
        let s = Session::new(&e);
        let a = s.execute(parse("SSSP 0").unwrap());
        assert_eq!(a.output, QueryOutput::Distances { reachable: 7, max_distance: 7.0 });
        // A directed ring is an undirected cycle: every vertex has
        // undirected degree 2, so coreness is exactly 2.
        let a = s.execute(parse("KCORE 2").unwrap());
        assert_eq!(a.output, QueryOutput::Count(8));
        let a = s.execute(parse("KCORE 3").unwrap());
        assert_eq!(a.output, QueryOutput::Count(0));
    }

    #[test]
    fn pagerank_statement_ranks_hub() {
        let mut g: EdgeList = (1..=5u64).map(|v| (v, 0u64)).collect();
        g.push_pair(0, 1);
        let e = DistributedEngine::new(&g, EngineConfig::new(2));
        let s = Session::new(&e);
        // Enough iterations to get past the star's rank oscillation.
        let a = s.execute(parse("PAGERANK 50").unwrap());
        match a.output {
            QueryOutput::Ranking(top) => assert_eq!(top[0].0, 0, "hub must rank first"),
            other => panic!("unexpected output {other:?}"),
        }
    }
}
