//! Property-based tests for the storage layer: CSR/CSC duality,
//! ingestion idempotence, edge-set losslessness under arbitrary
//! consolidation policies, and lane-matrix algebra.

use cgraph_graph::types::VertexRange;
use cgraph_graph::{
    Bitmap, BuildOptions, ConsolidationPolicy, Csc, Csr, Edge, EdgeList, EdgeSetGraph,
    GraphBuilder, LaneMatrix, ReindexMode,
};
use proptest::prelude::*;

fn graph_strategy(max_v: u64, max_e: usize) -> impl Strategy<Value = (u64, Vec<(u64, u64)>)> {
    (2..max_v).prop_flat_map(move |n| (Just(n), prop::collection::vec((0..n, 0..n), 0..max_e)))
}

fn to_list(n: u64, pairs: &[(u64, u64)]) -> EdgeList {
    let mut l = EdgeList::with_num_vertices(n);
    for &(s, t) in pairs {
        l.push_pair(s, t);
    }
    l.set_num_vertices(n);
    l
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn csr_csc_are_duals((n, pairs) in graph_strategy(100, 300)) {
        let l = to_list(n, &pairs);
        let csr = Csr::from_edges(n, l.edges());
        let csc = Csc::from_edges(n, l.edges());
        prop_assert_eq!(csr.num_edges(), csc.num_edges());
        // u -> v in CSR ⇔ u ∈ in_neighbors(v) in CSC (multiset equality
        // reduces to count equality per pair after dedup-free build).
        for u in 0..n {
            for &v in csr.neighbors(u) {
                prop_assert!(csc.in_neighbors(v).contains(&u));
            }
        }
        let out_sum: usize = (0..n).map(|v| csr.degree(v)).sum();
        let in_sum: usize = (0..n).map(|v| csc.in_degree(v)).sum();
        prop_assert_eq!(out_sum, in_sum);
    }

    #[test]
    fn builder_is_idempotent((n, pairs) in graph_strategy(80, 250)) {
        let l = to_list(n, &pairs);
        let once = {
            let mut b = GraphBuilder::new();
            b.add_edge_list(&l);
            b.build().edges
        };
        let twice = {
            let mut b = GraphBuilder::new();
            b.add_edge_list(&once);
            b.build().edges
        };
        prop_assert_eq!(once.edges(), twice.edges());
    }

    #[test]
    fn compact_reindex_preserves_structure((n, pairs) in graph_strategy(80, 200)) {
        let l = to_list(n, &pairs);
        let plain = {
            let mut b = GraphBuilder::new();
            b.add_edge_list(&l);
            b.build()
        };
        let compact = {
            let mut b = GraphBuilder::with_options(BuildOptions {
                reindex: ReindexMode::Compact,
                ..Default::default()
            });
            b.add_edge_list(&l);
            b.build()
        };
        prop_assert_eq!(plain.edges.len(), compact.edges.len());
        // Edge (u, v) exists pre-reindex ⇔ (map(u), map(v)) exists post.
        let csr = Csr::from_edges(compact.edges.num_vertices(), compact.edges.edges());
        for e in plain.edges.edges() {
            prop_assert!(csr.has_edge(compact.map_vertex(e.src), compact.map_vertex(e.dst)));
        }
    }

    #[test]
    fn edge_set_lossless_under_any_policy((n, pairs) in graph_strategy(80, 250),
                                          target in 1usize..200,
                                          min_edges in 0usize..32,
                                          horizontal: bool,
                                          vertical: bool) {
        let l = to_list(n, &pairs);
        let span = VertexRange::new(0, n);
        let policy = ConsolidationPolicy {
            target_edges_per_set: target,
            min_edges_per_set: min_edges,
            horizontal,
            vertical,
        };
        let blocked = EdgeSetGraph::build(l.edges(), span, span, policy);
        let flat = EdgeSetGraph::flat(l.edges(), span, span);
        for v in 0..n {
            prop_assert_eq!(blocked.out_neighbors(v), flat.out_neighbors(v));
        }
        // Every tile's edges stay inside its declared ranges.
        for s in blocked.sets() {
            for (src, ts, _) in s.iter_rows() {
                prop_assert!(s.row_range.contains(src));
                for &t in ts {
                    prop_assert!(s.col_range.contains(t));
                }
            }
        }
    }

    #[test]
    fn lane_matrix_or_new_is_exact(words in prop::collection::vec(any::<u64>(), 1..50),
                                    masks in prop::collection::vec(any::<u64>(), 1..50)) {
        let mut m = LaneMatrix::new(words.len());
        for (i, &w) in words.iter().enumerate() {
            m.set_word(i, w);
        }
        for (i, &mask) in masks.iter().enumerate() {
            let i = i % words.len();
            let before = m.word(i);
            let fresh = m.or_new(i, mask);
            prop_assert_eq!(fresh, mask & !before);
            prop_assert_eq!(m.word(i), before | mask);
        }
    }

    #[test]
    fn bitmap_union_subtract_algebra(a_bits in prop::collection::vec(0usize..256, 0..60),
                                      b_bits in prop::collection::vec(0usize..256, 0..60)) {
        let mut a = Bitmap::new(256);
        let mut b = Bitmap::new(256);
        for &i in &a_bits { a.set(i); }
        for &i in &b_bits { b.set(i); }
        let mut u = a.clone();
        u.union_with(&b);
        // u = a ∪ b
        for i in 0..256 {
            prop_assert_eq!(u.get(i), a.get(i) || b.get(i));
        }
        // (a ∪ b) \ b ⊆ a and disjoint from b
        let mut diff = u.clone();
        diff.subtract(&b);
        for i in 0..256 {
            prop_assert_eq!(diff.get(i), a.get(i) && !b.get(i));
        }
    }

    #[test]
    fn weights_survive_csr_roundtrip(edges in prop::collection::vec(
        (0u64..50, 0u64..50, 0.01f32..10.0), 1..120)) {
        let list: Vec<Edge> =
            edges.iter().map(|&(s, t, w)| Edge::weighted(s, t, w)).collect();
        let csr = Csr::from_edges(50, &list);
        // Total weight is conserved.
        let before: f64 = list.iter().map(|e| e.weight as f64).sum();
        let after: f64 = (0..50u64)
            .flat_map(|v| csr.weights(v).iter().map(|&w| w as f64).collect::<Vec<_>>())
            .sum();
        prop_assert!((before - after).abs() < 1e-3);
        // Each (src, dst, w) triple is present.
        for e in &list {
            let pairs: Vec<(u64, f32)> = csr.neighbors_weighted(e.src).collect();
            prop_assert!(pairs.contains(&(e.dst, e.weight)));
        }
    }
}
