//! The multi-modal adjacency: CSR (out-edges) + CSC (in-edges) built
//! over the same edge set (§3.2, "multi-modal graph representations …
//! to accommodate different access patterns").
//!
//! Traversal-style algorithms (k-hop, BFS) read the CSR; gather-style
//! iterative computations (PageRank) read the CSC so every edge of a
//! vertex is local to the reader ("our implementation does not generate
//! additional traffic in the gather phase since all edges of a vertex
//! are local", §3.4).

use crate::csc::Csc;
use crate::csr::Csr;
use crate::edge::Edge;
use crate::types::{VertexId, Weight};

/// Both directed views of one graph.
#[derive(Clone, Debug, Default)]
pub struct Adjacency {
    out: Csr,
    inn: Csc,
}

impl Adjacency {
    /// Builds both views from an edge slice.
    pub fn from_edges(num_vertices: u64, edges: &[Edge]) -> Self {
        Self {
            out: Csr::from_edges(num_vertices, edges),
            inn: Csc::from_edges(num_vertices, edges),
        }
    }

    /// Builds only the out-edge (CSR) view; the in-edge view is left
    /// empty. Traversal-only deployments use this to halve memory — the
    /// paper stores in-edges only "when running graph algorithms such
    /// as PageRank" (§3.1).
    pub fn out_only(num_vertices: u64, edges: &[Edge]) -> Self {
        Self { out: Csr::from_edges(num_vertices, edges), inn: Csc::default() }
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> u64 {
        self.out.num_vertices()
    }

    /// Number of (directed) edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.out.num_edges()
    }

    /// True when the in-edge view was built.
    #[inline]
    pub fn has_in_view(&self) -> bool {
        self.inn.num_vertices() != 0 || self.out.num_vertices() == 0
    }

    /// The out-edge (CSR) view.
    #[inline]
    pub fn out(&self) -> &Csr {
        &self.out
    }

    /// The in-edge (CSC) view; empty if built with [`Adjacency::out_only`].
    #[inline]
    pub fn inn(&self) -> &Csc {
        &self.inn
    }

    /// Out-degree of `v`.
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        self.out.degree(v)
    }

    /// Out-neighbours of `v`.
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        self.out.neighbors(v)
    }

    /// Out-neighbour/weight pairs of `v`.
    #[inline]
    pub fn neighbors_weighted(&self, v: VertexId) -> impl Iterator<Item = (VertexId, Weight)> + '_ {
        self.out.neighbors_weighted(v)
    }

    /// Approximate heap footprint in bytes.
    pub fn size_bytes(&self) -> usize {
        self.out.size_bytes() + self.inn.size_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edge::EdgeList;

    #[test]
    fn views_agree_on_edge_count() {
        let l: EdgeList = [(0u64, 1u64), (1, 2), (2, 0)].into_iter().collect();
        let a = Adjacency::from_edges(l.num_vertices(), l.edges());
        assert_eq!(a.out().num_edges(), a.inn().num_edges());
        assert_eq!(a.neighbors(0), &[1]);
        assert_eq!(a.inn().in_neighbors(0), &[2]);
        assert!(a.has_in_view());
    }

    #[test]
    fn out_only_skips_csc() {
        let l: EdgeList = [(0u64, 1u64)].into_iter().collect();
        let a = Adjacency::out_only(l.num_vertices(), l.edges());
        assert!(!a.has_in_view());
        assert_eq!(a.num_edges(), 1);
    }

    #[test]
    fn every_out_edge_is_an_in_edge() {
        let l: EdgeList = [(0u64, 1u64), (0, 2), (3, 1), (2, 3), (1, 0)].into_iter().collect();
        let a = Adjacency::from_edges(l.num_vertices(), l.edges());
        for v in 0..a.num_vertices() {
            for &t in a.neighbors(v) {
                assert!(a.inn().in_neighbors(t).contains(&v), "{v}->{t} missing from CSC");
            }
        }
    }
}
