//! Compressed sparse column (CSC) — the in-edge view.
//!
//! "CSR … is inefficient when accessing the incoming edges of a vertex.
//! To address this inefficiency, we choose to store the incoming edges
//! in compressed sparse column (CSC) format" (§3.2). Internally a CSC
//! over `G` is a CSR over the transpose of `G`; we wrap rather than
//! alias so call sites read as in-edge accesses.

use crate::csr::Csr;
use crate::edge::Edge;
use crate::types::{VertexId, Weight};

/// A CSC adjacency structure: per-vertex *incoming* edges.
#[derive(Clone, Debug, Default)]
pub struct Csc {
    transpose: Csr,
}

impl Csc {
    /// Builds a CSC from the same edge slice a [`Csr`] is built from
    /// (edges are interpreted as `src -> dst`; we index by `dst`).
    pub fn from_edges(num_vertices: u64, edges: &[Edge]) -> Self {
        let reversed: Vec<Edge> = edges.iter().map(|e| e.reversed()).collect();
        Self { transpose: Csr::from_edges(num_vertices, &reversed) }
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> u64 {
        self.transpose.num_vertices()
    }

    /// Number of edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.transpose.num_edges()
    }

    /// In-degree of `v`.
    #[inline]
    pub fn in_degree(&self, v: VertexId) -> usize {
        self.transpose.degree(v)
    }

    /// Sources of edges pointing at `v` (sorted ascending).
    #[inline]
    pub fn in_neighbors(&self, v: VertexId) -> &[VertexId] {
        self.transpose.neighbors(v)
    }

    /// Weights aligned with [`Csc::in_neighbors`].
    #[inline]
    pub fn in_weights(&self, v: VertexId) -> &[Weight] {
        self.transpose.weights(v)
    }

    /// (source, weight) pairs of edges into `v`.
    #[inline]
    pub fn in_neighbors_weighted(
        &self,
        v: VertexId,
    ) -> impl Iterator<Item = (VertexId, Weight)> + '_ {
        self.transpose.neighbors_weighted(v)
    }

    /// Approximate heap footprint in bytes.
    pub fn size_bytes(&self) -> usize {
        self.transpose.size_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edge::EdgeList;

    #[test]
    fn in_neighbors_match_reverse_edges() {
        let l: EdgeList = [(0u64, 2u64), (1, 2), (3, 2), (2, 0)].into_iter().collect();
        let c = Csc::from_edges(l.num_vertices(), l.edges());
        assert_eq!(c.in_neighbors(2), &[0, 1, 3]);
        assert_eq!(c.in_neighbors(0), &[2]);
        assert_eq!(c.in_degree(1), 0);
        assert_eq!(c.num_edges(), 4);
    }

    #[test]
    fn weights_follow_sources() {
        let edges = vec![Edge::weighted(5, 0, 0.5), Edge::weighted(3, 0, 0.25)];
        let c = Csc::from_edges(6, &edges);
        let pairs: Vec<_> = c.in_neighbors_weighted(0).collect();
        assert_eq!(pairs, vec![(3, 0.25), (5, 0.5)]);
    }

    #[test]
    fn empty() {
        let c = Csc::from_edges(0, &[]);
        assert_eq!(c.num_vertices(), 0);
    }
}
