//! On-disk codecs of the durability plane: checksummed epoch snapshots
//! and the update write-ahead log (WAL).
//!
//! This module is pure bytes — no filesystem access, no threads — so
//! the formats can be property-tested in isolation and reused by any
//! I/O layer. The durability plane in `cgraph-core` owns the files;
//! this module owns what is *in* them.
//!
//! # Frame format
//!
//! Both the snapshot and the WAL are sequences of **frames**:
//!
//! ```text
//! [len: u32 LE] [crc32: u32 LE] [payload: len bytes]
//! ```
//!
//! `crc32` is the IEEE CRC-32 of the payload. A reader stops at the
//! first frame whose length runs past the buffer or whose checksum
//! fails — a torn tail is detected, never parsed. That single rule is
//! what makes `kill -9` mid-append safe: the prefix of intact frames
//! is exactly the committed history.
//!
//! # Snapshot layout
//!
//! One snapshot file is a header frame, one frame per partition, and a
//! terminal `END` frame (so truncation *between* frames is detectable
//! too — a snapshot without its END frame is torn and rejected whole):
//!
//! ```text
//! frame 0   : HEADER  magic, version, epoch, last WAL seq covered,
//!             num_vertices, partition ranges
//! frame 1..p: PARTITION  base out-adjacency rows + delta-overlay rows
//! frame p+1 : END
//! ```
//!
//! # WAL records
//!
//! Each WAL frame carries one record: `Updates { seq, updates }`
//! (buffered edge updates, appended *before* they are applied) or
//! `Commit { seq, epoch }` (an epoch-commit fence). Sequence numbers
//! are strictly increasing, so replay is idempotent — a record at or
//! below a snapshot's covered sequence number is skipped.

use crate::delta::EdgeUpdate;
use crate::types::{VertexId, Weight};
use std::sync::atomic::{AtomicU64, Ordering};

/// Current snapshot format version (bumped on layout changes).
pub const SNAPSHOT_VERSION: u32 = 1;

/// Magic prefix of a snapshot header frame.
pub const SNAPSHOT_MAGIC: [u8; 8] = *b"CGSNAP01";

const TAG_HEADER: u8 = 1;
const TAG_PARTITION: u8 = 2;
const TAG_END: u8 = 3;

const TAG_WAL_UPDATES: u8 = 1;
const TAG_WAL_COMMIT: u8 = 2;

/// Why a snapshot or WAL buffer failed to decode.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CodecError {
    /// A frame's checksum failed or its length ran past the buffer —
    /// the data is torn or corrupt at the reported byte offset.
    Corrupt(usize),
    /// The payload decoded but violated the format (bad magic, version
    /// skew, missing END frame, truncated field).
    Malformed(String),
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Corrupt(at) => write!(f, "checksum failure or torn frame at byte {at}"),
            CodecError::Malformed(what) => write!(f, "malformed durability data: {what}"),
        }
    }
}

impl std::error::Error for CodecError {}

// ---------------------------------------------------------------------
// CRC-32 (IEEE), table-driven — no external dependencies.
// ---------------------------------------------------------------------

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC32_TABLE: [u32; 256] = crc32_table();

/// IEEE CRC-32 of `bytes` (the checksum every frame carries).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC32_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

// ---------------------------------------------------------------------
// Frames
// ---------------------------------------------------------------------

/// Appends one `[len][crc][payload]` frame to `out`.
pub fn write_frame(out: &mut Vec<u8>, payload: &[u8]) {
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
}

/// Reads the frame starting at `*pos`, advancing `*pos` past it.
/// Returns `None` on a torn tail (short header, length past the
/// buffer, or checksum mismatch) — the caller must not read further.
pub fn read_frame<'a>(data: &'a [u8], pos: &mut usize) -> Option<&'a [u8]> {
    let start = *pos;
    if data.len() - start < 8 {
        return None;
    }
    let len = u32::from_le_bytes(data[start..start + 4].try_into().unwrap()) as usize;
    let crc = u32::from_le_bytes(data[start + 4..start + 8].try_into().unwrap());
    let body_start = start + 8;
    if data.len() - body_start < len {
        return None;
    }
    let payload = &data[body_start..body_start + len];
    if crc32(payload) != crc {
        return None;
    }
    *pos = body_start + len;
    Some(payload)
}

// Little-endian primitive helpers over a cursor.
struct Reader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(data: &'a [u8]) -> Self {
        Self { data, pos: 0 }
    }

    fn bytes(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.data.len() - self.pos < n {
            return Err(CodecError::Malformed(format!(
                "field of {n} bytes runs past payload end ({} of {})",
                self.pos,
                self.data.len()
            )));
        }
        let s = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.bytes(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, CodecError> {
        Ok(u32::from_le_bytes(self.bytes(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, CodecError> {
        Ok(u64::from_le_bytes(self.bytes(8)?.try_into().unwrap()))
    }

    fn f32(&mut self) -> Result<f32, CodecError> {
        Ok(f32::from_bits(self.u32()?))
    }

    fn done(&self) -> bool {
        self.pos == self.data.len()
    }
}

// ---------------------------------------------------------------------
// Snapshot codec
// ---------------------------------------------------------------------

/// Weighted adjacency rows as persisted: `(source, sorted
/// [(dst, weight)])`, non-empty rows only, sources ascending.
pub type WeightedRows = Vec<(VertexId, Vec<(VertexId, Weight)>)>;

/// One partition's persisted state: the base out-adjacency (only
/// non-empty rows, sorted destinations with weights) plus the live
/// delta-overlay rows (inserted edges and deleted destinations).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct PartitionData {
    /// Base out-edges: `(source, sorted [(dst, weight)])`, non-empty
    /// rows only, sources ascending.
    pub base_rows: WeightedRows,
    /// Delta-overlay insert rows: `(source, sorted [(dst, weight)])`.
    pub delta_inserts: WeightedRows,
    /// Delta-overlay delete rows: `(source, sorted [dst])`.
    pub delta_deletes: Vec<(VertexId, Vec<VertexId>)>,
}

/// A fully decoded epoch snapshot.
#[derive(Clone, Debug, PartialEq)]
pub struct SnapshotData {
    /// The committed graph epoch this snapshot captures.
    pub epoch: u64,
    /// Highest WAL sequence number whose effects the snapshot already
    /// contains; replay skips records at or below it.
    pub last_seq: u64,
    /// Total vertices in the graph.
    pub num_vertices: u64,
    /// Contiguous `[start, end)` vertex range of each partition.
    pub ranges: Vec<(u64, u64)>,
    /// Per-partition base + delta state, one entry per range.
    pub partitions: Vec<PartitionData>,
}

fn encode_weighted_rows(out: &mut Vec<u8>, rows: &[(VertexId, Vec<(VertexId, Weight)>)]) {
    out.extend_from_slice(&(rows.len() as u64).to_le_bytes());
    for (src, edges) in rows {
        out.extend_from_slice(&src.to_le_bytes());
        out.extend_from_slice(&(edges.len() as u32).to_le_bytes());
        for (dst, w) in edges {
            out.extend_from_slice(&dst.to_le_bytes());
            out.extend_from_slice(&w.to_bits().to_le_bytes());
        }
    }
}

fn decode_weighted_rows(r: &mut Reader<'_>) -> Result<WeightedRows, CodecError> {
    let n = r.u64()? as usize;
    let mut rows = Vec::with_capacity(n.min(1 << 20));
    for _ in 0..n {
        let src = r.u64()?;
        let deg = r.u32()? as usize;
        let mut edges = Vec::with_capacity(deg.min(1 << 20));
        for _ in 0..deg {
            let dst = r.u64()?;
            let w = r.f32()?;
            edges.push((dst, w));
        }
        rows.push((src, edges));
    }
    Ok(rows)
}

/// Encodes `snap` into its on-disk byte representation (header frame,
/// partition frames, END frame).
pub fn encode_snapshot(snap: &SnapshotData) -> Vec<u8> {
    let mut out = Vec::new();
    let mut header = Vec::new();
    header.push(TAG_HEADER);
    header.extend_from_slice(&SNAPSHOT_MAGIC);
    header.extend_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
    header.extend_from_slice(&snap.epoch.to_le_bytes());
    header.extend_from_slice(&snap.last_seq.to_le_bytes());
    header.extend_from_slice(&snap.num_vertices.to_le_bytes());
    header.extend_from_slice(&(snap.ranges.len() as u32).to_le_bytes());
    for &(start, end) in &snap.ranges {
        header.extend_from_slice(&start.to_le_bytes());
        header.extend_from_slice(&end.to_le_bytes());
    }
    write_frame(&mut out, &header);

    for (i, part) in snap.partitions.iter().enumerate() {
        let mut body = Vec::new();
        body.push(TAG_PARTITION);
        body.extend_from_slice(&(i as u32).to_le_bytes());
        encode_weighted_rows(&mut body, &part.base_rows);
        encode_weighted_rows(&mut body, &part.delta_inserts);
        body.extend_from_slice(&(part.delta_deletes.len() as u64).to_le_bytes());
        for (src, dels) in &part.delta_deletes {
            body.extend_from_slice(&src.to_le_bytes());
            body.extend_from_slice(&(dels.len() as u32).to_le_bytes());
            for d in dels {
                body.extend_from_slice(&d.to_le_bytes());
            }
        }
        write_frame(&mut out, &body);
    }
    write_frame(&mut out, &[TAG_END]);
    out
}

/// Decodes and fully validates a snapshot buffer. Every frame must
/// checksum, the header must carry the current magic/version, every
/// declared partition must be present, and the END frame must close
/// the file — anything less is an error, so a torn or bit-flipped
/// snapshot is rejected whole and recovery falls back to an older one.
pub fn decode_snapshot(data: &[u8]) -> Result<SnapshotData, CodecError> {
    let mut pos = 0usize;
    let header = read_frame(data, &mut pos).ok_or(CodecError::Corrupt(0))?;
    let mut r = Reader::new(header);
    if r.u8()? != TAG_HEADER {
        return Err(CodecError::Malformed("first frame is not a snapshot header".into()));
    }
    if r.bytes(8)? != SNAPSHOT_MAGIC {
        return Err(CodecError::Malformed("bad snapshot magic".into()));
    }
    let version = r.u32()?;
    if version != SNAPSHOT_VERSION {
        return Err(CodecError::Malformed(format!(
            "snapshot version {version} (this build reads {SNAPSHOT_VERSION})"
        )));
    }
    let epoch = r.u64()?;
    let last_seq = r.u64()?;
    let num_vertices = r.u64()?;
    let p = r.u32()? as usize;
    let mut ranges = Vec::with_capacity(p);
    for _ in 0..p {
        let start = r.u64()?;
        let end = r.u64()?;
        ranges.push((start, end));
    }
    if !r.done() {
        return Err(CodecError::Malformed("trailing bytes in snapshot header".into()));
    }

    let mut partitions: Vec<PartitionData> = Vec::with_capacity(p);
    loop {
        let at = pos;
        let frame = read_frame(data, &mut pos).ok_or(CodecError::Corrupt(at))?;
        let mut r = Reader::new(frame);
        match r.u8()? {
            TAG_PARTITION => {
                let id = r.u32()? as usize;
                if id != partitions.len() {
                    return Err(CodecError::Malformed(format!(
                        "partition frame {id} out of order (expected {})",
                        partitions.len()
                    )));
                }
                let base_rows = decode_weighted_rows(&mut r)?;
                let delta_inserts = decode_weighted_rows(&mut r)?;
                let nd = r.u64()? as usize;
                let mut delta_deletes = Vec::with_capacity(nd.min(1 << 20));
                for _ in 0..nd {
                    let src = r.u64()?;
                    let k = r.u32()? as usize;
                    let mut dels = Vec::with_capacity(k.min(1 << 20));
                    for _ in 0..k {
                        dels.push(r.u64()?);
                    }
                    delta_deletes.push((src, dels));
                }
                if !r.done() {
                    return Err(CodecError::Malformed("trailing bytes in partition frame".into()));
                }
                partitions.push(PartitionData { base_rows, delta_inserts, delta_deletes });
            }
            TAG_END => {
                if partitions.len() != p {
                    return Err(CodecError::Malformed(format!(
                        "snapshot ended after {} of {p} partitions",
                        partitions.len()
                    )));
                }
                return Ok(SnapshotData { epoch, last_seq, num_vertices, ranges, partitions });
            }
            other => {
                return Err(CodecError::Malformed(format!("unknown snapshot frame tag {other}")))
            }
        }
    }
}

// ---------------------------------------------------------------------
// WAL codec
// ---------------------------------------------------------------------

/// One write-ahead-log record.
#[derive(Clone, Debug, PartialEq)]
pub enum WalRecord {
    /// Edge updates buffered via `apply_updates`, logged *before* they
    /// are applied anywhere.
    Updates {
        /// Strictly increasing record sequence number.
        seq: u64,
        /// The buffered updates, in submission order.
        updates: Vec<EdgeUpdate>,
    },
    /// An epoch-commit fence: every `Updates` record logged before it
    /// (and after the previous `Commit`) folds into `epoch`.
    Commit {
        /// Strictly increasing record sequence number.
        seq: u64,
        /// The graph epoch this commit publishes.
        epoch: u64,
    },
}

impl WalRecord {
    /// The record's sequence number.
    pub fn seq(&self) -> u64 {
        match *self {
            WalRecord::Updates { seq, .. } | WalRecord::Commit { seq, .. } => seq,
        }
    }
}

/// Encodes one WAL record as a single frame.
pub fn encode_wal_record(rec: &WalRecord) -> Vec<u8> {
    let mut body = Vec::new();
    match rec {
        WalRecord::Updates { seq, updates } => {
            body.push(TAG_WAL_UPDATES);
            body.extend_from_slice(&seq.to_le_bytes());
            body.extend_from_slice(&(updates.len() as u32).to_le_bytes());
            for u in updates {
                match *u {
                    EdgeUpdate::Insert { src, dst, weight } => {
                        body.push(1);
                        body.extend_from_slice(&src.to_le_bytes());
                        body.extend_from_slice(&dst.to_le_bytes());
                        body.extend_from_slice(&weight.to_bits().to_le_bytes());
                    }
                    EdgeUpdate::Delete { src, dst } => {
                        body.push(0);
                        body.extend_from_slice(&src.to_le_bytes());
                        body.extend_from_slice(&dst.to_le_bytes());
                        body.extend_from_slice(&0u32.to_le_bytes());
                    }
                }
            }
        }
        WalRecord::Commit { seq, epoch } => {
            body.push(TAG_WAL_COMMIT);
            body.extend_from_slice(&seq.to_le_bytes());
            body.extend_from_slice(&epoch.to_le_bytes());
        }
    }
    let mut out = Vec::new();
    write_frame(&mut out, &body);
    out
}

fn decode_wal_payload(payload: &[u8]) -> Result<WalRecord, CodecError> {
    let mut r = Reader::new(payload);
    let rec = match r.u8()? {
        TAG_WAL_UPDATES => {
            let seq = r.u64()?;
            let n = r.u32()? as usize;
            let mut updates = Vec::with_capacity(n.min(1 << 20));
            for _ in 0..n {
                let kind = r.u8()?;
                let src = r.u64()?;
                let dst = r.u64()?;
                let w = r.f32()?;
                updates.push(if kind == 1 {
                    EdgeUpdate::Insert { src, dst, weight: w }
                } else {
                    EdgeUpdate::Delete { src, dst }
                });
            }
            WalRecord::Updates { seq, updates }
        }
        TAG_WAL_COMMIT => {
            let seq = r.u64()?;
            let epoch = r.u64()?;
            WalRecord::Commit { seq, epoch }
        }
        other => return Err(CodecError::Malformed(format!("unknown WAL record tag {other}"))),
    };
    if !r.done() {
        return Err(CodecError::Malformed("trailing bytes in WAL record".into()));
    }
    Ok(rec)
}

/// Decodes the valid prefix of a WAL buffer: the records of every
/// intact frame plus the byte length of that prefix. Reading stops at
/// the first torn or checksum-failing frame — a recovering process
/// truncates the log to `valid_len` before appending again, so a torn
/// tail is discarded exactly once and never parsed.
pub fn decode_wal(data: &[u8]) -> (Vec<WalRecord>, usize) {
    let mut records = Vec::new();
    let mut pos = 0usize;
    loop {
        let before = pos;
        let Some(payload) = read_frame(data, &mut pos) else {
            return (records, before);
        };
        match decode_wal_payload(payload) {
            Ok(rec) => {
                // Sequence numbers must be strictly increasing; a
                // regression means the tail predates a truncation we
                // must not replay.
                if records.last().is_some_and(|last: &WalRecord| rec.seq() <= last.seq()) {
                    return (records, before);
                }
                records.push(rec);
            }
            Err(_) => return (records, before),
        }
    }
}

// ---------------------------------------------------------------------
// Deterministic disk-fault injection
// ---------------------------------------------------------------------

/// Deterministic corruption of durability writes: torn writes (a
/// suffix of the buffer is lost), short writes (a few tail bytes are
/// lost), bit flips (one bit of the buffer is inverted), and lost
/// renames (a finished temp file never reaches its final name).
///
/// Like the chaos plane's message faults, every decision is a pure
/// `splitmix64` hash of `(seed, op_counter)` — no shared RNG stream —
/// so a fault schedule replays identically regardless of thread
/// timing, as long as the durability operations themselves are issued
/// in a deterministic order.
#[derive(Debug)]
pub struct DiskFaults {
    seed: u64,
    torn_prob: f64,
    short_prob: f64,
    flip_prob: f64,
    rename_lost_prob: f64,
    ops: AtomicU64,
}

impl DiskFaults {
    /// A fault injector with the given seed and per-operation
    /// probabilities (each in `0..=1`).
    pub fn new(seed: u64, torn: f64, short: f64, flip: f64, rename_lost: f64) -> Self {
        Self {
            seed,
            torn_prob: torn,
            short_prob: short,
            flip_prob: flip,
            rename_lost_prob: rename_lost,
            ops: AtomicU64::new(0),
        }
    }

    /// True when no disk fault can ever fire.
    pub fn is_empty(&self) -> bool {
        self.torn_prob == 0.0
            && self.short_prob == 0.0
            && self.flip_prob == 0.0
            && self.rename_lost_prob == 0.0
    }

    /// Next uniform-in-`[0,1)` decision (plus a raw hash for derived
    /// choices like offsets).
    fn roll(&self) -> (f64, u64) {
        let n = self.ops.fetch_add(1, Ordering::Relaxed);
        let h = splitmix64(self.seed.wrapping_add(n.wrapping_mul(0x9E37_79B9_7F4A_7C15)));
        ((h >> 11) as f64 / (1u64 << 53) as f64, h)
    }

    /// Applies at most one write fault to `bytes` (torn beats short
    /// beats flip). Returns `true` when the buffer was mangled — the
    /// caller should treat the write as "landed corrupted", exactly
    /// what a crash mid-write leaves on disk.
    pub fn mangle(&self, bytes: &mut Vec<u8>) -> bool {
        if bytes.is_empty() {
            return false;
        }
        let (p_torn, h_torn) = self.roll();
        if p_torn < self.torn_prob {
            // Torn write: cut at a deterministic offset strictly inside
            // the buffer, so at least one byte is written and at least
            // one is lost.
            let keep = 1 + (h_torn as usize % bytes.len().max(2).saturating_sub(1));
            bytes.truncate(keep.min(bytes.len() - 1).max(1));
            return true;
        }
        let (p_short, h_short) = self.roll();
        if p_short < self.short_prob {
            // Short write: the kernel accepted fewer bytes than asked —
            // a small suffix (1..=8 bytes) vanishes.
            let lost = 1 + (h_short as usize % 8).min(bytes.len() - 1);
            let keep = bytes.len() - lost;
            bytes.truncate(keep.max(1));
            return true;
        }
        let (p_flip, h_flip) = self.roll();
        if p_flip < self.flip_prob {
            let bit = h_flip as usize % (bytes.len() * 8);
            bytes[bit / 8] ^= 1 << (bit % 8);
            return true;
        }
        false
    }

    /// True when the atomic rename publishing a finished temp file is
    /// lost (the classic crash window between `write` and `rename`).
    pub fn drop_rename(&self) -> bool {
        let (p, _) = self.roll();
        p < self.rename_lost_prob
    }
}

/// The splitmix64 finalizer (same mixer the chaos plane uses).
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_snapshot() -> SnapshotData {
        SnapshotData {
            epoch: 7,
            last_seq: 41,
            num_vertices: 10,
            ranges: vec![(0, 4), (4, 10)],
            partitions: vec![
                PartitionData {
                    base_rows: vec![(0, vec![(1, 1.0), (2, 0.5)]), (3, vec![(9, 2.0)])],
                    delta_inserts: vec![(1, vec![(7, 1.0)])],
                    delta_deletes: vec![(0, vec![2])],
                },
                PartitionData {
                    base_rows: vec![(4, vec![(0, 1.0)])],
                    delta_inserts: vec![],
                    delta_deletes: vec![(9, vec![0, 3])],
                },
            ],
        }
    }

    #[test]
    fn crc32_matches_known_vectors() {
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn snapshot_round_trips() {
        let snap = sample_snapshot();
        let bytes = encode_snapshot(&snap);
        assert_eq!(decode_snapshot(&bytes).unwrap(), snap);
    }

    #[test]
    fn snapshot_rejects_any_truncation() {
        let bytes = encode_snapshot(&sample_snapshot());
        for cut in 0..bytes.len() {
            assert!(
                decode_snapshot(&bytes[..cut]).is_err(),
                "truncation to {cut} of {} bytes must not decode",
                bytes.len()
            );
        }
    }

    #[test]
    fn snapshot_rejects_every_single_bit_flip() {
        let bytes = encode_snapshot(&sample_snapshot());
        let snap = decode_snapshot(&bytes).unwrap();
        for bit in 0..bytes.len() * 8 {
            let mut b = bytes.clone();
            b[bit / 8] ^= 1 << (bit % 8);
            // A flip must either fail decode or (never) silently change
            // the content; equality with the original is the only
            // acceptable Ok outcome and CRC makes it unreachable.
            match decode_snapshot(&b) {
                Err(_) => {}
                Ok(d) => assert_eq!(d, snap, "bit {bit} silently changed the snapshot"),
            }
        }
    }

    #[test]
    fn wal_records_round_trip_and_tail_is_cut() {
        let records = vec![
            WalRecord::Updates {
                seq: 1,
                updates: vec![EdgeUpdate::insert(0, 1), EdgeUpdate::delete(2, 3)],
            },
            WalRecord::Commit { seq: 2, epoch: 1 },
            WalRecord::Updates { seq: 3, updates: vec![EdgeUpdate::insert_weighted(4, 5, 2.5)] },
        ];
        let mut log = Vec::new();
        for r in &records {
            log.extend_from_slice(&encode_wal_record(r));
        }
        let (decoded, valid) = decode_wal(&log);
        assert_eq!(decoded, records);
        assert_eq!(valid, log.len());

        // Every truncation yields a (possibly shorter) valid prefix and
        // never a record past the cut.
        for cut in 0..log.len() {
            let (prefix, valid) = decode_wal(&log[..cut]);
            assert!(valid <= cut);
            assert!(prefix.len() <= records.len());
            assert_eq!(prefix[..], records[..prefix.len()], "cut at {cut}");
        }
    }

    #[test]
    fn wal_stops_at_corruption_and_non_monotone_seq() {
        let a = encode_wal_record(&WalRecord::Commit { seq: 1, epoch: 1 });
        let b = encode_wal_record(&WalRecord::Commit { seq: 2, epoch: 2 });
        let mut log = a.clone();
        log.extend_from_slice(&b);
        // Flip one payload bit of the first record: nothing decodes.
        let mut torn = log.clone();
        torn[9] ^= 0x40;
        let (recs, valid) = decode_wal(&torn);
        assert!(recs.is_empty());
        assert_eq!(valid, 0);
        // A stale (non-increasing) sequence number also stops replay.
        let mut stale = b.clone();
        stale.extend_from_slice(&a);
        stale.extend_from_slice(&b);
        let (recs, valid) = decode_wal(&stale);
        assert_eq!(recs, vec![WalRecord::Commit { seq: 2, epoch: 2 }]);
        assert_eq!(valid, b.len());
    }

    #[test]
    fn disk_faults_are_deterministic() {
        let run = |seed| {
            let f = DiskFaults::new(seed, 0.3, 0.2, 0.2, 0.1);
            let mut outcomes = Vec::new();
            for i in 0..64u8 {
                let mut buf = vec![i; 64];
                let mangled = f.mangle(&mut buf);
                outcomes.push((mangled, buf));
                outcomes.push((f.drop_rename(), Vec::new()));
            }
            outcomes
        };
        assert_eq!(run(7), run(7), "same seed, same fault schedule");
        assert_ne!(run(7), run(8), "different seeds diverge");
        assert!(run(7).iter().any(|(m, _)| *m), "faults must actually fire at these rates");
    }

    #[test]
    fn empty_faults_never_fire() {
        let f = DiskFaults::new(1, 0.0, 0.0, 0.0, 0.0);
        assert!(f.is_empty());
        let mut buf = vec![1, 2, 3];
        assert!(!f.mangle(&mut buf));
        assert_eq!(buf, vec![1, 2, 3]);
        assert!(!f.drop_rename());
    }

    #[test]
    fn mangled_frames_never_decode_as_valid() {
        // Chaos sweep at the codec level: whatever mangle does to a WAL
        // buffer, decode_wal returns only records that were really
        // written, never a fabricated one.
        let records: Vec<WalRecord> =
            (1..=16).map(|s| WalRecord::Commit { seq: s, epoch: s }).collect();
        let mut log = Vec::new();
        for r in &records {
            log.extend_from_slice(&encode_wal_record(r));
        }
        for seed in 0..50u64 {
            let f = DiskFaults::new(seed, 0.5, 0.3, 0.5, 0.0);
            let mut mangled = log.clone();
            f.mangle(&mut mangled);
            let (decoded, _) = decode_wal(&mangled);
            assert!(decoded.len() <= records.len());
            assert_eq!(decoded[..], records[..decoded.len()], "seed {seed}");
        }
    }
}
