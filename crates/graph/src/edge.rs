//! Edge records and edge lists — the ingestion-time representation.
//!
//! The paper defines an edge as `e = {s, t, w}`: a directed link from
//! `s` to `t` with weight `w` (§2). [`EdgeList`] is the mutable staging
//! area used by [`crate::GraphBuilder`] before conversion into the
//! compressed formats.

use crate::types::{VertexId, Weight};

/// A directed, weighted edge `{s, t, w}`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Edge {
    /// Source vertex.
    pub src: VertexId,
    /// Destination vertex.
    pub dst: VertexId,
    /// Edge weight (1.0 for unweighted graphs).
    pub weight: Weight,
}

impl Edge {
    /// Creates an unweighted (weight 1.0) edge.
    #[inline]
    pub fn unweighted(src: VertexId, dst: VertexId) -> Self {
        Self { src, dst, weight: 1.0 }
    }

    /// Creates a weighted edge.
    #[inline]
    pub fn weighted(src: VertexId, dst: VertexId, weight: Weight) -> Self {
        Self { src, dst, weight }
    }

    /// The same edge with endpoints swapped (used to derive the
    /// in-edge view and to symmetrize undirected inputs).
    #[inline]
    pub fn reversed(self) -> Self {
        Self { src: self.dst, dst: self.src, weight: self.weight }
    }

    /// True if the edge is a self loop.
    #[inline]
    pub fn is_loop(self) -> bool {
        self.src == self.dst
    }
}

/// A growable list of edges plus the (max vertex + 1) bound seen so far.
///
/// The vertex count is tracked eagerly so generators can emit edges in
/// streaming fashion without a second pass.
#[derive(Clone, Debug, Default)]
pub struct EdgeList {
    edges: Vec<Edge>,
    num_vertices: u64,
}

impl EdgeList {
    /// Creates an empty edge list.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty edge list with a known vertex-universe size.
    pub fn with_num_vertices(n: u64) -> Self {
        Self { edges: Vec::new(), num_vertices: n }
    }

    /// Creates an edge list with capacity for `cap` edges.
    pub fn with_capacity(cap: usize) -> Self {
        Self { edges: Vec::with_capacity(cap), num_vertices: 0 }
    }

    /// Appends an edge, growing the vertex universe if needed.
    #[inline]
    pub fn push(&mut self, e: Edge) {
        self.num_vertices = self.num_vertices.max(e.src + 1).max(e.dst + 1);
        self.edges.push(e);
    }

    /// Appends an unweighted edge.
    #[inline]
    pub fn push_pair(&mut self, src: VertexId, dst: VertexId) {
        self.push(Edge::unweighted(src, dst));
    }

    /// Number of edges.
    #[inline]
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// True if no edges have been added.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Size of the vertex universe (max endpoint + 1, or an explicit
    /// larger bound set via [`EdgeList::with_num_vertices`] /
    /// [`EdgeList::set_num_vertices`]).
    #[inline]
    pub fn num_vertices(&self) -> u64 {
        self.num_vertices
    }

    /// Forces the vertex universe to at least `n` (isolated trailing
    /// vertices are legal — the generators use this).
    pub fn set_num_vertices(&mut self, n: u64) {
        self.num_vertices = self.num_vertices.max(n);
    }

    /// Immutable view of the edges.
    #[inline]
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Mutable view of the edges (used by in-place reindexing).
    #[inline]
    pub fn edges_mut(&mut self) -> &mut [Edge] {
        &mut self.edges
    }

    /// Consumes the list, returning the raw edge vector.
    pub fn into_edges(self) -> Vec<Edge> {
        self.edges
    }

    /// Appends every edge's reverse, turning a directed edge list into
    /// a symmetric (undirected) one. Self loops are not duplicated.
    pub fn symmetrize(&mut self) {
        let n = self.edges.len();
        self.edges.reserve(n);
        for i in 0..n {
            let e = self.edges[i];
            if !e.is_loop() {
                self.edges.push(e.reversed());
            }
        }
    }

    /// Extends from an iterator of (src, dst) pairs.
    pub fn extend_pairs<I: IntoIterator<Item = (VertexId, VertexId)>>(&mut self, it: I) {
        for (s, t) in it {
            self.push_pair(s, t);
        }
    }
}

impl FromIterator<Edge> for EdgeList {
    fn from_iter<T: IntoIterator<Item = Edge>>(iter: T) -> Self {
        let mut l = EdgeList::new();
        for e in iter {
            l.push(e);
        }
        l
    }
}

impl FromIterator<(VertexId, VertexId)> for EdgeList {
    fn from_iter<T: IntoIterator<Item = (VertexId, VertexId)>>(iter: T) -> Self {
        let mut l = EdgeList::new();
        l.extend_pairs(iter);
        l
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_tracks_universe() {
        let mut l = EdgeList::new();
        l.push_pair(3, 7);
        assert_eq!(l.num_vertices(), 8);
        l.push_pair(10, 2);
        assert_eq!(l.num_vertices(), 11);
        assert_eq!(l.len(), 2);
    }

    #[test]
    fn set_num_vertices_only_grows() {
        let mut l = EdgeList::new();
        l.push_pair(0, 5);
        l.set_num_vertices(3);
        assert_eq!(l.num_vertices(), 6);
        l.set_num_vertices(100);
        assert_eq!(l.num_vertices(), 100);
    }

    #[test]
    fn symmetrize_doubles_non_loops() {
        let mut l: EdgeList = [(0u64, 1u64), (1, 2), (2, 2)].into_iter().collect();
        l.symmetrize();
        assert_eq!(l.len(), 5); // 2 reversed + original 3
        assert!(l.edges().contains(&Edge::unweighted(1, 0)));
        assert!(l.edges().contains(&Edge::unweighted(2, 1)));
    }

    #[test]
    fn reversed_keeps_weight() {
        let e = Edge::weighted(1, 2, 0.5);
        let r = e.reversed();
        assert_eq!(r.src, 2);
        assert_eq!(r.dst, 1);
        assert_eq!(r.weight, 0.5);
    }

    #[test]
    fn from_iter_edges() {
        let l: EdgeList = vec![Edge::unweighted(0, 1)].into_iter().collect();
        assert_eq!(l.len(), 1);
        assert_eq!(l.num_vertices(), 2);
    }
}
