//! Columnar property storage ("the graph property includes vertex
//! values, and edge weights", §3).
//!
//! [`VertexProps`] is a dense value-per-vertex column used by iterative
//! computations (PageRank ranks, SSSP distances). [`SparseLevelProps`]
//! implements the paper's *dynamic resource allocation* (§3.3): during a
//! traversal "we only need to keep vertex values for those in previous
//! and current levels, instead of saving value per vertex during the
//! entire query" — it stores two level maps and swaps them each hop.

use crate::types::VertexId;
use std::collections::HashMap;

/// Dense per-vertex values of type `T`.
#[derive(Clone, Debug)]
pub struct VertexProps<T> {
    values: Vec<T>,
}

impl<T: Clone + Default> VertexProps<T> {
    /// Creates a column of `n` default values.
    pub fn new(n: usize) -> Self {
        Self { values: vec![T::default(); n] }
    }

    /// Creates a column of `n` copies of `init`.
    pub fn filled(n: usize, init: T) -> Self {
        Self { values: vec![init; n] }
    }
}

impl<T> VertexProps<T> {
    /// Number of vertices.
    #[inline]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True if the column is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Value of vertex `v`.
    #[inline]
    pub fn get(&self, v: VertexId) -> &T {
        &self.values[v as usize]
    }

    /// Mutable value of vertex `v`.
    #[inline]
    pub fn get_mut(&mut self, v: VertexId) -> &mut T {
        &mut self.values[v as usize]
    }

    /// Sets the value of vertex `v`.
    #[inline]
    pub fn set(&mut self, v: VertexId, val: T) {
        self.values[v as usize] = val;
    }

    /// The raw column.
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        &self.values
    }

    /// The raw mutable column.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.values
    }
}

/// Per-edge values of type `T`, aligned with a CSR's edge order.
#[derive(Clone, Debug)]
pub struct EdgeProps<T> {
    values: Vec<T>,
}

impl<T: Clone + Default> EdgeProps<T> {
    /// Creates a column of `m` default values.
    pub fn new(m: usize) -> Self {
        Self { values: vec![T::default(); m] }
    }
}

impl<T> EdgeProps<T> {
    /// Number of edges.
    #[inline]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True if the column is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Value of edge slot `i`.
    #[inline]
    pub fn get(&self, i: usize) -> &T {
        &self.values[i]
    }

    /// Sets the value of edge slot `i`.
    #[inline]
    pub fn set(&mut self, i: usize, val: T) {
        self.values[i] = val;
    }
}

/// Two-level sparse vertex values: the previous and current traversal
/// levels only (dynamic resource allocation, §3.3).
///
/// Memory is proportional to the frontier sizes, not to |V| — the
/// mechanism that lets "a single instance" run hundreds of concurrent
/// queries without exhausting memory.
#[derive(Clone, Debug, Default)]
pub struct SparseLevelProps<T> {
    prev: HashMap<VertexId, T>,
    cur: HashMap<VertexId, T>,
}

impl<T> SparseLevelProps<T> {
    /// Creates empty level maps.
    pub fn new() -> Self {
        Self { prev: HashMap::new(), cur: HashMap::new() }
    }

    /// Records a value for `v` in the *current* level.
    pub fn insert(&mut self, v: VertexId, val: T) {
        self.cur.insert(v, val);
    }

    /// Looks `v` up in the current level, falling back to the previous.
    pub fn get(&self, v: VertexId) -> Option<&T> {
        self.cur.get(&v).or_else(|| self.prev.get(&v))
    }

    /// Value of `v` in the previous level only.
    pub fn get_prev(&self, v: VertexId) -> Option<&T> {
        self.prev.get(&v)
    }

    /// Ends the hop: current becomes previous, previous is dropped.
    pub fn advance_level(&mut self) {
        std::mem::swap(&mut self.prev, &mut self.cur);
        self.cur.clear();
    }

    /// Entries retained (prev + cur) — the live memory footprint.
    pub fn live_entries(&self) -> usize {
        self.prev.len() + self.cur.len()
    }

    /// Iterates the current level.
    pub fn iter_current(&self) -> impl Iterator<Item = (&VertexId, &T)> {
        self.cur.iter()
    }

    /// Drops everything (query finished).
    pub fn clear(&mut self) {
        self.prev.clear();
        self.cur.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vertex_props_roundtrip() {
        let mut p: VertexProps<f64> = VertexProps::new(4);
        p.set(2, 1.5);
        assert_eq!(*p.get(2), 1.5);
        assert_eq!(*p.get(0), 0.0);
        assert_eq!(p.len(), 4);
    }

    #[test]
    fn vertex_props_filled() {
        let p = VertexProps::filled(3, 7u32);
        assert!(p.as_slice().iter().all(|&x| x == 7));
    }

    #[test]
    fn edge_props_roundtrip() {
        let mut p: EdgeProps<u8> = EdgeProps::new(2);
        p.set(1, 9);
        assert_eq!(*p.get(1), 9);
    }

    #[test]
    fn sparse_levels_drop_old_data() {
        let mut s: SparseLevelProps<u32> = SparseLevelProps::new();
        s.insert(1, 10);
        s.advance_level(); // level 0 -> prev
        s.insert(2, 20);
        assert_eq!(s.get(1), Some(&10)); // prev still visible
        assert_eq!(s.get(2), Some(&20));
        s.advance_level(); // level 1 -> prev, level 0 dropped
        assert_eq!(s.get(1), None, "two-level window must forget old levels");
        assert_eq!(s.get(2), Some(&20));
        assert_eq!(s.live_entries(), 1);
    }

    #[test]
    fn sparse_current_shadows_prev() {
        let mut s: SparseLevelProps<u32> = SparseLevelProps::new();
        s.insert(5, 1);
        s.advance_level();
        s.insert(5, 2);
        assert_eq!(s.get(5), Some(&2));
        assert_eq!(s.get_prev(5), Some(&1));
    }

    #[test]
    fn sparse_clear() {
        let mut s: SparseLevelProps<u32> = SparseLevelProps::new();
        s.insert(1, 1);
        s.advance_level();
        s.insert(2, 2);
        s.clear();
        assert_eq!(s.live_entries(), 0);
        assert_eq!(s.get(1), None);
    }
}
