//! Out-of-core edge-set storage.
//!
//! §3: "Note that a subgraph shard does not necessarily need to fit in
//! memory; as a result, the I/O cost may also involve local disk I/O."
//! And §3.2: "Loading or persisting many such small edge-sets is
//! inefficient due to the I/O latency. Therefore, it makes sense to
//! consolidate small edge-sets."
//!
//! [`TileStore`] persists an [`EdgeSetGraph`] tile-by-tile in a simple
//! indexed binary file; [`TileCache`] reads tiles back on demand
//! through an LRU cache of bounded capacity, counting loads and bytes
//! so experiments can quantify exactly the claim above: with
//! consolidation, a traversal touches fewer, larger tiles and performs
//! fewer I/O operations.

use crate::edge_set::{EdgeSet, EdgeSetGraph};
use crate::types::{VertexRange, Weight};
use crate::VertexId;
use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

const MAGIC: &[u8; 8] = b"CGTILES1";

/// Index entry: where one tile lives in the file.
#[derive(Clone, Copy, Debug)]
struct TileLoc {
    offset: u64,
    len: u64,
}

/// A persisted edge-set graph: index in memory, tile payloads on disk.
pub struct TileStore {
    path: PathBuf,
    index: Vec<TileLoc>,
    row_span: VertexRange,
    col_span: VertexRange,
}

fn write_u64(w: &mut impl Write, v: u64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn read_u64(r: &mut impl Read) -> io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

impl TileStore {
    /// Persists every tile of `graph` to `path` and returns the store.
    pub fn create<P: AsRef<Path>>(path: P, graph: &EdgeSetGraph) -> io::Result<Self> {
        let path = path.as_ref().to_path_buf();
        let mut w = BufWriter::new(File::create(&path)?);
        w.write_all(MAGIC)?;
        write_u64(&mut w, graph.sets().len() as u64)?;
        write_u64(&mut w, graph.row_span().start)?;
        write_u64(&mut w, graph.row_span().end)?;
        write_u64(&mut w, graph.col_span().start)?;
        write_u64(&mut w, graph.col_span().end)?;
        // Header + index placeholder: we accumulate payloads in memory
        // per tile (tiles are cache-sized by construction) and record
        // their extents.
        let mut index = Vec::with_capacity(graph.sets().len());
        let index_pos = 8 + 8 * 5;
        let index_bytes = graph.sets().len() as u64 * 16;
        let mut cursor = index_pos as u64 + index_bytes;
        // Reserve index space.
        w.write_all(&vec![0u8; index_bytes as usize])?;
        for set in graph.sets() {
            let payload = encode_tile(set);
            index.push(TileLoc { offset: cursor, len: payload.len() as u64 });
            w.write_all(&payload)?;
            cursor += payload.len() as u64;
        }
        // Back-patch the index.
        w.flush()?;
        let mut f = w.into_inner().map_err(|e| e.into_error())?;
        f.seek(SeekFrom::Start(index_pos as u64))?;
        for loc in &index {
            f.write_all(&loc.offset.to_le_bytes())?;
            f.write_all(&loc.len.to_le_bytes())?;
        }
        f.flush()?;
        Ok(Self { path, index, row_span: graph.row_span(), col_span: graph.col_span() })
    }

    /// Opens an existing store and reads its index.
    pub fn open<P: AsRef<Path>>(path: P) -> io::Result<Self> {
        let path = path.as_ref().to_path_buf();
        let mut r = BufReader::new(File::open(&path)?);
        let mut magic = [0u8; 8];
        r.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "bad tile-store magic"));
        }
        let count = read_u64(&mut r)? as usize;
        let row_span = VertexRange::new(read_u64(&mut r)?, read_u64(&mut r)?);
        let col_span = VertexRange::new(read_u64(&mut r)?, read_u64(&mut r)?);
        let mut index = Vec::with_capacity(count);
        for _ in 0..count {
            let offset = read_u64(&mut r)?;
            let len = read_u64(&mut r)?;
            index.push(TileLoc { offset, len });
        }
        Ok(Self { path, index, row_span, col_span })
    }

    /// Number of tiles stored.
    pub fn num_tiles(&self) -> usize {
        self.index.len()
    }

    /// Source span covered.
    pub fn row_span(&self) -> VertexRange {
        self.row_span
    }

    /// Destination span covered.
    pub fn col_span(&self) -> VertexRange {
        self.col_span
    }

    /// Reads tile `i` directly from disk (no caching).
    pub fn load_tile(&self, i: usize) -> io::Result<EdgeSet> {
        let loc = self.index[i];
        let mut f = File::open(&self.path)?;
        f.seek(SeekFrom::Start(loc.offset))?;
        let mut payload = vec![0u8; loc.len as usize];
        f.read_exact(&mut payload)?;
        decode_tile(&payload)
    }
}

fn encode_tile(set: &EdgeSet) -> Vec<u8> {
    let (offsets, targets, weights) = set.raw_parts();
    let mut buf = Vec::with_capacity(40 + offsets.len() * 4 + targets.len() * 12);
    buf.extend_from_slice(&set.row_range.start.to_le_bytes());
    buf.extend_from_slice(&set.row_range.end.to_le_bytes());
    buf.extend_from_slice(&set.col_range.start.to_le_bytes());
    buf.extend_from_slice(&set.col_range.end.to_le_bytes());
    buf.extend_from_slice(&(targets.len() as u64).to_le_bytes());
    for &o in offsets {
        buf.extend_from_slice(&o.to_le_bytes());
    }
    for &t in targets {
        buf.extend_from_slice(&t.to_le_bytes());
    }
    for &w in weights {
        buf.extend_from_slice(&w.to_le_bytes());
    }
    buf
}

fn decode_tile(bytes: &[u8]) -> io::Result<EdgeSet> {
    let bad = || io::Error::new(io::ErrorKind::InvalidData, "truncated tile");
    let take8 = |pos: &mut usize| -> io::Result<u64> {
        let b: [u8; 8] = bytes.get(*pos..*pos + 8).ok_or_else(bad)?.try_into().unwrap();
        *pos += 8;
        Ok(u64::from_le_bytes(b))
    };
    let mut pos = 0usize;
    let row = VertexRange::new(take8(&mut pos)?, take8(&mut pos)?);
    let col = VertexRange::new(take8(&mut pos)?, take8(&mut pos)?);
    let num_edges = take8(&mut pos)? as usize;
    let num_offsets = row.len() as usize + 1;
    let mut offsets = Vec::with_capacity(num_offsets);
    for _ in 0..num_offsets {
        let b: [u8; 4] = bytes.get(pos..pos + 4).ok_or_else(bad)?.try_into().unwrap();
        pos += 4;
        offsets.push(u32::from_le_bytes(b));
    }
    let mut targets: Vec<VertexId> = Vec::with_capacity(num_edges);
    for _ in 0..num_edges {
        let b: [u8; 8] = bytes.get(pos..pos + 8).ok_or_else(bad)?.try_into().unwrap();
        pos += 8;
        targets.push(u64::from_le_bytes(b));
    }
    let mut weights: Vec<Weight> = Vec::with_capacity(num_edges);
    for _ in 0..num_edges {
        let b: [u8; 4] = bytes.get(pos..pos + 4).ok_or_else(bad)?.try_into().unwrap();
        pos += 4;
        weights.push(f32::from_le_bytes(b));
    }
    Ok(EdgeSet::from_raw_parts(row, col, offsets, targets, weights))
}

/// I/O statistics of a [`TileCache`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TileCacheStats {
    /// Cache hits.
    pub hits: u64,
    /// Tiles loaded from disk.
    pub loads: u64,
    /// Payload bytes read from disk.
    pub bytes_read: u64,
    /// Tiles evicted.
    pub evictions: u64,
}

/// An LRU cache of decoded tiles over a [`TileStore`].
pub struct TileCache {
    store: TileStore,
    /// `(tile index, last-use stamp, tile)` — linear scan is fine for
    /// the few dozen resident tiles a cache holds.
    resident: Vec<(usize, u64, Arc<EdgeSet>)>,
    capacity: usize,
    clock: u64,
    stats: TileCacheStats,
}

impl TileCache {
    /// Wraps `store` with an LRU of `capacity` tiles (≥ 1).
    pub fn new(store: TileStore, capacity: usize) -> Self {
        assert!(capacity >= 1);
        Self { store, resident: Vec::new(), capacity, clock: 0, stats: TileCacheStats::default() }
    }

    /// The underlying store.
    pub fn store(&self) -> &TileStore {
        &self.store
    }

    /// Fetches tile `i`, loading from disk on a miss and evicting the
    /// least-recently-used resident tile when full.
    pub fn get(&mut self, i: usize) -> io::Result<Arc<EdgeSet>> {
        self.clock += 1;
        if let Some(slot) = self.resident.iter_mut().find(|(idx, _, _)| *idx == i) {
            slot.1 = self.clock;
            self.stats.hits += 1;
            return Ok(slot.2.clone());
        }
        let tile = Arc::new(self.store.load_tile(i)?);
        self.stats.loads += 1;
        self.stats.bytes_read += self.store.index[i].len;
        if self.resident.len() >= self.capacity {
            let (pos, _) = self
                .resident
                .iter()
                .enumerate()
                .min_by_key(|(_, (_, stamp, _))| *stamp)
                .expect("non-empty cache");
            self.resident.swap_remove(pos);
            self.stats.evictions += 1;
        }
        self.resident.push((i, self.clock, tile.clone()));
        Ok(tile)
    }

    /// Current statistics.
    pub fn stats(&self) -> TileCacheStats {
        self.stats
    }

    /// Resets statistics (keeps resident tiles).
    pub fn reset_stats(&mut self) {
        self.stats = TileCacheStats::default();
    }

    /// Runs an out-of-core k-hop traversal entirely through the cache
    /// (single partition): a frontier scan touches only tiles whose row
    /// range intersects the frontier, which is where consolidation pays
    /// — fewer, larger tiles mean fewer loads.
    ///
    /// Returns `(visited count, stats delta)`.
    pub fn ooc_khop(&mut self, source: VertexId, k: u32) -> io::Result<(u64, TileCacheStats)> {
        let before = self.stats;
        let span = self.store.row_span();
        assert!(span.contains(source), "source outside the stored span");
        let n = span.len() as usize;
        let mut visited = crate::Bitmap::new(n);
        let mut frontier: Vec<VertexId> = vec![source];
        visited.set(span.to_local(source) as usize);
        let mut count = 1u64;
        let mut depth = 0;
        // Per-hop: determine which tiles the frontier touches, then
        // scan each touched tile once for all frontier rows.
        while !frontier.is_empty() && depth < k {
            frontier.sort_unstable();
            let mut next: Vec<VertexId> = Vec::new();
            for i in 0..self.store.num_tiles() {
                // Pre-test the row range against the frontier before
                // paying for a load.
                let tile_rows = {
                    // Load lazily only when some frontier vertex is in
                    // range; the index has no row info, so fetch it via
                    // a cached prior load or a cheap heuristic: tiles
                    // were written in row-major stripes, so we must
                    // consult the tile. To stay honest about I/O we
                    // load and let the cache absorb repeats.
                    self.get(i)?
                };
                let lo = frontier.partition_point(|&v| v < tile_rows.row_range.start);
                let hi = frontier.partition_point(|&v| v < tile_rows.row_range.end);
                for &v in &frontier[lo..hi] {
                    for &t in tile_rows.neighbors(v) {
                        if span.contains(t) {
                            let l = span.to_local(t) as usize;
                            if !visited.set(l) {
                                count += 1;
                                next.push(t);
                            }
                        }
                    }
                }
            }
            frontier = next;
            depth += 1;
        }
        let after = self.stats;
        Ok((
            count,
            TileCacheStats {
                hits: after.hits - before.hits,
                loads: after.loads - before.loads,
                bytes_read: after.bytes_read - before.bytes_read,
                evictions: after.evictions - before.evictions,
            },
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edge::EdgeList;
    use crate::ConsolidationPolicy;

    fn tmp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("cgraph-tiles-{}-{name}", std::process::id()));
        p
    }

    fn blocked_graph() -> (EdgeList, EdgeSetGraph) {
        let mut l = EdgeList::with_num_vertices(128);
        for v in 0..128u64 {
            l.push_pair(v, (v + 1) % 128);
            l.push_pair(v, (v * 7 + 3) % 128);
        }
        let span = VertexRange::new(0, 128);
        let g = EdgeSetGraph::build(l.edges(), span, span, ConsolidationPolicy::grid(32));
        (l, g)
    }

    #[test]
    fn roundtrip_preserves_every_tile() {
        let (_, g) = blocked_graph();
        let path = tmp("roundtrip.ts");
        let store = TileStore::create(&path, &g).unwrap();
        assert_eq!(store.num_tiles(), g.sets().len());
        let reopened = TileStore::open(&path).unwrap();
        assert_eq!(reopened.num_tiles(), g.sets().len());
        for (i, orig) in g.sets().iter().enumerate() {
            let loaded = reopened.load_tile(i).unwrap();
            assert_eq!(loaded.row_range, orig.row_range);
            assert_eq!(loaded.col_range, orig.col_range);
            assert_eq!(loaded.num_edges(), orig.num_edges());
            for v in orig.row_range.iter() {
                assert_eq!(loaded.neighbors(v), orig.neighbors(v));
            }
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn cache_hits_and_evicts() {
        let (_, g) = blocked_graph();
        let path = tmp("cache.ts");
        let store = TileStore::create(&path, &g).unwrap();
        let tiles = store.num_tiles();
        assert!(tiles >= 3, "need several tiles, got {tiles}");
        let mut cache = TileCache::new(store, 2);
        cache.get(0).unwrap();
        cache.get(0).unwrap();
        cache.get(1).unwrap();
        cache.get(2).unwrap(); // evicts 0
        cache.get(0).unwrap(); // miss again
        let s = cache.stats();
        assert_eq!(s.hits, 1);
        assert_eq!(s.loads, 4);
        assert!(s.evictions >= 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn ooc_khop_matches_in_memory() {
        let (l, g) = blocked_graph();
        let path = tmp("khop.ts");
        let store = TileStore::create(&path, &g).unwrap();
        let mut cache = TileCache::new(store, 4);
        let (count, io_stats) = cache.ooc_khop(0, 3).unwrap();
        // In-memory reference.
        let csr = crate::Csr::from_edges(l.num_vertices(), l.edges());
        let mut seen = [false; 128];
        let mut q = std::collections::VecDeque::new();
        seen[0] = true;
        q.push_back((0u64, 0u32));
        let mut expect = 1u64;
        while let Some((v, d)) = q.pop_front() {
            if d >= 3 {
                continue;
            }
            for &t in csr.neighbors(v) {
                if !seen[t as usize] {
                    seen[t as usize] = true;
                    expect += 1;
                    q.push_back((t, d + 1));
                }
            }
        }
        assert_eq!(count, expect);
        assert!(io_stats.loads + io_stats.hits > 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn consolidation_reduces_io_operations() {
        // The §3.2 claim, measured: the same traversal over a
        // consolidated store performs fewer tile I/O operations.
        let mut l = EdgeList::with_num_vertices(512);
        for v in 0..512u64 {
            l.push_pair(v, (v + 1) % 512);
        }
        let span = VertexRange::new(0, 512);
        let fine = EdgeSetGraph::build(l.edges(), span, span, ConsolidationPolicy::grid(8));
        let consolidated = EdgeSetGraph::build(
            l.edges(),
            span,
            span,
            ConsolidationPolicy {
                target_edges_per_set: 8,
                min_edges_per_set: 64,
                horizontal: true,
                vertical: true,
            },
        );
        assert!(consolidated.sets().len() < fine.sets().len());
        let p1 = tmp("fine.ts");
        let p2 = tmp("consolidated.ts");
        let mut fine_cache = TileCache::new(TileStore::create(&p1, &fine).unwrap(), 4);
        let mut cons_cache = TileCache::new(TileStore::create(&p2, &consolidated).unwrap(), 4);
        let (c1, io1) = fine_cache.ooc_khop(0, 5).unwrap();
        let (c2, io2) = cons_cache.ooc_khop(0, 5).unwrap();
        assert_eq!(c1, c2, "same traversal result");
        assert!(
            io2.loads + io2.hits < io1.loads + io1.hits,
            "consolidated I/O ops {} !< fine {}",
            io2.loads + io2.hits,
            io1.loads + io1.hits
        );
        std::fs::remove_file(&p1).ok();
        std::fs::remove_file(&p2).ok();
    }

    #[test]
    fn bad_magic_rejected() {
        let path = tmp("magic.ts");
        std::fs::write(&path, b"WRONGMAG................").unwrap();
        assert!(TileStore::open(&path).is_err());
        std::fs::remove_file(&path).ok();
    }
}
