//! # cgraph-graph — graph data structures for C-Graph
//!
//! This crate is the storage substrate of the C-Graph reproduction
//! (Zhou, Chen, Xia, Teodorescu — ICPP 2018). It provides the
//! *multi-modal, edge-set based* graph representations of §3.2 of the
//! paper:
//!
//! * [`Csr`] — compressed sparse row, the out-edge view of a graph,
//! * [`Csc`] — compressed sparse column, the in-edge view,
//! * [`Adjacency`] — the multi-modal pairing of both views,
//! * [`EdgeSetGraph`] — the 2D-blocked "edge-set" layout with
//!   horizontal/vertical consolidation of small blocks,
//! * [`GraphBuilder`] — ingestion: dedup, (optional) re-indexing,
//!   degree accounting,
//! * [`Bitmap`] / [`LaneMatrix`] — bit-level state used by the MS-BFS
//!   style concurrent traversals of §3.5,
//! * [`VertexProps`] / [`EdgeProps`] — columnar property storage
//!   (vertex values, edge weights),
//! * [`LevelProfile`] / [`PartitionReach`] / [`TwoHopLabels`] —
//!   reachability-index label storage: bounded-hop distance sketches
//!   and 2-hop landmark labels over condensed boundary graphs,
//! * [`TileStore`] / [`TileCache`] — out-of-core edge-set persistence
//!   with an LRU tile cache ("a subgraph shard does not necessarily
//!   need to fit in memory", §3).
//!
//! The crate is deliberately independent of any execution engine: it
//! contains no threads and no channels, only memory layouts and their
//! invariants, so it can be tested and property-tested in isolation.

#![warn(missing_docs)]

pub mod adjacency;
pub mod bitmap;
pub mod builder;
pub mod csc;
pub mod csr;
pub mod delta;
pub mod edge;
pub mod edge_set;
pub mod labels;
pub mod props;
pub mod snapshot;
pub mod stats;
pub mod tile_store;
pub mod types;

pub use adjacency::Adjacency;
pub use bitmap::{Bitmap, LaneMask, LaneMatrix, LaneWidth, MAX_LANES, MAX_LANE_WORDS};
pub use builder::{BuildOptions, GraphBuilder, ReindexMode};
pub use csc::Csc;
pub use csr::Csr;
pub use delta::{DeltaOverlay, DeltaRow, EdgeUpdate, UpdateBatch};
pub use edge::{Edge, EdgeList};
pub use edge_set::{ConsolidationPolicy, EdgeSet, EdgeSetGraph, EdgeSetLayout};
pub use labels::{BoundaryIndexMap, LevelProfile, PartitionReach, TwoHopLabels, MAX_EXACT_LEVEL};
pub use props::{EdgeProps, VertexProps};
pub use snapshot::{
    decode_snapshot, decode_wal, encode_snapshot, encode_wal_record, CodecError, DiskFaults,
    PartitionData, SnapshotData, WalRecord,
};
pub use stats::{DegreeStats, GraphStats};
pub use tile_store::{TileCache, TileCacheStats, TileStore};
pub use types::{LocalVertexId, VertexId, Weight, INVALID_VERTEX};
