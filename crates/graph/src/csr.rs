//! Compressed sparse row (CSR) — the out-edge view.
//!
//! "Compressed sparse row (CSR) is a common storage format to store the
//! graph. It provides an efficient way to access the out-going edges of
//! a vertex" (§3.2). Offsets are `usize`, targets are [`VertexId`];
//! weights live in a parallel array so unweighted traversals never touch
//! them (structure-of-arrays, per the perf-book guidance on keeping hot
//! data dense).

use crate::edge::Edge;
use crate::types::{VertexId, Weight};
use rayon::prelude::*;

/// A CSR adjacency structure over vertices `0..num_vertices`.
///
/// ```
/// use cgraph_graph::{Csr, Edge};
/// let g = Csr::from_edges(3, &[Edge::unweighted(0, 2), Edge::unweighted(0, 1)]);
/// assert_eq!(g.neighbors(0), &[1, 2]); // sorted
/// assert_eq!(g.degree(1), 0);
/// assert!(g.has_edge(0, 2));
/// ```
#[derive(Clone, Debug, Default)]
pub struct Csr {
    /// `offsets[v]..offsets[v+1]` indexes `targets`/`weights` for `v`.
    offsets: Vec<usize>,
    targets: Vec<VertexId>,
    weights: Vec<Weight>,
}

impl Csr {
    /// Builds a CSR from an unsorted edge slice using counting sort —
    /// O(V + E), no comparison sort of the full edge list required
    /// (this is the "reduces the complexity of global sorting" point in
    /// §3.2's preprocessing description).
    pub fn from_edges(num_vertices: u64, edges: &[Edge]) -> Self {
        let n = num_vertices as usize;
        let mut counts = vec![0usize; n + 1];
        for e in edges {
            counts[e.src as usize + 1] += 1;
        }
        for i in 0..n {
            counts[i + 1] += counts[i];
        }
        let offsets = counts.clone();
        let mut cursor = counts;
        let mut targets = vec![0 as VertexId; edges.len()];
        let mut weights = vec![0.0 as Weight; edges.len()];
        for e in edges {
            let slot = cursor[e.src as usize];
            targets[slot] = e.dst;
            weights[slot] = e.weight;
            cursor[e.src as usize] += 1;
        }
        let mut csr = Self { offsets, targets, weights };
        csr.sort_neighbor_lists();
        csr
    }

    /// Sorts each neighbour list ascending (and keeps weights aligned).
    /// Sorted lists give deterministic iteration and enable the
    /// galloping intersection used by triangle counting.
    fn sort_neighbor_lists(&mut self) {
        let offsets = &self.offsets;
        // Split both payload arrays into per-vertex chunks and sort the
        // chunks in parallel: each chunk is owned by one task, so this
        // is data-race free by construction.
        let mut zipped: Vec<(usize, usize)> = Vec::with_capacity(offsets.len() - 1);
        for v in 0..offsets.len() - 1 {
            zipped.push((offsets[v], offsets[v + 1]));
        }
        // Sort pairs (target, weight) per range. Do it with index
        // permutation per range to keep weights aligned.
        let targets = &mut self.targets;
        let weights = &mut self.weights;
        // Safety-free approach: process ranges sequentially when small,
        // in parallel via split_at_mut-style chunking otherwise.
        // Simplest correct approach: gather (t, w), sort, write back —
        // parallelised over vertices via chunks of the ranges.
        let ranges = zipped;
        // Non-overlapping ranges allow unsafe-free parallelism through
        // chunk iteration: we walk the arrays once, slicing them apart.
        let mut t_rest: &mut [VertexId] = targets;
        let mut w_rest: &mut [Weight] = weights;
        let mut consumed = 0usize;
        let mut slices: Vec<(&mut [VertexId], &mut [Weight])> = Vec::with_capacity(ranges.len());
        for (start, end) in ranges {
            let (t_head, t_tail) = t_rest.split_at_mut(end - consumed);
            let (w_head, w_tail) = w_rest.split_at_mut(end - consumed);
            let local_start = start - consumed;
            let (_, t_range) = t_head.split_at_mut(local_start);
            let (_, w_range) = w_head.split_at_mut(local_start);
            slices.push((t_range, w_range));
            t_rest = t_tail;
            w_rest = w_tail;
            consumed = end;
        }
        slices.par_iter_mut().for_each(|(ts, ws)| {
            if ts.len() > 1 {
                let mut pairs: Vec<(VertexId, Weight)> =
                    ts.iter().copied().zip(ws.iter().copied()).collect();
                pairs.sort_unstable_by_key(|a| a.0);
                for (i, (t, w)) in pairs.into_iter().enumerate() {
                    ts[i] = t;
                    ws[i] = w;
                }
            }
        });
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> u64 {
        (self.offsets.len().max(1) - 1) as u64
    }

    /// Number of edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.targets.len()
    }

    /// Out-degree of `v`.
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        let v = v as usize;
        self.offsets[v + 1] - self.offsets[v]
    }

    /// Neighbour list of `v` (sorted ascending).
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        let v = v as usize;
        &self.targets[self.offsets[v]..self.offsets[v + 1]]
    }

    /// Weights aligned with [`Csr::neighbors`].
    #[inline]
    pub fn weights(&self, v: VertexId) -> &[Weight] {
        let v = v as usize;
        &self.weights[self.offsets[v]..self.offsets[v + 1]]
    }

    /// Neighbour/weight pairs of `v`.
    #[inline]
    pub fn neighbors_weighted(&self, v: VertexId) -> impl Iterator<Item = (VertexId, Weight)> + '_ {
        self.neighbors(v).iter().copied().zip(self.weights(v).iter().copied())
    }

    /// True if edge (u, v) exists (binary search on the sorted list).
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        self.neighbors(u).binary_search(&v).is_ok()
    }

    /// Raw offsets array (length `num_vertices + 1`).
    #[inline]
    pub fn offsets(&self) -> &[usize] {
        &self.offsets
    }

    /// Raw targets array.
    #[inline]
    pub fn targets(&self) -> &[VertexId] {
        &self.targets
    }

    /// Approximate heap footprint in bytes.
    pub fn size_bytes(&self) -> usize {
        self.offsets.len() * std::mem::size_of::<usize>()
            + self.targets.len() * std::mem::size_of::<VertexId>()
            + self.weights.len() * std::mem::size_of::<Weight>()
    }

    /// Iterates `(src, dst, weight)` for all edges in CSR order.
    pub fn iter_edges(&self) -> impl Iterator<Item = Edge> + '_ {
        (0..self.num_vertices()).flat_map(move |v| {
            self.neighbors_weighted(v).map(move |(t, w)| Edge::weighted(v, t, w))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edge::EdgeList;

    fn sample() -> Csr {
        let l: EdgeList =
            [(0u64, 1u64), (0, 2), (1, 2), (2, 0), (3, 1), (0, 3)].into_iter().collect();
        Csr::from_edges(l.num_vertices(), l.edges())
    }

    #[test]
    fn degrees_and_neighbors() {
        let g = sample();
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 6);
        assert_eq!(g.degree(0), 3);
        assert_eq!(g.neighbors(0), &[1, 2, 3]);
        assert_eq!(g.neighbors(1), &[2]);
        assert_eq!(g.neighbors(2), &[0]);
        assert_eq!(g.neighbors(3), &[1]);
    }

    #[test]
    fn neighbor_lists_sorted() {
        let l: EdgeList = [(0u64, 5u64), (0, 1), (0, 3), (0, 2)].into_iter().collect();
        let g = Csr::from_edges(l.num_vertices(), l.edges());
        assert_eq!(g.neighbors(0), &[1, 2, 3, 5]);
    }

    #[test]
    fn has_edge_binary_search() {
        let g = sample();
        assert!(g.has_edge(0, 2));
        assert!(!g.has_edge(2, 3));
    }

    #[test]
    fn weights_stay_aligned_after_sort() {
        let edges =
            vec![Edge::weighted(0, 3, 3.0), Edge::weighted(0, 1, 1.0), Edge::weighted(0, 2, 2.0)];
        let g = Csr::from_edges(4, &edges);
        let pairs: Vec<_> = g.neighbors_weighted(0).collect();
        assert_eq!(pairs, vec![(1, 1.0), (2, 2.0), (3, 3.0)]);
    }

    #[test]
    fn empty_graph() {
        let g = Csr::from_edges(0, &[]);
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn isolated_vertices() {
        let g = Csr::from_edges(10, &[Edge::unweighted(0, 1)]);
        assert_eq!(g.num_vertices(), 10);
        for v in 2..10 {
            assert_eq!(g.degree(v), 0);
        }
    }

    #[test]
    fn iter_edges_roundtrip() {
        let g = sample();
        let edges: Vec<_> = g.iter_edges().collect();
        assert_eq!(edges.len(), 6);
        let rebuilt = Csr::from_edges(g.num_vertices(), &edges);
        for v in 0..4u64 {
            assert_eq!(rebuilt.neighbors(v), g.neighbors(v));
        }
    }
}
