//! Fundamental identifier and scalar types shared across the workspace.
//!
//! The paper distinguishes *global* vertex IDs (assigned once at
//! ingestion, after re-indexing) from *local* vertex IDs inside a
//! partition or edge-set ("local vertex IDs calculated from global
//! vertex ID and partition offset", §3.2). We mirror that split:
//! globals are `u64` so that graphs beyond 4B vertices are expressible
//! (the paper targets up to 100B edges), while locals are `u32` —
//! a partition never holds more than 4B vertices, and halving the index
//! width doubles the number of adjacency entries per cache line.

/// Global vertex identifier, dense in `0..num_vertices` after ingestion.
pub type VertexId = u64;

/// Vertex identifier local to a partition or edge-set block.
pub type LocalVertexId = u32;

/// Edge weight ("property of edge e" in the paper's terminology).
pub type Weight = f32;

/// Sentinel for "no vertex" (e.g. unreached parent pointers).
pub const INVALID_VERTEX: VertexId = VertexId::MAX;

/// Sentinel for "no local vertex".
pub const INVALID_LOCAL: LocalVertexId = LocalVertexId::MAX;

/// Identifier of a partition (one per simulated machine).
pub type PartitionId = usize;

/// Identifier of a query within a concurrent batch.
pub type QueryId = usize;

/// A half-open global vertex range `[start, end)`, the unit of
/// range-based partitioning (§3.1) and of edge-set blocking (§3.2).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct VertexRange {
    /// First vertex in the range.
    pub start: VertexId,
    /// One past the last vertex in the range.
    pub end: VertexId,
}

impl VertexRange {
    /// Creates a range; panics if `start > end`.
    pub fn new(start: VertexId, end: VertexId) -> Self {
        assert!(start <= end, "invalid vertex range {start}..{end}");
        Self { start, end }
    }

    /// Number of vertices covered.
    #[inline]
    pub fn len(&self) -> u64 {
        self.end - self.start
    }

    /// True when the range covers no vertices.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// True when `v` falls inside the range.
    #[inline]
    pub fn contains(&self, v: VertexId) -> bool {
        v >= self.start && v < self.end
    }

    /// Converts a global vertex ID into a local offset within the
    /// range. Panics (debug) if the vertex is out of range.
    #[inline]
    pub fn to_local(&self, v: VertexId) -> LocalVertexId {
        debug_assert!(self.contains(v), "{v} not in {self:?}");
        (v - self.start) as LocalVertexId
    }

    /// Converts a local offset back into a global vertex ID.
    #[inline]
    pub fn to_global(&self, l: LocalVertexId) -> VertexId {
        self.start + l as VertexId
    }

    /// Iterates all global vertex IDs in the range.
    pub fn iter(&self) -> impl Iterator<Item = VertexId> {
        self.start..self.end
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_basics() {
        let r = VertexRange::new(10, 20);
        assert_eq!(r.len(), 10);
        assert!(!r.is_empty());
        assert!(r.contains(10));
        assert!(r.contains(19));
        assert!(!r.contains(20));
        assert!(!r.contains(9));
    }

    #[test]
    fn range_local_global_roundtrip() {
        let r = VertexRange::new(100, 200);
        for v in [100u64, 150, 199] {
            assert_eq!(r.to_global(r.to_local(v)), v);
        }
    }

    #[test]
    fn empty_range() {
        let r = VertexRange::new(5, 5);
        assert!(r.is_empty());
        assert_eq!(r.len(), 0);
        assert_eq!(r.iter().count(), 0);
    }

    #[test]
    #[should_panic]
    fn inverted_range_panics() {
        VertexRange::new(3, 2);
    }

    #[test]
    fn range_iter_order() {
        let r = VertexRange::new(2, 6);
        let v: Vec<_> = r.iter().collect();
        assert_eq!(v, vec![2, 3, 4, 5]);
    }
}
