//! Reachability-index label storage: bounded-hop distance sketches and
//! 2-hop landmark labels over a condensed boundary graph.
//!
//! This module is pure storage — it knows nothing about traversal
//! engines or partitioning policy. The `cgraph-index` crate *builds*
//! these structures by running batch BFS from boundary vertices and
//! feeding the observed level sets in here; the query path then reads
//! them without touching the graph at all.
//!
//! Three structures, one per question the index answers:
//!
//! * [`LevelProfile`] — "how many vertices does source `s` reach at
//!   each BFS level?" Answers whole queries without traversing when
//!   the profile covers the requested depth.
//! * [`PartitionReach`] — "at which BFS levels does *partition Q* gain
//!   its first-visited vertices from source `s`?" One `u64` bitmask
//!   per (source, partition); the traversal engine consults it each
//!   superstep to suppress frontier sends to partitions where the
//!   delivery is provably a state no-op.
//! * [`TwoHopLabels`] — pruned landmark labels over the condensed
//!   boundary graph, answering boundary-to-boundary reachability by
//!   label intersection.

use crate::types::VertexId;

/// Number of exactly-representable BFS levels in a
/// [`PartitionReach`] mask: bits `0..=62` encode "some vertex of the
/// partition is first reached at distance exactly `d`".
pub const MAX_EXACT_LEVEL: u32 = 62;

/// The per-source, per-level visit counts recorded while building the
/// index: `levels[d]` is the number of vertices *first* reached at
/// distance exactly `d` from the source (`levels[0] == 1`, the source
/// itself).
///
/// `complete` is true when the build BFS drained the lane within its
/// hop budget — the profile is then the *full* BFS level structure and
/// answers any `k`. When false, the BFS was cut off at the budget:
/// recorded levels are still exact (synchronous BFS visits every
/// distance-`d` vertex at superstep `d`), but nothing is known beyond
/// them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LevelProfile {
    levels: Vec<u64>,
    complete: bool,
}

impl LevelProfile {
    /// Wraps recorded per-level counts. `levels[0]` must be the seed
    /// count (1 for a single-source profile).
    pub fn new(levels: Vec<u64>, complete: bool) -> Self {
        debug_assert!(!levels.is_empty(), "a profile records at least level 0");
        Self { levels, complete }
    }

    /// True when the profile covers the full BFS (the frontier drained
    /// within the build budget).
    pub fn is_complete(&self) -> bool {
        self.complete
    }

    /// Deepest recorded level.
    pub fn horizon(&self) -> u32 {
        (self.levels.len() - 1) as u32
    }

    /// Raw recorded counts, `counts()[d]` = new visits at level `d`.
    pub fn counts(&self) -> &[u64] {
        &self.levels
    }

    /// True when the profile can answer a `k`-hop query exactly:
    /// either the BFS completed, or `k` lies within the recorded
    /// horizon.
    pub fn exact_for(&self, k: u32) -> bool {
        self.complete || k <= self.horizon()
    }

    /// The exact `k`-hop answer, or `None` when `k` exceeds what the
    /// profile knows. Returns `(visited, per_level)` with `per_level`
    /// trimmed of trailing zero levels — the same shape the traversal
    /// path reports, so the two answer paths are bit-comparable.
    pub fn answer(&self, k: u32) -> Option<(u64, Vec<u64>)> {
        if !self.exact_for(k) {
            return None;
        }
        let end = (k as usize).min(self.levels.len() - 1);
        let mut per_level: Vec<u64> = self.levels[..=end].to_vec();
        while per_level.len() > 1 && *per_level.last().unwrap() == 0 {
            per_level.pop();
        }
        let visited = per_level.iter().sum();
        Some((visited, per_level))
    }

    /// Heap + inline bytes held by this profile.
    pub fn size_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.levels.capacity() * 8
    }
}

/// Per-(source, partition) level-set masks: bit `d` (for
/// `d <= `[`MAX_EXACT_LEVEL`]) of `mask(s, q)` is set iff some vertex
/// owned by partition `q` is *first* reached at distance exactly `d`
/// from indexed source `s`.
///
/// Bits above the build horizon follow a saturation convention chosen
/// so the pruning test is a single shift: when the build BFS for `s`
/// was cut off (incomplete), every bit past the budget — including bit
/// 63 — is set to 1 ("unknown: keep"). When it completed, bits past
/// the horizon stay 0 ("provably no first visit there: prune"). The
/// traversal engine then keeps a frontier delivery to partition `q` at
/// level `d` iff [`PartitionReach::keep`] — i.e. `d >= 63` or bit `d`
/// is set — and dropping the rest is sound because every target vertex
/// of such a delivery was already visited at a strictly smaller level
/// (see INDEXING.md §3 for the full argument).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionReach {
    num_partitions: usize,
    /// Row-major: `masks[s * num_partitions + q]`.
    masks: Vec<u64>,
}

impl PartitionReach {
    /// Allocates all-zero masks for `num_sources × num_partitions`.
    pub fn new(num_sources: usize, num_partitions: usize) -> Self {
        Self { num_partitions, masks: vec![0; num_sources * num_partitions] }
    }

    /// Number of partitions per source row.
    pub fn num_partitions(&self) -> usize {
        self.num_partitions
    }

    /// Records that partition `q` gains a first-visited vertex at
    /// distance exactly `level` from source `src_idx`. Levels above
    /// [`MAX_EXACT_LEVEL`] are ignored (they are covered by the
    /// `d >= 63` keep rule).
    pub fn record_gain(&mut self, src_idx: usize, q: usize, level: u32) {
        if level <= MAX_EXACT_LEVEL {
            self.masks[src_idx * self.num_partitions + q] |= 1u64 << level;
        }
    }

    /// Marks source `src_idx` as budget-cut at `horizon`: all levels
    /// past the horizon become "unknown" (kept) for every partition.
    pub fn mark_incomplete(&mut self, src_idx: usize, horizon: u32) {
        let unknown = if horizon >= 63 { 1u64 << 63 } else { u64::MAX << (horizon + 1) };
        let row = &mut self.masks[src_idx * self.num_partitions..][..self.num_partitions];
        for m in row {
            *m |= unknown;
        }
    }

    /// The raw mask for `(src_idx, q)`.
    pub fn mask(&self, src_idx: usize, q: usize) -> u64 {
        self.masks[src_idx * self.num_partitions + q]
    }

    /// True when a frontier delivery from source `src_idx` into
    /// partition `q` landing at BFS level `level` must be kept.
    pub fn keep(&self, src_idx: usize, q: usize, level: u32) -> bool {
        level >= 63 || (self.mask(src_idx, q) >> level) & 1 == 1
    }

    /// Heap + inline bytes held by the masks.
    pub fn size_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.masks.capacity() * 8
    }
}

/// One landmark entry: `(rank, dist)` — the landmark's position in the
/// labeling order and the (hop-weighted) distance along condensed
/// edges.
type LabelEntry = (u32, u32);

/// Pruned 2-hop landmark labels over a condensed boundary graph.
///
/// Nodes are dense indices `0..n` (the index crate maps boundary
/// [`VertexId`]s to these). Each node `u` carries an out-label set
/// `{(w, d(u→w))}` and an in-label set `{(w, d(w→u))}`; `u` reaches
/// `v` through the condensed graph iff the two sets share a landmark.
/// Labels are built with pruned landmark labeling: landmarks are
/// processed in the given order, and a label is only added when the
/// pair is not already covered by earlier landmarks, which is what
/// keeps label sets small on hub-heavy boundary graphs.
#[derive(Debug, Clone, Default)]
pub struct TwoHopLabels {
    /// `out[u]` sorted by landmark rank: `(rank, dist(u → landmark))`.
    out: Vec<Vec<LabelEntry>>,
    /// `inn[u]` sorted by landmark rank: `(rank, dist(landmark → u))`.
    inn: Vec<Vec<LabelEntry>>,
}

impl TwoHopLabels {
    /// Builds labels for `n` nodes from a weighted condensed digraph.
    ///
    /// `fwd[u]` lists `(v, w)` edges `u → v` of weight `w ≥ 1`;
    /// `order` is the landmark processing order (hubs first), a
    /// permutation of `0..n`. Runs one forward and one backward
    /// bounded Dijkstra per landmark — fine for the few-thousand-node
    /// boundary graphs this is used on.
    pub fn build(n: usize, fwd: &[Vec<(u32, u32)>], order: &[u32]) -> Self {
        debug_assert_eq!(fwd.len(), n);
        debug_assert_eq!(order.len(), n);
        // Reverse adjacency for the backward sweeps.
        let mut bwd: Vec<Vec<(u32, u32)>> = vec![Vec::new(); n];
        for (u, edges) in fwd.iter().enumerate() {
            for &(v, w) in edges {
                bwd[v as usize].push((u as u32, w));
            }
        }
        let mut labels = Self { out: vec![Vec::new(); n], inn: vec![Vec::new(); n] };
        let mut dist: Vec<u32> = vec![u32::MAX; n];
        for (rank, &lm) in order.iter().enumerate() {
            let rank = rank as u32;
            // Forward sweep from the landmark: reached nodes gain the
            // landmark in their *in*-labels (the landmark can reach
            // them).
            labels.sweep(lm, rank, fwd, &mut dist, /* forward */ true);
            // Backward sweep: nodes that reach the landmark gain it in
            // their *out*-labels.
            labels.sweep(lm, rank, &bwd, &mut dist, /* forward */ false);
        }
        labels
    }

    /// One pruned Dijkstra from landmark `lm` (rank `rank`) over
    /// `adj`. `scratch` is a reusable distance array (reset on exit).
    fn sweep(
        &mut self,
        lm: u32,
        rank: u32,
        adj: &[Vec<(u32, u32)>],
        scratch: &mut [u32],
        forward: bool,
    ) {
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;
        let mut heap: BinaryHeap<Reverse<(u32, u32)>> = BinaryHeap::new();
        let mut touched: Vec<u32> = Vec::new();
        scratch[lm as usize] = 0;
        touched.push(lm);
        heap.push(Reverse((0, lm)));
        while let Some(Reverse((d, u))) = heap.pop() {
            if d > scratch[u as usize] {
                continue; // stale heap entry
            }
            // Prune: if an earlier landmark already covers (lm, u)
            // at distance ≤ d, this pair needs no new label.
            let covered = if forward {
                self.query_dist(lm, u).is_some_and(|c| c <= d)
            } else {
                self.query_dist(u, lm).is_some_and(|c| c <= d)
            };
            if covered && u != lm {
                continue;
            }
            if u != lm {
                if forward {
                    self.inn[u as usize].push((rank, d));
                } else {
                    self.out[u as usize].push((rank, d));
                }
            } else {
                // The landmark covers itself at distance 0 on both
                // sides so later sweeps prune through it.
                if forward {
                    self.inn[u as usize].push((rank, 0));
                } else {
                    self.out[u as usize].push((rank, 0));
                }
            }
            for &(v, w) in &adj[u as usize] {
                let nd = d.saturating_add(w);
                if nd < scratch[v as usize] {
                    if scratch[v as usize] == u32::MAX {
                        touched.push(v);
                    }
                    scratch[v as usize] = nd;
                    heap.push(Reverse((nd, v)));
                }
            }
        }
        for t in touched {
            scratch[t as usize] = u32::MAX;
        }
    }

    /// Condensed-graph distance `u → v` through the labels, `None`
    /// when no common landmark covers the pair.
    pub fn query_dist(&self, u: u32, v: u32) -> Option<u32> {
        if u == v {
            return Some(0);
        }
        let (a, b) = (&self.out[u as usize], &self.inn[v as usize]);
        let (mut i, mut j) = (0usize, 0usize);
        let mut best: Option<u32> = None;
        while i < a.len() && j < b.len() {
            match a[i].0.cmp(&b[j].0) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    let d = a[i].1.saturating_add(b[j].1);
                    best = Some(best.map_or(d, |x| x.min(d)));
                    i += 1;
                    j += 1;
                }
            }
        }
        best
    }

    /// True when `u` reaches `v` through the condensed graph.
    pub fn reaches(&self, u: u32, v: u32) -> bool {
        self.query_dist(u, v).is_some()
    }

    /// Number of labeled nodes.
    pub fn num_nodes(&self) -> usize {
        self.out.len()
    }

    /// Total label entries across all nodes (both directions).
    pub fn num_entries(&self) -> usize {
        self.out.iter().map(Vec::len).sum::<usize>() + self.inn.iter().map(Vec::len).sum::<usize>()
    }

    /// Heap + inline bytes held by the label sets.
    pub fn size_bytes(&self) -> usize {
        let entry = std::mem::size_of::<LabelEntry>();
        std::mem::size_of::<Self>()
            + self
                .out
                .iter()
                .chain(self.inn.iter())
                .map(|l| std::mem::size_of::<Vec<LabelEntry>>() + l.capacity() * entry)
                .sum::<usize>()
    }
}

/// A dense mapping from boundary [`VertexId`]s to condensed-graph node
/// indices, sorted by vertex id for binary-search lookup.
#[derive(Debug, Clone, Default)]
pub struct BoundaryIndexMap {
    /// Sorted, deduplicated boundary vertex ids; the position of an id
    /// is its condensed node index.
    ids: Vec<VertexId>,
}

impl BoundaryIndexMap {
    /// Builds the map from an iterator of boundary ids (need not be
    /// sorted or unique).
    pub fn from_ids(ids: impl IntoIterator<Item = VertexId>) -> Self {
        let mut ids: Vec<VertexId> = ids.into_iter().collect();
        ids.sort_unstable();
        ids.dedup();
        Self { ids }
    }

    /// The condensed node index of `v`, when `v` is a boundary vertex.
    pub fn index_of(&self, v: VertexId) -> Option<u32> {
        self.ids.binary_search(&v).ok().map(|i| i as u32)
    }

    /// The vertex id at condensed node index `i`.
    pub fn id_at(&self, i: u32) -> VertexId {
        self.ids[i as usize]
    }

    /// All boundary ids in index order.
    pub fn ids(&self) -> &[VertexId] {
        &self.ids
    }

    /// Number of mapped boundary vertices.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// True when no boundary vertices are mapped.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Heap + inline bytes held by the map.
    pub fn size_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.ids.capacity() * std::mem::size_of::<VertexId>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_answers_within_horizon() {
        // levels: 1 seed, 2 at d=1, 3 at d=2; cut off there.
        let p = LevelProfile::new(vec![1, 2, 3], false);
        assert!(!p.is_complete());
        assert_eq!(p.horizon(), 2);
        assert!(p.exact_for(2));
        assert!(!p.exact_for(3));
        assert_eq!(p.answer(1), Some((3, vec![1, 2])));
        assert_eq!(p.answer(2), Some((6, vec![1, 2, 3])));
        assert_eq!(p.answer(3), None);
    }

    #[test]
    fn complete_profile_answers_any_k_and_trims() {
        let p = LevelProfile::new(vec![1, 4, 0], true);
        // k beyond the horizon clamps; trailing zero levels trim.
        assert_eq!(p.answer(10), Some((5, vec![1, 4])));
        assert_eq!(p.answer(0), Some((1, vec![1])));
    }

    #[test]
    fn partition_reach_keep_rules() {
        let mut pr = PartitionReach::new(2, 3);
        pr.record_gain(0, 1, 2);
        // Complete source 0: only level 2 in partition 1 is kept.
        assert!(pr.keep(0, 1, 2));
        assert!(!pr.keep(0, 1, 1));
        assert!(!pr.keep(0, 0, 2));
        // Representable ceiling: level >= 63 always kept.
        assert!(pr.keep(0, 0, 63));
        assert!(pr.keep(0, 0, 64));
        // Incomplete source 1 with horizon 4: everything past 4 kept.
        pr.record_gain(1, 2, 3);
        pr.mark_incomplete(1, 4);
        assert!(pr.keep(1, 0, 5));
        assert!(pr.keep(1, 2, 3));
        assert!(!pr.keep(1, 2, 4)); // within budget, no gain recorded
        assert!(!pr.keep(1, 0, 0));
    }

    #[test]
    fn mark_incomplete_at_representable_ceiling() {
        let mut pr = PartitionReach::new(1, 1);
        pr.mark_incomplete(0, 63);
        assert!(pr.keep(0, 0, 63));
        assert!(pr.keep(0, 0, 100));
        assert!(!pr.keep(0, 0, 62));
    }

    #[test]
    fn two_hop_on_a_path() {
        // 0 → 1 → 2, plus 3 isolated.
        let fwd = vec![vec![(1, 1)], vec![(2, 1)], vec![], vec![]];
        let labels = TwoHopLabels::build(4, &fwd, &[1, 0, 2, 3]);
        assert_eq!(labels.query_dist(0, 2), Some(2));
        assert_eq!(labels.query_dist(0, 1), Some(1));
        assert!(labels.reaches(1, 2));
        assert!(!labels.reaches(2, 0));
        assert!(!labels.reaches(0, 3));
        assert!(labels.reaches(3, 3));
        assert!(labels.size_bytes() > 0);
    }

    #[test]
    fn two_hop_pruning_stays_correct_on_a_grid() {
        // 4×4 directed grid (right and down edges); ground truth is
        // reachability iff target is right/below in both coordinates.
        let n = 16usize;
        let at = |r: usize, c: usize| (r * 4 + c) as u32;
        let mut fwd: Vec<Vec<(u32, u32)>> = vec![Vec::new(); n];
        for r in 0..4 {
            for c in 0..4 {
                if c + 1 < 4 {
                    fwd[at(r, c) as usize].push((at(r, c + 1), 1));
                }
                if r + 1 < 4 {
                    fwd[at(r, c) as usize].push((at(r + 1, c), 1));
                }
            }
        }
        // Hub-ish order: center nodes first.
        let mut order: Vec<u32> = (0..n as u32).collect();
        order.sort_by_key(|&v| {
            let (r, c) = (v / 4, v % 4);
            (r as i32 - 2).abs() + (c as i32 - 2).abs()
        });
        let labels = TwoHopLabels::build(n, &fwd, &order);
        for u in 0..n as u32 {
            for v in 0..n as u32 {
                let (ur, uc) = (u / 4, u % 4);
                let (vr, vc) = (v / 4, v % 4);
                let expect = vr >= ur && vc >= uc;
                assert_eq!(labels.reaches(u, v), expect, "{u} -> {v}");
                if expect {
                    let d = (vr - ur) + (vc - uc);
                    assert_eq!(labels.query_dist(u, v), Some(d), "{u} -> {v}");
                }
            }
        }
    }

    #[test]
    fn boundary_map_round_trips() {
        let m = BoundaryIndexMap::from_ids([7u64, 3, 7, 11]);
        assert_eq!(m.len(), 3);
        assert_eq!(m.index_of(3), Some(0));
        assert_eq!(m.index_of(7), Some(1));
        assert_eq!(m.index_of(11), Some(2));
        assert_eq!(m.index_of(5), None);
        assert_eq!(m.id_at(2), 11);
        assert!(!m.is_empty());
    }
}
