//! Graph ingestion: deduplication, self-loop policy and vertex
//! re-indexing.
//!
//! §3.1: "Vertices are assigned to different partitions based on vertex
//! ID, which is re-indexed during graph ingestion." Re-indexing serves
//! two purposes in C-Graph: it makes IDs dense (so range partitioning
//! is meaningful) and, in [`ReindexMode::ByDegreeDesc`] mode, it places
//! high-degree hubs at low IDs so the hottest vertices share edge-set
//! blocks — the cache-locality argument of §3.2.

use crate::adjacency::Adjacency;
use crate::edge::{Edge, EdgeList};
use crate::types::VertexId;

/// How global IDs are assigned during ingestion.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ReindexMode {
    /// Keep input IDs (they must already be dense for partitioning to
    /// balance; isolated vertices are preserved).
    #[default]
    Identity,
    /// Compact: strip unused IDs, preserving relative order.
    Compact,
    /// Sort vertices by descending out-degree, then assign IDs 0..n.
    /// Hubs cluster at the front of the ID space.
    ByDegreeDesc,
}

/// Ingestion options.
#[derive(Clone, Copy, Debug)]
pub struct BuildOptions {
    /// ID assignment policy.
    pub reindex: ReindexMode,
    /// Drop duplicate (src, dst) pairs, keeping the first weight seen.
    pub dedup: bool,
    /// Drop self loops.
    pub drop_loops: bool,
    /// Also add the reverse of every edge (undirected input).
    pub symmetrize: bool,
}

impl Default for BuildOptions {
    fn default() -> Self {
        Self { reindex: ReindexMode::Identity, dedup: true, drop_loops: true, symmetrize: false }
    }
}

/// Result of ingestion: the cleaned edge list plus the mapping from
/// original to new vertex IDs (identity unless re-indexed).
#[derive(Debug)]
pub struct BuiltGraph {
    /// Cleaned, re-indexed edges.
    pub edges: EdgeList,
    /// `old_to_new[old] = new` (same length as the input universe).
    /// `None` when [`ReindexMode::Identity`] was used.
    pub old_to_new: Option<Vec<VertexId>>,
}

impl BuiltGraph {
    /// Builds the multi-modal adjacency from the cleaned edges.
    pub fn adjacency(&self) -> Adjacency {
        Adjacency::from_edges(self.edges.num_vertices(), self.edges.edges())
    }

    /// Translates an original vertex ID into the re-indexed space.
    pub fn map_vertex(&self, old: VertexId) -> VertexId {
        match &self.old_to_new {
            None => old,
            Some(m) => m[old as usize],
        }
    }
}

/// Staged ingestion of raw edges.
///
/// ```
/// use cgraph_graph::GraphBuilder;
/// let mut b = GraphBuilder::new();
/// b.add_pair(0, 1).add_pair(0, 1).add_pair(2, 2); // dup + self loop
/// let g = b.build();
/// assert_eq!(g.edges.len(), 1); // cleaned
/// ```
#[derive(Debug, Default)]
pub struct GraphBuilder {
    edges: EdgeList,
    options: BuildOptions,
}

impl GraphBuilder {
    /// Creates a builder with default options.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a builder with explicit options.
    pub fn with_options(options: BuildOptions) -> Self {
        Self { edges: EdgeList::new(), options }
    }

    /// Adds one edge.
    pub fn add_edge(&mut self, e: Edge) -> &mut Self {
        self.edges.push(e);
        self
    }

    /// Adds an unweighted edge.
    pub fn add_pair(&mut self, src: VertexId, dst: VertexId) -> &mut Self {
        self.edges.push_pair(src, dst);
        self
    }

    /// Adds every edge from an existing list.
    pub fn add_edge_list(&mut self, l: &EdgeList) -> &mut Self {
        for &e in l.edges() {
            self.edges.push(e);
        }
        self.edges.set_num_vertices(l.num_vertices());
        self
    }

    /// Number of staged edges.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// True when no edges staged.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Runs the ingestion pipeline: symmetrize → drop loops → dedup →
    /// re-index.
    pub fn build(mut self) -> BuiltGraph {
        if self.options.symmetrize {
            self.edges.symmetrize();
        }
        let n = self.edges.num_vertices();
        let mut edges = self.edges.into_edges();
        if self.options.drop_loops {
            edges.retain(|e| !e.is_loop());
        }
        if self.options.dedup {
            edges.sort_unstable_by_key(|a| (a.src, a.dst));
            edges.dedup_by(|a, b| a.src == b.src && a.dst == b.dst);
        }
        let (edges, old_to_new, new_n) = match self.options.reindex {
            ReindexMode::Identity => (edges, None, n),
            ReindexMode::Compact => {
                let mut used = vec![false; n as usize];
                for e in &edges {
                    used[e.src as usize] = true;
                    used[e.dst as usize] = true;
                }
                let mut map = vec![0 as VertexId; n as usize];
                let mut next = 0 as VertexId;
                for (old, &u) in used.iter().enumerate() {
                    if u {
                        map[old] = next;
                        next += 1;
                    }
                }
                let remapped = remap(edges, &map);
                (remapped, Some(map), next)
            }
            ReindexMode::ByDegreeDesc => {
                let mut deg = vec![0u64; n as usize];
                for e in &edges {
                    deg[e.src as usize] += 1;
                }
                let mut order: Vec<VertexId> = (0..n).collect();
                // Stable tie-break on the original ID keeps the result
                // deterministic across runs.
                order.sort_by_key(|&v| (std::cmp::Reverse(deg[v as usize]), v));
                let mut map = vec![0 as VertexId; n as usize];
                for (new, &old) in order.iter().enumerate() {
                    map[old as usize] = new as VertexId;
                }
                let remapped = remap(edges, &map);
                (remapped, Some(map), n)
            }
        };
        let mut list = EdgeList::with_num_vertices(new_n);
        for e in edges {
            list.push(e);
        }
        list.set_num_vertices(new_n);
        BuiltGraph { edges: list, old_to_new }
    }
}

fn remap(mut edges: Vec<Edge>, map: &[VertexId]) -> Vec<Edge> {
    for e in &mut edges {
        e.src = map[e.src as usize];
        e.dst = map[e.dst as usize];
    }
    edges
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dedup_and_loops() {
        let mut b = GraphBuilder::new();
        b.add_pair(0, 1).add_pair(0, 1).add_pair(2, 2).add_pair(1, 0);
        let g = b.build();
        assert_eq!(g.edges.len(), 2); // duplicate and loop removed
    }

    #[test]
    fn keep_loops_when_asked() {
        let mut b =
            GraphBuilder::with_options(BuildOptions { drop_loops: false, ..Default::default() });
        b.add_pair(2, 2);
        assert_eq!(b.build().edges.len(), 1);
    }

    #[test]
    fn symmetrize_then_dedup() {
        let mut b =
            GraphBuilder::with_options(BuildOptions { symmetrize: true, ..Default::default() });
        // (0,1) and (1,0) both present: symmetrizing creates duplicates
        // that dedup must collapse.
        b.add_pair(0, 1).add_pair(1, 0);
        let g = b.build();
        assert_eq!(g.edges.len(), 2);
    }

    #[test]
    fn compact_strips_gaps() {
        let mut b = GraphBuilder::with_options(BuildOptions {
            reindex: ReindexMode::Compact,
            ..Default::default()
        });
        b.add_pair(10, 20).add_pair(20, 30);
        let g = b.build();
        assert_eq!(g.edges.num_vertices(), 3);
        assert_eq!(g.map_vertex(10), 0);
        assert_eq!(g.map_vertex(20), 1);
        assert_eq!(g.map_vertex(30), 2);
    }

    #[test]
    fn degree_desc_puts_hub_first() {
        let mut b = GraphBuilder::with_options(BuildOptions {
            reindex: ReindexMode::ByDegreeDesc,
            ..Default::default()
        });
        // vertex 3 has out-degree 3, others less.
        b.add_pair(3, 0).add_pair(3, 1).add_pair(3, 2).add_pair(0, 1);
        let g = b.build();
        assert_eq!(g.map_vertex(3), 0);
        // structure preserved: new hub still has degree 3
        let adj = g.adjacency();
        assert_eq!(adj.degree(0), 3);
    }

    #[test]
    fn degree_desc_is_deterministic_on_ties() {
        let build = || {
            let mut b = GraphBuilder::with_options(BuildOptions {
                reindex: ReindexMode::ByDegreeDesc,
                ..Default::default()
            });
            b.add_pair(5, 1).add_pair(4, 2).add_pair(3, 0);
            b.build().old_to_new.unwrap()
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn adjacency_roundtrip() {
        let mut b = GraphBuilder::new();
        b.add_pair(0, 1).add_pair(1, 2);
        let g = b.build();
        let a = g.adjacency();
        assert_eq!(a.num_edges(), 2);
        assert_eq!(a.neighbors(1), &[2]);
    }
}
