//! Edge-set based graph representation (§3.2).
//!
//! Each subgraph partition is "further converted into a set of
//! edge-sets. Each edge-set contains vertices within a certain range by
//! vertex ID" — i.e. the adjacency matrix is blocked into a 2D grid of
//! (source-range × destination-range) tiles, each tile stored as a
//! small CSR. Traversing out-edges scans tiles left-to-right within a
//! row stripe (Fig. 3a), so all destination writes of one tile land in
//! one destination range — the cache-locality argument of the paper.
//!
//! Row stripes are chosen by *evenly distributing the degrees* ("we
//! divide the vertices of each subgraph into a set of ranges by evenly
//! distributing the degrees", §3.2); column ranges split the
//! destination span evenly by vertex count.
//!
//! Real sparse graphs leave many tiles nearly empty, so the paper
//! **consolidates** small adjacent tiles "both horizontally and
//! vertically". [`ConsolidationPolicy`] controls the threshold; the
//! build performs a horizontal pass (within a stripe) and then a
//! vertical pass (across stripes, same column range).

use crate::edge::Edge;
use crate::types::{VertexId, VertexRange, Weight};

/// One edge-set tile: a CSR over `row_range × col_range`.
#[derive(Clone, Debug)]
pub struct EdgeSet {
    /// Source vertices covered (global IDs).
    pub row_range: VertexRange,
    /// Destination vertices covered (global IDs).
    pub col_range: VertexRange,
    /// `row_offsets[r]..row_offsets[r+1]` indexes `targets` for local
    /// row `r` (`row_range.start + r` globally).
    row_offsets: Vec<u32>,
    /// Destination vertices, **global** IDs, sorted per row.
    targets: Vec<VertexId>,
    weights: Vec<Weight>,
}

impl EdgeSet {
    fn build(row_range: VertexRange, col_range: VertexRange, mut edges: Vec<Edge>) -> Self {
        edges.sort_unstable_by_key(|a| (a.src, a.dst));
        let nrows = row_range.len() as usize;
        let mut row_offsets = vec![0u32; nrows + 1];
        for e in &edges {
            row_offsets[row_range.to_local(e.src) as usize + 1] += 1;
        }
        for r in 0..nrows {
            row_offsets[r + 1] += row_offsets[r];
        }
        let targets = edges.iter().map(|e| e.dst).collect();
        let weights = edges.iter().map(|e| e.weight).collect();
        Self { row_range, col_range, row_offsets, targets, weights }
    }

    /// Number of edges in the tile.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.targets.len()
    }

    /// Out-neighbours of global source `v` that land in this tile's
    /// column range. Empty if `v` is outside the row range.
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        if !self.row_range.contains(v) {
            return &[];
        }
        let r = self.row_range.to_local(v) as usize;
        &self.targets[self.row_offsets[r] as usize..self.row_offsets[r + 1] as usize]
    }

    /// Weights aligned with [`EdgeSet::neighbors`].
    #[inline]
    pub fn neighbor_weights(&self, v: VertexId) -> &[Weight] {
        if !self.row_range.contains(v) {
            return &[];
        }
        let r = self.row_range.to_local(v) as usize;
        &self.weights[self.row_offsets[r] as usize..self.row_offsets[r + 1] as usize]
    }

    /// Iterates `(local_row, neighbors, weights)` for non-empty rows.
    pub fn iter_rows(&self) -> impl Iterator<Item = (VertexId, &[VertexId], &[Weight])> + '_ {
        (0..self.row_range.len() as usize).filter_map(move |r| {
            let a = self.row_offsets[r] as usize;
            let b = self.row_offsets[r + 1] as usize;
            if a == b {
                None
            } else {
                Some((self.row_range.to_global(r as u32), &self.targets[a..b], &self.weights[a..b]))
            }
        })
    }

    /// Approximate heap footprint in bytes.
    pub fn size_bytes(&self) -> usize {
        self.row_offsets.len() * 4 + self.targets.len() * 8 + self.weights.len() * 4
    }

    /// The raw storage arrays `(row_offsets, targets, weights)` — used
    /// by the out-of-core tile store for serialization.
    pub fn raw_parts(&self) -> (&[u32], &[VertexId], &[Weight]) {
        (&self.row_offsets, &self.targets, &self.weights)
    }

    /// Reassembles a tile from raw parts (inverse of
    /// [`EdgeSet::raw_parts`]). Panics if the arrays are inconsistent.
    pub fn from_raw_parts(
        row_range: VertexRange,
        col_range: VertexRange,
        row_offsets: Vec<u32>,
        targets: Vec<VertexId>,
        weights: Vec<Weight>,
    ) -> Self {
        assert_eq!(row_offsets.len() as u64, row_range.len() + 1, "offset table length");
        assert_eq!(targets.len(), weights.len(), "targets/weights mismatch");
        assert_eq!(
            *row_offsets.last().expect("non-empty offsets") as usize,
            targets.len(),
            "final offset must equal edge count"
        );
        Self { row_range, col_range, row_offsets, targets, weights }
    }
}

/// Tile sizing and consolidation parameters.
#[derive(Clone, Copy, Debug)]
pub struct ConsolidationPolicy {
    /// Target number of edges per tile before consolidation — the
    /// paper sizes this so "the vertex values and associated edges fit
    /// into the last level cache".
    pub target_edges_per_set: usize,
    /// Tiles smaller than this are merged with a neighbour.
    pub min_edges_per_set: usize,
    /// Enable the horizontal (same stripe, adjacent column ranges) pass.
    pub horizontal: bool,
    /// Enable the vertical (adjacent stripes, same column range) pass.
    pub vertical: bool,
}

impl Default for ConsolidationPolicy {
    fn default() -> Self {
        Self {
            // ~ (vertex values + edges) of one tile ≈ a few MB LLC slice
            target_edges_per_set: 1 << 18,
            min_edges_per_set: 1 << 12,
            horizontal: true,
            vertical: true,
        }
    }
}

impl ConsolidationPolicy {
    /// A policy that produces exactly one tile — the flat-CSR ablation
    /// baseline (A3 in DESIGN.md).
    pub fn flat() -> Self {
        Self {
            target_edges_per_set: usize::MAX,
            min_edges_per_set: 0,
            horizontal: false,
            vertical: false,
        }
    }

    /// No consolidation, explicit tile target — used by tests that
    /// verify raw grid structure.
    pub fn grid(target_edges_per_set: usize) -> Self {
        Self { target_edges_per_set, min_edges_per_set: 0, horizontal: false, vertical: false }
    }
}

/// The stripe/column skeleton computed before tiling.
#[derive(Clone, Debug)]
pub struct EdgeSetLayout {
    /// Row stripes (source ranges), even by degree mass.
    pub row_ranges: Vec<VertexRange>,
    /// Column ranges (destination ranges), even by vertex count.
    pub col_ranges: Vec<VertexRange>,
}

/// A blocked out-edge view of a (sub)graph: edge-set tiles in row-major
/// order (all tiles of stripe 0 left→right, then stripe 1, …).
#[derive(Clone, Debug)]
pub struct EdgeSetGraph {
    sets: Vec<EdgeSet>,
    layout: EdgeSetLayout,
    row_span: VertexRange,
    col_span: VertexRange,
    num_edges: usize,
}

/// Splits `span` into ranges of roughly equal total `weight(v)` mass,
/// with at most `target` mass per range (always ≥ 1 vertex per range).
fn split_by_mass(
    span: VertexRange,
    mass: impl Fn(VertexId) -> u64,
    target: u64,
) -> Vec<VertexRange> {
    let mut ranges = Vec::new();
    let mut start = span.start;
    let mut acc = 0u64;
    for v in span.iter() {
        let m = mass(v);
        if acc > 0 && acc + m > target {
            ranges.push(VertexRange::new(start, v));
            start = v;
            acc = 0;
        }
        acc += m;
    }
    if start < span.end || ranges.is_empty() {
        ranges.push(VertexRange::new(start, span.end));
    }
    ranges
}

/// Splits `span` into `k` ranges of (nearly) equal vertex count.
fn split_even(span: VertexRange, k: usize) -> Vec<VertexRange> {
    let k = k.max(1) as u64;
    let n = span.len();
    let base = n / k;
    let rem = n % k;
    let mut ranges = Vec::with_capacity(k as usize);
    let mut start = span.start;
    for i in 0..k {
        let sz = base + if i < rem { 1 } else { 0 };
        let end = start + sz;
        ranges.push(VertexRange::new(start, end));
        start = end;
    }
    ranges
}

impl EdgeSetGraph {
    /// Builds the blocked representation for edges whose sources fall
    /// in `row_span` and destinations in `col_span`.
    ///
    /// Panics (debug) if an edge endpoint lies outside its span.
    pub fn build(
        edges: &[Edge],
        row_span: VertexRange,
        col_span: VertexRange,
        policy: ConsolidationPolicy,
    ) -> Self {
        // 1. Row degrees ("we first obtain vertex degrees …").
        let nrows = row_span.len() as usize;
        let mut deg = vec![0u64; nrows];
        for e in edges {
            debug_assert!(row_span.contains(e.src) && col_span.contains(e.dst));
            deg[row_span.to_local(e.src) as usize] += 1;
        }
        // 2. Stripe rows by even degree mass; split columns evenly so
        //    the grid is roughly square in edge mass.
        let total = edges.len() as u64;
        let target = (policy.target_edges_per_set as u64).max(1);
        let row_ranges = split_by_mass(row_span, |v| deg[row_span.to_local(v) as usize], target);
        let ncols = if policy.target_edges_per_set == usize::MAX {
            1
        } else {
            ((total / target.max(1)) as usize).clamp(1, 256).max(row_ranges.len().min(16))
        };
        let col_ranges = split_even(col_span, ncols);
        let layout =
            EdgeSetLayout { row_ranges: row_ranges.clone(), col_ranges: col_ranges.clone() };

        // 3. Bucket edges into grid cells ("we scan the edge list again
        //    and allocate each edge to an edge-set").
        let col_of = |d: VertexId| -> usize {
            // Column ranges are even-by-count: O(1) lookup.
            let n = col_span.len();
            let k = col_ranges.len() as u64;
            let base = n / k;
            let rem = n % k;
            let off = d - col_span.start;
            let boundary = rem * (base + 1);
            if off < boundary {
                (off / (base + 1)) as usize
            } else {
                (rem + (off - boundary) / base.max(1)) as usize
            }
        };
        let row_of = |s: VertexId| -> usize { row_ranges.partition_point(|r| r.end <= s) };
        let mut cells: Vec<Vec<Edge>> = vec![Vec::new(); row_ranges.len() * col_ranges.len()];
        for &e in edges {
            cells[row_of(e.src) * col_ranges.len() + col_of(e.dst)].push(e);
        }

        // 4. Consolidate horizontally within each stripe.
        #[derive(Debug)]
        struct ProtoSet {
            row: VertexRange,
            cols: (usize, usize), // inclusive col index range
            edges: Vec<Edge>,
        }
        let mut protos: Vec<Vec<ProtoSet>> = Vec::with_capacity(row_ranges.len());
        for (ri, row) in row_ranges.iter().enumerate() {
            let mut stripe: Vec<ProtoSet> = Vec::new();
            for ci in 0..col_ranges.len() {
                let edges = std::mem::take(&mut cells[ri * col_ranges.len() + ci]);
                let merge = policy.horizontal
                    && !stripe.is_empty()
                    && (edges.len() < policy.min_edges_per_set
                        || stripe.last().unwrap().edges.len() < policy.min_edges_per_set);
                if merge {
                    let last = stripe.last_mut().unwrap();
                    last.cols.1 = ci;
                    last.edges.extend(edges);
                } else {
                    stripe.push(ProtoSet { row: *row, cols: (ci, ci), edges });
                }
            }
            protos.push(stripe);
        }

        // 5. Consolidate vertically: a small stripe-cell merges into the
        //    col-aligned cell of the previous stripe when both are small.
        if policy.vertical {
            for ri in 1..protos.len() {
                let (head, tail) = protos.split_at_mut(ri);
                let prev = &mut head[ri - 1];
                let cur = &mut tail[0];
                if prev.len() == 1 && cur.len() == 1 {
                    let small = prev[0].edges.len() < policy.min_edges_per_set
                        || cur[0].edges.len() < policy.min_edges_per_set;
                    let aligned =
                        prev[0].cols == cur[0].cols && prev[0].row.end == cur[0].row.start;
                    if small && aligned {
                        let mut merged = prev.pop().unwrap();
                        let top = cur.remove(0);
                        merged.row = VertexRange::new(merged.row.start, top.row.end);
                        merged.edges.extend(top.edges);
                        cur.push(merged);
                    }
                }
            }
            protos.retain(|s| !s.is_empty());
        }

        // 6. Materialise tiles (row-major).
        let mut sets = Vec::new();
        for stripe in protos {
            for p in stripe {
                if p.edges.is_empty() {
                    continue;
                }
                let col = VertexRange::new(col_ranges[p.cols.0].start, col_ranges[p.cols.1].end);
                sets.push(EdgeSet::build(p.row, col, p.edges));
            }
        }
        Self { sets, layout, row_span, col_span, num_edges: edges.len() }
    }

    /// Builds with one tile per graph — flat CSR equivalent.
    pub fn flat(edges: &[Edge], row_span: VertexRange, col_span: VertexRange) -> Self {
        Self::build(edges, row_span, col_span, ConsolidationPolicy::flat())
    }

    /// All tiles in row-major scan order (the "left to right" traversal
    /// order of Fig. 3a).
    #[inline]
    pub fn sets(&self) -> &[EdgeSet] {
        &self.sets
    }

    /// The stripe/column skeleton.
    #[inline]
    pub fn layout(&self) -> &EdgeSetLayout {
        &self.layout
    }

    /// Source span covered.
    #[inline]
    pub fn row_span(&self) -> VertexRange {
        self.row_span
    }

    /// Destination span covered.
    #[inline]
    pub fn col_span(&self) -> VertexRange {
        self.col_span
    }

    /// Total edges stored.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Collects the out-neighbours of `v` across all tiles (test /
    /// debugging aid — engine loops iterate tiles directly).
    pub fn out_neighbors(&self, v: VertexId) -> Vec<VertexId> {
        let mut out: Vec<VertexId> =
            self.sets.iter().flat_map(|s| s.neighbors(v).iter().copied()).collect();
        out.sort_unstable();
        out
    }

    /// Approximate heap footprint in bytes.
    pub fn size_bytes(&self) -> usize {
        self.sets.iter().map(|s| s.size_bytes()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edge::EdgeList;

    fn edges(n: u64, pairs: &[(u64, u64)]) -> (EdgeList, VertexRange) {
        let mut l = EdgeList::with_num_vertices(n);
        for &(s, t) in pairs {
            l.push_pair(s, t);
        }
        (l, VertexRange::new(0, n))
    }

    #[test]
    fn flat_matches_input() {
        let (l, span) = edges(6, &[(0, 1), (0, 5), (2, 3), (5, 0)]);
        let g = EdgeSetGraph::flat(l.edges(), span, span);
        assert_eq!(g.sets().len(), 1);
        assert_eq!(g.out_neighbors(0), vec![1, 5]);
        assert_eq!(g.out_neighbors(5), vec![0]);
        assert_eq!(g.num_edges(), 4);
    }

    #[test]
    fn grid_preserves_all_edges() {
        let (l, span) = edges(
            32,
            &(0..32u64)
                .flat_map(|s| (0..32u64).filter(move |t| (s * 7 + t) % 5 == 0).map(move |t| (s, t)))
                .collect::<Vec<_>>(),
        );
        let g = EdgeSetGraph::build(l.edges(), span, span, ConsolidationPolicy::grid(16));
        assert!(g.sets().len() > 1, "expected multiple tiles");
        let total: usize = g.sets().iter().map(|s| s.num_edges()).sum();
        assert_eq!(total, l.len());
        // Per-vertex adjacency identical to flat.
        let flat = EdgeSetGraph::flat(l.edges(), span, span);
        for v in 0..32u64 {
            assert_eq!(g.out_neighbors(v), flat.out_neighbors(v), "vertex {v}");
        }
    }

    #[test]
    fn tiles_respect_ranges() {
        let (l, span) = edges(64, &(0..64u64).map(|v| (v, (v * 17 + 3) % 64)).collect::<Vec<_>>());
        let g = EdgeSetGraph::build(l.edges(), span, span, ConsolidationPolicy::grid(8));
        for s in g.sets() {
            for (src, ts, _) in s.iter_rows() {
                assert!(s.row_range.contains(src));
                for &t in ts {
                    assert!(s.col_range.contains(t), "{t} outside {:?}", s.col_range);
                }
            }
        }
    }

    #[test]
    fn consolidation_reduces_tile_count() {
        // Sparse graph → tiny tiles → consolidation should merge them.
        let pairs: Vec<(u64, u64)> = (0..256u64).map(|v| (v, (v + 1) % 256)).collect();
        let (l, span) = edges(256, &pairs);
        let grid = EdgeSetGraph::build(l.edges(), span, span, ConsolidationPolicy::grid(16));
        let consolidated = EdgeSetGraph::build(
            l.edges(),
            span,
            span,
            ConsolidationPolicy {
                target_edges_per_set: 16,
                min_edges_per_set: 8,
                horizontal: true,
                vertical: true,
            },
        );
        assert!(
            consolidated.sets().len() < grid.sets().len(),
            "{} !< {}",
            consolidated.sets().len(),
            grid.sets().len()
        );
        // Still lossless.
        for v in 0..256u64 {
            assert_eq!(consolidated.out_neighbors(v), grid.out_neighbors(v));
        }
    }

    #[test]
    fn subgraph_row_span() {
        // Rows restricted to [4, 8): a partition's local vertices.
        let mut l = EdgeList::with_num_vertices(16);
        for s in 4..8u64 {
            l.push_pair(s, (s + 5) % 16);
            l.push_pair(s, (s + 9) % 16);
        }
        let g = EdgeSetGraph::build(
            l.edges(),
            VertexRange::new(4, 8),
            VertexRange::new(0, 16),
            ConsolidationPolicy::default(),
        );
        assert_eq!(g.num_edges(), 8);
        assert_eq!(g.out_neighbors(4), vec![9, 13]);
        assert!(g.out_neighbors(0).is_empty());
    }

    #[test]
    fn empty_rows_skipped_in_iter() {
        let (l, span) = edges(8, &[(0, 1)]);
        let g = EdgeSetGraph::flat(l.edges(), span, span);
        let rows: Vec<_> = g.sets()[0].iter_rows().map(|(v, _, _)| v).collect();
        assert_eq!(rows, vec![0]);
    }

    #[test]
    fn split_even_covers_span() {
        let span = VertexRange::new(3, 20);
        let ranges = split_even(span, 5);
        assert_eq!(ranges.len(), 5);
        assert_eq!(ranges[0].start, 3);
        assert_eq!(ranges.last().unwrap().end, 20);
        let total: u64 = ranges.iter().map(|r| r.len()).sum();
        assert_eq!(total, span.len());
        for w in ranges.windows(2) {
            assert_eq!(w[0].end, w[1].start);
        }
    }

    #[test]
    fn split_by_mass_respects_target() {
        let span = VertexRange::new(0, 10);
        let mass = [5u64, 5, 5, 5, 1, 1, 1, 1, 1, 1];
        let ranges = split_by_mass(span, |v| mass[v as usize], 10);
        // Each range's mass ≤ 10 except possibly singletons.
        for r in &ranges {
            let m: u64 = r.iter().map(|v| mass[v as usize]).sum();
            assert!(m <= 10 || r.len() == 1, "range {r:?} mass {m}");
        }
        assert_eq!(ranges.iter().map(|r| r.len()).sum::<u64>(), 10);
    }
}
