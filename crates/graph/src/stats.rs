//! Graph statistics: degree distributions and summary numbers used by
//! Table 1 of the paper ("the response time highly depends on the
//! average degree of root vertices", §4.2) and by the dataset recipes.

use crate::csr::Csr;
use crate::types::VertexId;

/// Degree summary of a graph (out-degrees over a CSR view).
#[derive(Clone, Debug, PartialEq)]
pub struct DegreeStats {
    /// Minimum out-degree.
    pub min: usize,
    /// Maximum out-degree.
    pub max: usize,
    /// Mean out-degree.
    pub mean: f64,
    /// Median out-degree.
    pub median: usize,
    /// Number of isolated (degree-0) vertices.
    pub isolated: usize,
}

impl DegreeStats {
    /// Computes degree stats from a CSR.
    pub fn from_csr(g: &Csr) -> Self {
        let n = g.num_vertices() as usize;
        if n == 0 {
            return Self { min: 0, max: 0, mean: 0.0, median: 0, isolated: 0 };
        }
        let mut degs: Vec<usize> = (0..n).map(|v| g.degree(v as VertexId)).collect();
        degs.sort_unstable();
        let isolated = degs.iter().take_while(|&&d| d == 0).count();
        Self {
            min: degs[0],
            max: degs[n - 1],
            mean: g.num_edges() as f64 / n as f64,
            median: degs[n / 2],
            isolated,
        }
    }
}

/// Top-level summary used by dataset tables.
#[derive(Clone, Debug)]
pub struct GraphStats {
    /// Vertex count.
    pub num_vertices: u64,
    /// Edge count.
    pub num_edges: usize,
    /// Degree summary.
    pub degrees: DegreeStats,
}

impl GraphStats {
    /// Computes stats from a CSR.
    pub fn from_csr(g: &Csr) -> Self {
        Self {
            num_vertices: g.num_vertices(),
            num_edges: g.num_edges(),
            degrees: DegreeStats::from_csr(g),
        }
    }

    /// Edge/vertex ratio — the invariant the paper's semi-synthetic
    /// scaling preserves ("keeping the edge/vertex ratio of the
    /// Friendster", §4.1).
    pub fn edge_vertex_ratio(&self) -> f64 {
        if self.num_vertices == 0 {
            0.0
        } else {
            self.num_edges as f64 / self.num_vertices as f64
        }
    }
}

/// Out-degree histogram with power-of-two buckets: `hist[i]` counts
/// vertices with degree in `[2^i, 2^(i+1))`; bucket 0 holds degree 0–1.
pub fn degree_histogram(g: &Csr) -> Vec<usize> {
    let mut hist = vec![0usize; 1];
    for v in 0..g.num_vertices() {
        let d = g.degree(v);
        let bucket = if d <= 1 { 0 } else { (usize::BITS - d.leading_zeros()) as usize - 1 };
        if bucket >= hist.len() {
            hist.resize(bucket + 1, 0);
        }
        hist[bucket] += 1;
    }
    hist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edge::EdgeList;

    fn star(n: u64) -> Csr {
        let l: EdgeList = (1..n).map(|t| (0u64, t)).collect();
        Csr::from_edges(n, l.edges())
    }

    #[test]
    fn star_stats() {
        let g = star(11);
        let s = GraphStats::from_csr(&g);
        assert_eq!(s.num_vertices, 11);
        assert_eq!(s.num_edges, 10);
        assert_eq!(s.degrees.max, 10);
        assert_eq!(s.degrees.min, 0);
        assert_eq!(s.degrees.isolated, 10); // all leaves have out-degree 0
        assert!((s.edge_vertex_ratio() - 10.0 / 11.0).abs() < 1e-12);
    }

    #[test]
    fn empty_graph_stats() {
        let g = Csr::from_edges(0, &[]);
        let s = GraphStats::from_csr(&g);
        assert_eq!(s.num_vertices, 0);
        assert_eq!(s.edge_vertex_ratio(), 0.0);
    }

    #[test]
    fn histogram_buckets() {
        let g = star(10); // one vertex of degree 9, nine of degree 0
        let h = degree_histogram(&g);
        assert_eq!(h[0], 9);
        // degree 9 → bucket floor(log2(9)) = 3
        assert_eq!(h[3], 1);
    }
}
