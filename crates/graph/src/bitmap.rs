//! Bit-level vertex state.
//!
//! §3.5: "Instead of maintaining a task queue or set, we implement the
//! approach introduced in MS-BFS to track concurrent graph traversal
//! frontier and visited status … For each query, we use 2 bits to
//! indicate if a vertex exists in the current or next frontier, and 1
//! bit to track if it has been visited. … The frontier, frontierNext
//! and visited are stored in arrays for each vertex to provide
//! constant-time access."
//!
//! Two layouts live here:
//!
//! * [`Bitmap`] — one bit per vertex, used for single-query frontiers
//!   and the shared global visited state.
//! * [`LaneMatrix`] — one 64-bit word per vertex, one *lane* (bit
//!   position) per query in a concurrent batch. A whole batch's
//!   frontier membership for a vertex is read/ORed in a single load,
//!   which is exactly the data-locality argument of Fig. 6.

/// A fixed-size bitmap over vertices `0..len`.
///
/// ```
/// use cgraph_graph::Bitmap;
/// let mut visited = Bitmap::new(100);
/// assert!(!visited.set(42)); // first visit
/// assert!(visited.set(42));  // already visited
/// assert_eq!(visited.iter_ones().collect::<Vec<_>>(), vec![42]);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Bitmap {
    words: Vec<u64>,
    len: usize,
}

impl Bitmap {
    /// Creates an all-zero bitmap covering `len` vertices.
    pub fn new(len: usize) -> Self {
        Self { words: vec![0; len.div_ceil(64)], len }
    }

    /// Number of vertices covered.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the bitmap covers zero vertices.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Gets bit `i`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        self.words[i >> 6] & (1u64 << (i & 63)) != 0
    }

    /// Sets bit `i` to 1; returns its previous value (handy for
    /// "was this the first visit?" checks).
    #[inline]
    pub fn set(&mut self, i: usize) -> bool {
        debug_assert!(i < self.len);
        let w = &mut self.words[i >> 6];
        let mask = 1u64 << (i & 63);
        let old = *w & mask != 0;
        *w |= mask;
        old
    }

    /// Clears bit `i`.
    #[inline]
    pub fn clear(&mut self, i: usize) {
        debug_assert!(i < self.len);
        self.words[i >> 6] &= !(1u64 << (i & 63));
    }

    /// Zeroes the whole bitmap (keeps capacity).
    pub fn clear_all(&mut self) {
        self.words.fill(0);
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// True if no bits are set.
    pub fn all_zero(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// In-place union: `self |= other`. Panics on length mismatch.
    pub fn union_with(&mut self, other: &Bitmap) {
        assert_eq!(self.len, other.len);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// In-place difference: `self &= !other`. Panics on length mismatch.
    pub fn subtract(&mut self, other: &Bitmap) {
        assert_eq!(self.len, other.len);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= !b;
        }
    }

    /// Iterates indices of set bits in ascending order.
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut w = w;
            std::iter::from_fn(move || {
                if w == 0 {
                    None
                } else {
                    let bit = w.trailing_zeros() as usize;
                    w &= w - 1;
                    Some((wi << 6) | bit)
                }
            })
        })
    }

    /// Raw word storage (read-only).
    #[inline]
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Heap bytes used.
    pub fn size_bytes(&self) -> usize {
        self.words.len() * 8
    }
}

/// Number of query lanes packed in one [`LaneMatrix`] word. The paper
/// sizes the batch from "hardware parameters, for example, the length
/// of the cache line"; one 64-bit word per vertex is the MS-BFS choice.
pub const LANES: usize = 64;

/// A `num_vertices × 64` bit matrix: `word(v)` holds, for vertex `v`,
/// one bit per query lane. Used for `frontier`, `frontierNext` and
/// `visited` in the concurrent (batched) traversal engine.
///
/// ```
/// use cgraph_graph::LaneMatrix;
/// let mut frontier = LaneMatrix::new(10);
/// frontier.set(3, 0);                      // query 0's frontier holds vertex 3
/// frontier.set(3, 7);                      // so does query 7's
/// assert_eq!(frontier.word(3), 0b1000_0001);
/// assert_eq!(frontier.or_new(3, 0b11), 0b10); // only lane 1 is new
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LaneMatrix {
    words: Vec<u64>,
}

impl LaneMatrix {
    /// Creates an all-zero matrix for `num_vertices` vertices.
    pub fn new(num_vertices: usize) -> Self {
        Self { words: vec![0; num_vertices] }
    }

    /// Number of vertices (rows).
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.words.len()
    }

    /// The full lane word of vertex `v`.
    #[inline]
    pub fn word(&self, v: usize) -> u64 {
        self.words[v]
    }

    /// ORs `mask` into vertex `v`'s word, returning the bits that were
    /// newly set (i.e. `mask & !old`).
    #[inline]
    pub fn or_new(&mut self, v: usize, mask: u64) -> u64 {
        let old = self.words[v];
        self.words[v] = old | mask;
        mask & !old
    }

    /// Overwrites vertex `v`'s word.
    #[inline]
    pub fn set_word(&mut self, v: usize, word: u64) {
        self.words[v] = word;
    }

    /// Tests lane `q` of vertex `v`.
    #[inline]
    pub fn get(&self, v: usize, q: usize) -> bool {
        debug_assert!(q < LANES);
        self.words[v] & (1u64 << q) != 0
    }

    /// Sets lane `q` of vertex `v`.
    #[inline]
    pub fn set(&mut self, v: usize, q: usize) {
        debug_assert!(q < LANES);
        self.words[v] |= 1u64 << q;
    }

    /// Zeroes every word (keeps capacity) — used when recycling the
    /// matrix between query batches (dynamic resource allocation, §3.3).
    pub fn clear_all(&mut self) {
        self.words.fill(0);
    }

    /// True if every word is zero (batch traversal has terminated).
    pub fn all_zero(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Total number of set (vertex, lane) pairs.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Iterates `(vertex, word)` rows whose word is non-zero.
    pub fn iter_nonzero(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.words.iter().copied().enumerate().filter(|&(_, w)| w != 0)
    }

    /// Swaps storage with another matrix (frontier ↔ frontierNext flip
    /// at the end of each hop).
    pub fn swap(&mut self, other: &mut LaneMatrix) {
        std::mem::swap(&mut self.words, &mut other.words);
    }

    /// Raw words (read-only), indexed by vertex.
    #[inline]
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Mutable raw words, for engine inner loops.
    #[inline]
    pub fn words_mut(&mut self) -> &mut [u64] {
        &mut self.words
    }

    /// Heap bytes used.
    pub fn size_bytes(&self) -> usize {
        self.words.len() * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bitmap_set_get_clear() {
        let mut b = Bitmap::new(130);
        assert!(!b.get(0));
        assert!(!b.set(0));
        assert!(b.set(0)); // second set reports previously-set
        assert!(b.get(0));
        b.set(129);
        assert!(b.get(129));
        b.clear(129);
        assert!(!b.get(129));
        assert_eq!(b.count_ones(), 1);
    }

    #[test]
    fn bitmap_iter_ones() {
        let mut b = Bitmap::new(200);
        for i in [0usize, 63, 64, 65, 199] {
            b.set(i);
        }
        let ones: Vec<_> = b.iter_ones().collect();
        assert_eq!(ones, vec![0, 63, 64, 65, 199]);
    }

    #[test]
    fn bitmap_union_subtract() {
        let mut a = Bitmap::new(70);
        let mut b = Bitmap::new(70);
        a.set(1);
        b.set(1);
        b.set(69);
        a.union_with(&b);
        assert!(a.get(69));
        a.subtract(&b);
        assert!(a.all_zero());
    }

    #[test]
    fn lane_or_new_reports_fresh_bits() {
        let mut m = LaneMatrix::new(4);
        assert_eq!(m.or_new(2, 0b1010), 0b1010);
        assert_eq!(m.or_new(2, 0b1100), 0b0100); // 0b1000 already set
        assert_eq!(m.word(2), 0b1110);
    }

    #[test]
    fn lane_get_set() {
        let mut m = LaneMatrix::new(2);
        m.set(1, 63);
        assert!(m.get(1, 63));
        assert!(!m.get(1, 62));
        assert!(!m.get(0, 63));
        assert_eq!(m.count_ones(), 1);
    }

    #[test]
    fn lane_swap_and_clear() {
        let mut a = LaneMatrix::new(3);
        let mut b = LaneMatrix::new(3);
        a.set_word(0, 7);
        a.swap(&mut b);
        assert!(a.all_zero());
        assert_eq!(b.word(0), 7);
        b.clear_all();
        assert!(b.all_zero());
    }

    #[test]
    fn lane_iter_nonzero() {
        let mut m = LaneMatrix::new(5);
        m.set_word(1, 3);
        m.set_word(4, 8);
        let rows: Vec<_> = m.iter_nonzero().collect();
        assert_eq!(rows, vec![(1, 3), (4, 8)]);
    }

    #[test]
    fn empty_bitmap() {
        let b = Bitmap::new(0);
        assert!(b.is_empty());
        assert!(b.all_zero());
        assert_eq!(b.iter_ones().count(), 0);
    }
}
