//! Bit-level vertex state.
//!
//! §3.5: "Instead of maintaining a task queue or set, we implement the
//! approach introduced in MS-BFS to track concurrent graph traversal
//! frontier and visited status … For each query, we use 2 bits to
//! indicate if a vertex exists in the current or next frontier, and 1
//! bit to track if it has been visited. … The frontier, frontierNext
//! and visited are stored in arrays for each vertex to provide
//! constant-time access."
//!
//! Two layouts live here:
//!
//! * [`Bitmap`] — one bit per vertex, used for single-query frontiers
//!   and the shared global visited state.
//! * [`LaneMatrix`] — one 64-bit word per vertex, one *lane* (bit
//!   position) per query in a concurrent batch. A whole batch's
//!   frontier membership for a vertex is read/ORed in a single load,
//!   which is exactly the data-locality argument of Fig. 6.

/// A fixed-size bitmap over vertices `0..len`.
///
/// ```
/// use cgraph_graph::Bitmap;
/// let mut visited = Bitmap::new(100);
/// assert!(!visited.set(42)); // first visit
/// assert!(visited.set(42));  // already visited
/// assert_eq!(visited.iter_ones().collect::<Vec<_>>(), vec![42]);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Bitmap {
    words: Vec<u64>,
    len: usize,
}

impl Bitmap {
    /// Creates an all-zero bitmap covering `len` vertices.
    pub fn new(len: usize) -> Self {
        Self { words: vec![0; len.div_ceil(64)], len }
    }

    /// Number of vertices covered.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the bitmap covers zero vertices.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Gets bit `i`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        self.words[i >> 6] & (1u64 << (i & 63)) != 0
    }

    /// Sets bit `i` to 1; returns its previous value (handy for
    /// "was this the first visit?" checks).
    #[inline]
    pub fn set(&mut self, i: usize) -> bool {
        debug_assert!(i < self.len);
        let w = &mut self.words[i >> 6];
        let mask = 1u64 << (i & 63);
        let old = *w & mask != 0;
        *w |= mask;
        old
    }

    /// Clears bit `i`.
    #[inline]
    pub fn clear(&mut self, i: usize) {
        debug_assert!(i < self.len);
        self.words[i >> 6] &= !(1u64 << (i & 63));
    }

    /// Zeroes the whole bitmap (keeps capacity).
    pub fn clear_all(&mut self) {
        self.words.fill(0);
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// True if no bits are set.
    pub fn all_zero(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// In-place union: `self |= other`. Panics on length mismatch.
    pub fn union_with(&mut self, other: &Bitmap) {
        assert_eq!(self.len, other.len);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// In-place difference: `self &= !other`. Panics on length mismatch.
    pub fn subtract(&mut self, other: &Bitmap) {
        assert_eq!(self.len, other.len);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= !b;
        }
    }

    /// Iterates indices of set bits in ascending order.
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut w = w;
            std::iter::from_fn(move || {
                if w == 0 {
                    None
                } else {
                    let bit = w.trailing_zeros() as usize;
                    w &= w - 1;
                    Some((wi << 6) | bit)
                }
            })
        })
    }

    /// Raw word storage (read-only).
    #[inline]
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Heap bytes used.
    pub fn size_bytes(&self) -> usize {
        self.words.len() * 8
    }
}

/// Number of query lanes packed in one [`LaneMatrix`] word. The paper
/// sizes the batch from "hardware parameters, for example, the length
/// of the cache line"; one 64-bit word per vertex is the MS-BFS choice
/// and remains the default (and narrowest) batch width.
pub const LANES: usize = 64;

/// Bits per lane word.
pub const WORD_BITS: usize = 64;

/// Widest supported batch: 512 lanes = 8 words per vertex (one cache
/// line of lane state per matrix per vertex).
pub const MAX_LANES: usize = 512;

/// Words per vertex at [`MAX_LANES`].
pub const MAX_LANE_WORDS: usize = MAX_LANES / WORD_BITS;

/// A validated runtime batch width `W ∈ {64, 128, 256, 512}`: the
/// number of query lanes packed per vertex, stored as `W/64` words.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct LaneWidth {
    words: usize,
}

impl LaneWidth {
    /// The MS-BFS single-word width (64 lanes).
    pub const W64: LaneWidth = LaneWidth { words: 1 };

    /// All supported widths, narrowest first.
    pub const ALL: [LaneWidth; 4] = [
        LaneWidth { words: 1 },
        LaneWidth { words: 2 },
        LaneWidth { words: 4 },
        LaneWidth { words: 8 },
    ];

    /// Validates `bits` as a supported width.
    pub fn new(bits: usize) -> Result<LaneWidth, String> {
        match bits {
            64 | 128 | 256 | 512 => Ok(LaneWidth { words: bits / WORD_BITS }),
            other => Err(format!("unsupported batch width {other} (expected 64, 128, 256 or 512)")),
        }
    }

    /// The narrowest width holding `lanes` lanes (`lanes` is clamped
    /// into `1..=MAX_LANES`).
    pub fn for_lanes(lanes: usize) -> LaneWidth {
        let lanes = lanes.clamp(1, MAX_LANES);
        let words = lanes.div_ceil(WORD_BITS).next_power_of_two();
        LaneWidth { words }
    }

    /// Width in lanes (bits).
    #[inline]
    pub fn bits(&self) -> usize {
        self.words * WORD_BITS
    }

    /// Words per vertex at this width.
    #[inline]
    pub fn words(&self) -> usize {
        self.words
    }

    /// The next narrower supported width, if any.
    pub fn narrower(&self) -> Option<LaneWidth> {
        (self.words > 1).then_some(LaneWidth { words: self.words / 2 })
    }
}

/// A lane set up to [`MAX_LANES`] wide: one bit per query lane, stored
/// as `nwords` active words. All binary operations require equal
/// widths (debug-asserted); the inactive tail words stay zero.
///
/// ```
/// use cgraph_graph::{LaneMask, LaneWidth};
/// let w = LaneWidth::new(128).unwrap();
/// let mut m = LaneMask::zero(w);
/// m.set(3);
/// m.set(100);
/// assert!(m.get(100));
/// assert_eq!(m.iter_ones().collect::<Vec<_>>(), vec![3, 100]);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LaneMask {
    words: [u64; MAX_LANE_WORDS],
    nwords: u8,
}

impl LaneMask {
    /// The all-zero mask at `width`.
    pub fn zero(width: LaneWidth) -> LaneMask {
        LaneMask { words: [0; MAX_LANE_WORDS], nwords: width.words() as u8 }
    }

    /// A mask with the low `lanes` bits set, at the narrowest width
    /// holding them.
    pub fn all(lanes: usize) -> LaneMask {
        let width = LaneWidth::for_lanes(lanes);
        let mut m = LaneMask::zero(width);
        for lane in 0..lanes {
            m.words[lane / WORD_BITS] |= 1u64 << (lane % WORD_BITS);
        }
        m
    }

    /// Builds a mask from a word slice (`words.len()` must be a valid
    /// width's word count).
    pub fn from_words(words: &[u64]) -> LaneMask {
        debug_assert!(matches!(words.len(), 1 | 2 | 4 | 8), "bad lane word count {}", words.len());
        let mut m = LaneMask { words: [0; MAX_LANE_WORDS], nwords: words.len() as u8 };
        m.words[..words.len()].copy_from_slice(words);
        m
    }

    /// The mask's width.
    #[inline]
    pub fn width(&self) -> LaneWidth {
        LaneWidth { words: self.nwords as usize }
    }

    /// Active words (length `width().words()`).
    #[inline]
    pub fn words(&self) -> &[u64] {
        &self.words[..self.nwords as usize]
    }

    /// The full fixed-size backing array (inactive tail is zero).
    #[inline]
    pub fn raw(&self) -> [u64; MAX_LANE_WORDS] {
        self.words
    }

    /// Tests lane `q`.
    #[inline]
    pub fn get(&self, q: usize) -> bool {
        debug_assert!(q < self.width().bits());
        self.words[q / WORD_BITS] & (1u64 << (q % WORD_BITS)) != 0
    }

    /// Sets lane `q`.
    #[inline]
    pub fn set(&mut self, q: usize) {
        debug_assert!(q < self.width().bits());
        self.words[q / WORD_BITS] |= 1u64 << (q % WORD_BITS);
    }

    /// `self |= other`.
    #[inline]
    pub fn or_assign(&mut self, other: &LaneMask) {
        debug_assert_eq!(self.nwords, other.nwords);
        for i in 0..self.nwords as usize {
            self.words[i] |= other.words[i];
        }
    }

    /// `self & other`.
    #[inline]
    pub fn and(&self, other: &LaneMask) -> LaneMask {
        debug_assert_eq!(self.nwords, other.nwords);
        let mut out = *self;
        for i in 0..self.nwords as usize {
            out.words[i] &= other.words[i];
        }
        out
    }

    /// `self & !other`.
    #[inline]
    pub fn and_not(&self, other: &LaneMask) -> LaneMask {
        debug_assert_eq!(self.nwords, other.nwords);
        let mut out = *self;
        for i in 0..self.nwords as usize {
            out.words[i] &= !other.words[i];
        }
        out
    }

    /// True if no lane is set.
    #[inline]
    pub fn is_zero(&self) -> bool {
        self.words[..self.nwords as usize].iter().all(|&w| w == 0)
    }

    /// True if every bit of `other` is also set in `self`.
    #[inline]
    pub fn covers(&self, other: &LaneMask) -> bool {
        debug_assert_eq!(self.nwords, other.nwords);
        (0..self.nwords as usize).all(|i| other.words[i] & !self.words[i] == 0)
    }

    /// Number of set lanes.
    pub fn count_ones(&self) -> usize {
        self.words[..self.nwords as usize].iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Iterates set lane indices in ascending order.
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.words[..self.nwords as usize].iter().enumerate().flat_map(|(wi, &w)| {
            let mut w = w;
            std::iter::from_fn(move || {
                if w == 0 {
                    None
                } else {
                    let bit = w.trailing_zeros() as usize;
                    w &= w - 1;
                    Some(wi * WORD_BITS + bit)
                }
            })
        })
    }
}

/// A `num_vertices × W` bit matrix: row `v` holds, for vertex `v`, one
/// bit per query lane in `W/64` consecutive words. Used for
/// `frontier`, `frontierNext` and `visited` in the concurrent
/// (batched) traversal engine. [`LaneMatrix::new`] builds the classic
/// single-word (64-lane) MS-BFS layout; [`LaneMatrix::with_width`]
/// widens the rows.
///
/// ```
/// use cgraph_graph::LaneMatrix;
/// let mut frontier = LaneMatrix::new(10);
/// frontier.set(3, 0);                      // query 0's frontier holds vertex 3
/// frontier.set(3, 7);                      // so does query 7's
/// assert_eq!(frontier.word(3), 0b1000_0001);
/// assert_eq!(frontier.or_new(3, 0b11), 0b10); // only lane 1 is new
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LaneMatrix {
    words: Vec<u64>,
    /// Words per row (`width.words()`).
    stride: usize,
}

impl LaneMatrix {
    /// Creates an all-zero single-word (64-lane) matrix for
    /// `num_vertices` vertices.
    pub fn new(num_vertices: usize) -> Self {
        Self::with_width(num_vertices, LaneWidth::W64)
    }

    /// Creates an all-zero matrix with `width.words()` words per row.
    pub fn with_width(num_vertices: usize, width: LaneWidth) -> Self {
        Self { words: vec![0; num_vertices * width.words()], stride: width.words() }
    }

    /// The row width.
    #[inline]
    pub fn width(&self) -> LaneWidth {
        LaneWidth { words: self.stride }
    }

    /// Number of vertices (rows).
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.words.len() / self.stride
    }

    /// The full lane word of vertex `v` (single-word matrices only).
    #[inline]
    pub fn word(&self, v: usize) -> u64 {
        debug_assert_eq!(self.stride, 1, "word() reads a single-word row");
        self.words[v]
    }

    /// The word group of vertex `v`.
    #[inline]
    pub fn row(&self, v: usize) -> &[u64] {
        &self.words[v * self.stride..(v + 1) * self.stride]
    }

    /// Mutable word group of vertex `v`.
    #[inline]
    pub fn row_mut(&mut self, v: usize) -> &mut [u64] {
        &mut self.words[v * self.stride..(v + 1) * self.stride]
    }

    /// ORs `mask` into vertex `v`'s word, returning the bits that were
    /// newly set (i.e. `mask & !old`). Single-word matrices only.
    #[inline]
    pub fn or_new(&mut self, v: usize, mask: u64) -> u64 {
        debug_assert_eq!(self.stride, 1, "or_new() writes a single-word row");
        let old = self.words[v];
        self.words[v] = old | mask;
        mask & !old
    }

    /// ORs `mask` into vertex `v`'s row. Returns true if any bit was
    /// newly set.
    #[inline]
    pub fn or_row(&mut self, v: usize, mask: &LaneMask) -> bool {
        debug_assert_eq!(mask.width().words(), self.stride);
        let row = self.row_mut(v);
        let mut fresh = false;
        for (r, &m) in row.iter_mut().zip(mask.words()) {
            fresh |= m & !*r != 0;
            *r |= m;
        }
        fresh
    }

    /// Vertex `v`'s row as a [`LaneMask`].
    #[inline]
    pub fn row_mask(&self, v: usize) -> LaneMask {
        LaneMask::from_words(self.row(v))
    }

    /// Overwrites vertex `v`'s word (single-word matrices only).
    #[inline]
    pub fn set_word(&mut self, v: usize, word: u64) {
        debug_assert_eq!(self.stride, 1, "set_word() writes a single-word row");
        self.words[v] = word;
    }

    /// Tests lane `q` of vertex `v`.
    #[inline]
    pub fn get(&self, v: usize, q: usize) -> bool {
        debug_assert!(q < self.stride * WORD_BITS);
        self.words[v * self.stride + q / WORD_BITS] & (1u64 << (q % WORD_BITS)) != 0
    }

    /// Sets lane `q` of vertex `v`.
    #[inline]
    pub fn set(&mut self, v: usize, q: usize) {
        debug_assert!(q < self.stride * WORD_BITS);
        self.words[v * self.stride + q / WORD_BITS] |= 1u64 << (q % WORD_BITS);
    }

    /// Zeroes every word (keeps capacity) — used when recycling the
    /// matrix between query batches (dynamic resource allocation, §3.3).
    pub fn clear_all(&mut self) {
        self.words.fill(0);
    }

    /// True if every word is zero (batch traversal has terminated).
    pub fn all_zero(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Total number of set (vertex, lane) pairs.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Iterates `(vertex, word)` rows whose word is non-zero
    /// (single-word matrices only).
    pub fn iter_nonzero(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        debug_assert_eq!(self.stride, 1, "iter_nonzero() reads single-word rows");
        self.words.iter().copied().enumerate().filter(|&(_, w)| w != 0)
    }

    /// Swaps storage with another matrix (frontier ↔ frontierNext flip
    /// at the end of each hop).
    pub fn swap(&mut self, other: &mut LaneMatrix) {
        debug_assert_eq!(self.stride, other.stride);
        std::mem::swap(&mut self.words, &mut other.words);
    }

    /// Raw words (read-only), row-major with `width().words()` words
    /// per vertex.
    #[inline]
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Mutable raw words, for engine inner loops.
    #[inline]
    pub fn words_mut(&mut self) -> &mut [u64] {
        &mut self.words
    }

    /// Heap bytes used.
    pub fn size_bytes(&self) -> usize {
        self.words.len() * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bitmap_set_get_clear() {
        let mut b = Bitmap::new(130);
        assert!(!b.get(0));
        assert!(!b.set(0));
        assert!(b.set(0)); // second set reports previously-set
        assert!(b.get(0));
        b.set(129);
        assert!(b.get(129));
        b.clear(129);
        assert!(!b.get(129));
        assert_eq!(b.count_ones(), 1);
    }

    #[test]
    fn bitmap_iter_ones() {
        let mut b = Bitmap::new(200);
        for i in [0usize, 63, 64, 65, 199] {
            b.set(i);
        }
        let ones: Vec<_> = b.iter_ones().collect();
        assert_eq!(ones, vec![0, 63, 64, 65, 199]);
    }

    #[test]
    fn bitmap_union_subtract() {
        let mut a = Bitmap::new(70);
        let mut b = Bitmap::new(70);
        a.set(1);
        b.set(1);
        b.set(69);
        a.union_with(&b);
        assert!(a.get(69));
        a.subtract(&b);
        assert!(a.all_zero());
    }

    #[test]
    fn lane_or_new_reports_fresh_bits() {
        let mut m = LaneMatrix::new(4);
        assert_eq!(m.or_new(2, 0b1010), 0b1010);
        assert_eq!(m.or_new(2, 0b1100), 0b0100); // 0b1000 already set
        assert_eq!(m.word(2), 0b1110);
    }

    #[test]
    fn lane_get_set() {
        let mut m = LaneMatrix::new(2);
        m.set(1, 63);
        assert!(m.get(1, 63));
        assert!(!m.get(1, 62));
        assert!(!m.get(0, 63));
        assert_eq!(m.count_ones(), 1);
    }

    #[test]
    fn lane_swap_and_clear() {
        let mut a = LaneMatrix::new(3);
        let mut b = LaneMatrix::new(3);
        a.set_word(0, 7);
        a.swap(&mut b);
        assert!(a.all_zero());
        assert_eq!(b.word(0), 7);
        b.clear_all();
        assert!(b.all_zero());
    }

    #[test]
    fn lane_iter_nonzero() {
        let mut m = LaneMatrix::new(5);
        m.set_word(1, 3);
        m.set_word(4, 8);
        let rows: Vec<_> = m.iter_nonzero().collect();
        assert_eq!(rows, vec![(1, 3), (4, 8)]);
    }

    #[test]
    fn empty_bitmap() {
        let b = Bitmap::new(0);
        assert!(b.is_empty());
        assert!(b.all_zero());
        assert_eq!(b.iter_ones().count(), 0);
    }

    #[test]
    fn lane_width_validation_and_fit() {
        assert!(LaneWidth::new(64).is_ok());
        assert!(LaneWidth::new(512).is_ok());
        assert!(LaneWidth::new(100).is_err());
        assert!(LaneWidth::new(1024).is_err());
        assert_eq!(LaneWidth::for_lanes(1).bits(), 64);
        assert_eq!(LaneWidth::for_lanes(64).bits(), 64);
        assert_eq!(LaneWidth::for_lanes(65).bits(), 128);
        assert_eq!(LaneWidth::for_lanes(129).bits(), 256);
        assert_eq!(LaneWidth::for_lanes(257).bits(), 512);
        assert_eq!(LaneWidth::for_lanes(9999).bits(), 512);
        assert_eq!(LaneWidth::new(256).unwrap().narrower(), Some(LaneWidth::new(128).unwrap()));
        assert_eq!(LaneWidth::W64.narrower(), None);
    }

    #[test]
    fn lane_mask_set_ops() {
        let mut a = LaneMask::zero(LaneWidth::new(256).unwrap());
        a.set(0);
        a.set(200);
        let mut b = LaneMask::zero(LaneWidth::new(256).unwrap());
        b.set(200);
        b.set(70);
        assert_eq!(a.and(&b).iter_ones().collect::<Vec<_>>(), vec![200]);
        assert_eq!(a.and_not(&b).iter_ones().collect::<Vec<_>>(), vec![0]);
        a.or_assign(&b);
        assert_eq!(a.count_ones(), 3);
        assert!(a.covers(&b));
        assert!(!b.covers(&a));
        assert!(!a.is_zero());
        assert!(LaneMask::zero(LaneWidth::W64).is_zero());
    }

    #[test]
    fn lane_mask_all_covers_exactly_the_low_lanes() {
        let m = LaneMask::all(130);
        assert_eq!(m.width().bits(), 256);
        assert_eq!(m.count_ones(), 130);
        assert!(m.get(129));
        assert!(!m.get(130));
        let full = LaneMask::all(64);
        assert_eq!(full.words(), &[u64::MAX]);
    }

    #[test]
    fn wide_matrix_rows_are_independent() {
        let w = LaneWidth::new(128).unwrap();
        let mut m = LaneMatrix::with_width(3, w);
        m.set(1, 0);
        m.set(1, 127);
        assert!(m.get(1, 127));
        assert!(!m.get(0, 127));
        assert!(!m.get(2, 0));
        assert_eq!(m.num_vertices(), 3);
        assert_eq!(m.row(1), &[1, 1u64 << 63]);
        assert_eq!(m.count_ones(), 2);

        let mut mask = LaneMask::zero(w);
        mask.set(127);
        mask.set(64);
        assert!(m.or_row(2, &mask), "fresh bits");
        assert!(!m.or_row(2, &mask), "nothing new the second time");
        assert_eq!(m.row_mask(2).iter_ones().collect::<Vec<_>>(), vec![64, 127]);
        assert_eq!(m.size_bytes(), 3 * 2 * 8);
    }
}
