//! Edge-delta overlays — the storage layer of the live mutation plane.
//!
//! # The delta/commit protocol
//!
//! The query plane freezes the graph at ingestion; this module is what
//! lets it move afterwards without ever showing a query a half-applied
//! write. The protocol has three stages:
//!
//! 1. **Buffer.** Callers describe changes as [`EdgeUpdate`]s grouped
//!    into [`UpdateBatch`]es. Buffered updates are *invisible*: no scan
//!    consults them, so queries keep reading the current snapshot.
//! 2. **Publish (overlay).** At `commit_epoch()` the service folds the
//!    buffered updates into one [`DeltaOverlay`] per partition — a
//!    per-source sorted adjacency delta (`inserts` rows plus `deletes`
//!    lists) keyed by the owning partition of the source vertex. Edge
//!    scans then consult the overlay *alongside* the base CSR/CSC
//!    edge-sets: base neighbours are filtered through the delete list
//!    and the insert row is appended, so the published graph is
//!    `(base ∖ deletes) ∪ inserts`. Publishing is cheap — the base
//!    edge-sets are shared untouched — and atomic: the engine value
//!    carrying the overlay replaces the previous one wholesale, and its
//!    `graph_epoch` is bumped.
//! 3. **Fold.** When the resident overlay outgrows a configured
//!    threshold, the commit instead rebuilds fresh CSR/CSC edge-sets
//!    per partition from the effective adjacency (see
//!    [`DeltaOverlay::merge_row`]) and starts over with an empty
//!    overlay. A fold changes the physical layout, never the logical
//!    graph — answers at a given epoch are identical whichever side of
//!    the threshold the commit landed on.
//!
//! Within one overlay row the state of a `(src, dst)` pair is
//! last-update-wins: an insert cancels a pending delete of the same
//! edge (and vice versa), so a row never says both "inserted" and
//! "deleted" about one destination.

use crate::types::{VertexId, Weight};
use std::collections::HashMap;

/// One edge mutation.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum EdgeUpdate {
    /// Insert (or re-weight) the edge `src -> dst`.
    Insert {
        /// Source vertex.
        src: VertexId,
        /// Destination vertex.
        dst: VertexId,
        /// Edge weight (reachability ignores it; folds preserve it).
        weight: Weight,
    },
    /// Delete every `src -> dst` edge.
    Delete {
        /// Source vertex.
        src: VertexId,
        /// Destination vertex.
        dst: VertexId,
    },
}

impl EdgeUpdate {
    /// An insert with the default weight `1.0`.
    pub fn insert(src: VertexId, dst: VertexId) -> Self {
        EdgeUpdate::Insert { src, dst, weight: 1.0 }
    }

    /// An insert with an explicit weight.
    pub fn insert_weighted(src: VertexId, dst: VertexId, weight: Weight) -> Self {
        EdgeUpdate::Insert { src, dst, weight }
    }

    /// A delete.
    pub fn delete(src: VertexId, dst: VertexId) -> Self {
        EdgeUpdate::Delete { src, dst }
    }

    /// The source vertex (the overlay is routed by its owner).
    pub fn src(&self) -> VertexId {
        match *self {
            EdgeUpdate::Insert { src, .. } | EdgeUpdate::Delete { src, .. } => src,
        }
    }

    /// The destination vertex.
    pub fn dst(&self) -> VertexId {
        match *self {
            EdgeUpdate::Insert { dst, .. } | EdgeUpdate::Delete { dst, .. } => dst,
        }
    }

    /// True for the insert variant.
    pub fn is_insert(&self) -> bool {
        matches!(self, EdgeUpdate::Insert { .. })
    }
}

/// An ordered group of edge mutations submitted as one unit.
///
/// A batch is only a staging buffer — nothing becomes visible to
/// queries until the service commits an epoch.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct UpdateBatch {
    updates: Vec<EdgeUpdate>,
}

impl UpdateBatch {
    /// An empty batch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an insert with the default weight.
    pub fn insert(&mut self, src: VertexId, dst: VertexId) -> &mut Self {
        self.updates.push(EdgeUpdate::insert(src, dst));
        self
    }

    /// Appends an insert with an explicit weight.
    pub fn insert_weighted(&mut self, src: VertexId, dst: VertexId, weight: Weight) -> &mut Self {
        self.updates.push(EdgeUpdate::insert_weighted(src, dst, weight));
        self
    }

    /// Appends a delete.
    pub fn delete(&mut self, src: VertexId, dst: VertexId) -> &mut Self {
        self.updates.push(EdgeUpdate::delete(src, dst));
        self
    }

    /// Appends an arbitrary update.
    pub fn push(&mut self, u: EdgeUpdate) -> &mut Self {
        self.updates.push(u);
        self
    }

    /// Number of updates in the batch.
    pub fn len(&self) -> usize {
        self.updates.len()
    }

    /// True when the batch holds no updates.
    pub fn is_empty(&self) -> bool {
        self.updates.is_empty()
    }

    /// The buffered updates, in submission order.
    pub fn updates(&self) -> &[EdgeUpdate] {
        &self.updates
    }

    /// Consumes the batch into its update vector.
    pub fn into_updates(self) -> Vec<EdgeUpdate> {
        self.updates
    }
}

impl FromIterator<EdgeUpdate> for UpdateBatch {
    fn from_iter<I: IntoIterator<Item = EdgeUpdate>>(iter: I) -> Self {
        Self { updates: iter.into_iter().collect() }
    }
}

/// The adjacency delta of one source vertex: destinations inserted
/// (sorted, with weights) and destinations deleted (sorted).
///
/// The two lists are disjoint — [`DeltaOverlay::apply`] maintains
/// last-update-wins, so a destination is inserted *or* deleted, never
/// both.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct DeltaRow {
    inserts: Vec<(VertexId, Weight)>,
    deletes: Vec<VertexId>,
}

impl DeltaRow {
    /// Inserted out-edges of this source, sorted by destination.
    pub fn inserts(&self) -> &[(VertexId, Weight)] {
        &self.inserts
    }

    /// Deleted destinations of this source, sorted.
    pub fn deletes(&self) -> &[VertexId] {
        &self.deletes
    }

    /// True when the base edge to `t` has been deleted (or re-inserted
    /// with a new weight, which supersedes the base copy at fold time).
    pub fn is_deleted(&self, t: VertexId) -> bool {
        self.deletes.binary_search(&t).is_ok()
    }

    /// True when this row re-inserts an edge to `t` (overriding any
    /// base copy's weight).
    pub fn overrides(&self, t: VertexId) -> bool {
        self.inserts.binary_search_by_key(&t, |e| e.0).is_ok()
    }

    /// Entries in this row (inserts + deletes).
    pub fn len(&self) -> usize {
        self.inserts.len() + self.deletes.len()
    }

    /// True when the row carries no delta.
    pub fn is_empty(&self) -> bool {
        self.inserts.is_empty() && self.deletes.is_empty()
    }
}

/// One partition's resident adjacency delta: a [`DeltaRow`] per source
/// vertex that has pending edge changes.
///
/// The overlay is immutable once published — commits build a new one
/// (cloning the old and applying the freshly buffered updates) and swap
/// it in with the new engine value, so in-flight scans keep reading the
/// overlay of their admission epoch.
#[derive(Clone, Debug, Default)]
pub struct DeltaOverlay {
    rows: HashMap<VertexId, DeltaRow>,
    num_inserts: usize,
    num_deletes: usize,
}

impl DeltaOverlay {
    /// An empty overlay.
    pub fn new() -> Self {
        Self::default()
    }

    /// Applies one update, keeping per-destination state
    /// last-update-wins (an insert cancels a pending delete of the same
    /// edge and vice versa).
    pub fn apply(&mut self, u: &EdgeUpdate) {
        let row = self.rows.entry(u.src()).or_default();
        match *u {
            EdgeUpdate::Insert { dst, weight, .. } => {
                if let Ok(i) = row.deletes.binary_search(&dst) {
                    row.deletes.remove(i);
                    self.num_deletes -= 1;
                }
                match row.inserts.binary_search_by_key(&dst, |e| e.0) {
                    Ok(i) => row.inserts[i].1 = weight,
                    Err(i) => {
                        row.inserts.insert(i, (dst, weight));
                        self.num_inserts += 1;
                    }
                }
            }
            EdgeUpdate::Delete { dst, .. } => {
                if let Ok(i) = row.inserts.binary_search_by_key(&dst, |e| e.0) {
                    row.inserts.remove(i);
                    self.num_inserts -= 1;
                }
                if let Err(i) = row.deletes.binary_search(&dst) {
                    row.deletes.insert(i, dst);
                    self.num_deletes += 1;
                }
            }
        }
    }

    /// The delta row of source `v`, if it has one.
    pub fn row(&self, v: VertexId) -> Option<&DeltaRow> {
        self.rows.get(&v).filter(|r| !r.is_empty())
    }

    /// Iterates every non-empty `(source, row)` pair (no defined
    /// order — scans OR idempotently, so order never matters).
    pub fn rows(&self) -> impl Iterator<Item = (VertexId, &DeltaRow)> {
        self.rows.iter().filter(|(_, r)| !r.is_empty()).map(|(&v, r)| (v, r))
    }

    /// Total delta entries (inserted edges + deleted edges).
    pub fn len(&self) -> usize {
        self.num_inserts + self.num_deletes
    }

    /// True when the overlay carries no delta.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Inserted edges resident in the overlay.
    pub fn num_inserts(&self) -> usize {
        self.num_inserts
    }

    /// Deleted edges resident in the overlay.
    pub fn num_deletes(&self) -> usize {
        self.num_deletes
    }

    /// Approximate heap bytes held by the overlay — what the scheduler
    /// cost model charges against the memory budget.
    pub fn size_bytes(&self) -> usize {
        self.rows.values().map(|r| 48 + r.inserts.len() * 12 + r.deletes.len() * 8).sum::<usize>()
    }

    /// The *effective* out-adjacency of source `v`: `base` (sorted by
    /// destination, as stored in the shard) with deleted and
    /// re-inserted destinations filtered out, then the insert row
    /// appended. This is the fold primitive: rebuilding every
    /// partition's edge-sets from `merge_row` output produces the
    /// logical graph the overlay was presenting.
    pub fn merge_row(&self, v: VertexId, base: &[(VertexId, Weight)]) -> Vec<(VertexId, Weight)> {
        match self.row(v) {
            None => base.to_vec(),
            Some(row) => {
                let mut out: Vec<(VertexId, Weight)> = base
                    .iter()
                    .filter(|&&(t, _)| !row.is_deleted(t) && !row.overrides(t))
                    .copied()
                    .collect();
                out.extend_from_slice(row.inserts());
                out.sort_unstable_by_key(|e| e.0);
                out
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_then_delete_leaves_delete() {
        let mut d = DeltaOverlay::new();
        d.apply(&EdgeUpdate::insert(1, 2));
        d.apply(&EdgeUpdate::delete(1, 2));
        let row = d.row(1).unwrap();
        assert!(row.is_deleted(2));
        assert!(row.inserts().is_empty());
        assert_eq!(d.len(), 1);
        assert_eq!(d.num_deletes(), 1);
    }

    #[test]
    fn delete_then_insert_leaves_insert() {
        let mut d = DeltaOverlay::new();
        d.apply(&EdgeUpdate::delete(3, 7));
        d.apply(&EdgeUpdate::insert_weighted(3, 7, 2.5));
        let row = d.row(3).unwrap();
        assert!(!row.is_deleted(7));
        assert_eq!(row.inserts(), &[(7, 2.5)]);
        assert_eq!(d.len(), 1);
        assert_eq!(d.num_inserts(), 1);
    }

    #[test]
    fn reinsert_overwrites_weight() {
        let mut d = DeltaOverlay::new();
        d.apply(&EdgeUpdate::insert_weighted(0, 1, 1.0));
        d.apply(&EdgeUpdate::insert_weighted(0, 1, 9.0));
        assert_eq!(d.row(0).unwrap().inserts(), &[(1, 9.0)]);
        assert_eq!(d.num_inserts(), 1);
    }

    #[test]
    fn rows_stay_sorted() {
        let mut d = DeltaOverlay::new();
        for dst in [9u64, 2, 5, 1] {
            d.apply(&EdgeUpdate::insert(4, dst));
            d.apply(&EdgeUpdate::delete(4, dst + 10));
        }
        let row = d.row(4).unwrap();
        let ins: Vec<u64> = row.inserts().iter().map(|e| e.0).collect();
        assert_eq!(ins, vec![1, 2, 5, 9]);
        assert_eq!(row.deletes(), &[11, 12, 15, 19]);
    }

    #[test]
    fn merge_row_filters_and_appends() {
        let mut d = DeltaOverlay::new();
        d.apply(&EdgeUpdate::delete(0, 2));
        d.apply(&EdgeUpdate::insert_weighted(0, 5, 3.0));
        d.apply(&EdgeUpdate::insert_weighted(0, 1, 7.0)); // overrides base weight
        let base = vec![(1u64, 1.0f32), (2, 1.0), (3, 1.0)];
        let merged = d.merge_row(0, &base);
        assert_eq!(merged, vec![(1, 7.0), (3, 1.0), (5, 3.0)]);
        // Untouched sources pass through unchanged.
        assert_eq!(d.merge_row(9, &base), base);
    }

    #[test]
    fn empty_rows_are_invisible() {
        let mut d = DeltaOverlay::new();
        d.apply(&EdgeUpdate::insert(1, 2));
        d.apply(&EdgeUpdate::delete(1, 2));
        d.apply(&EdgeUpdate::insert(1, 2));
        // net state: inserted. Now delete → row holds only the delete;
        // removing that too leaves an empty row that must not surface.
        d.apply(&EdgeUpdate::delete(1, 2));
        d.apply(&EdgeUpdate::insert(1, 2));
        assert!(d.row(1).is_some());
        assert_eq!(d.rows().count(), 1);
        assert!(d.size_bytes() > 0);
    }

    #[test]
    fn batch_builder_round_trips() {
        let mut b = UpdateBatch::new();
        b.insert(0, 1).delete(2, 3).insert_weighted(4, 5, 0.5);
        assert_eq!(b.len(), 3);
        assert!(!b.is_empty());
        assert_eq!(b.updates()[1], EdgeUpdate::delete(2, 3));
        let v = b.into_updates();
        assert!(v[0].is_insert());
        assert_eq!(v[2], EdgeUpdate::Insert { src: 4, dst: 5, weight: 0.5 });
    }
}
