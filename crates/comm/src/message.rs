//! Message envelopes and wire-size accounting.
//!
//! Messages are strongly typed (`M` is chosen by the engine); the only
//! requirement is [`WireSize`] so the network model can attribute
//! bytes. In the real system a message is "the boundary vertex ID with
//! its value along a traverse operator" (§3.3) — a few words — and the
//! simulated sizes mirror that.

use crate::MachineId;

/// What a message would cost on the wire, in bytes.
pub trait WireSize {
    /// Serialized size in bytes (headers excluded; the
    /// [`crate::netmodel::NetModel`] adds a fixed per-message header).
    fn wire_size(&self) -> usize;
}

impl WireSize for () {
    fn wire_size(&self) -> usize {
        0
    }
}

impl WireSize for u64 {
    fn wire_size(&self) -> usize {
        8
    }
}

impl WireSize for (u64, u64) {
    fn wire_size(&self) -> usize {
        16
    }
}

impl<T: WireSize> WireSize for Vec<T> {
    fn wire_size(&self) -> usize {
        self.iter().map(WireSize::wire_size).sum()
    }
}

/// A routed message.
#[derive(Clone, Debug, PartialEq)]
pub struct Envelope<M> {
    /// Sending machine.
    pub from: MachineId,
    /// Receiving machine.
    pub to: MachineId,
    /// Payload.
    pub payload: M,
}

impl<M> Envelope<M> {
    /// Creates an envelope.
    pub fn new(from: MachineId, to: MachineId, payload: M) -> Self {
        Self { from, to, payload }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_sizes() {
        assert_eq!(().wire_size(), 0);
        assert_eq!(7u64.wire_size(), 8);
        assert_eq!((1u64, 2u64).wire_size(), 16);
        assert_eq!(vec![1u64, 2, 3].wire_size(), 24);
    }

    #[test]
    fn envelope_fields() {
        let e = Envelope::new(0, 2, 42u64);
        assert_eq!((e.from, e.to, e.payload), (0, 2, 42));
    }
}
