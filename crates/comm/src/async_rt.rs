//! Quiescence detection for the asynchronous update mode.
//!
//! §3.3: boundary-vertex values "will be asynchronously updated and the
//! traversal on that vertex will be performed based on the new depth" —
//! machines process incoming tasks as they arrive instead of in
//! supersteps. Without barriers, termination must be *detected*: the
//! computation is done when every machine is idle **and** no message is
//! in flight.
//!
//! [`TerminationDetector`] implements message-credit counting: the
//! in-flight counter is incremented *before* a send and decremented
//! only *after* the receiver has fully processed the message (including
//! any sends that processing performed). Under that discipline,
//! `all idle ∧ in_flight == 0` is a stable property — no future work
//! can appear — so observing it once is a sound termination test.

use std::sync::atomic::{AtomicBool, AtomicI64, Ordering};

/// Distributed-termination detector for `p` machines.
#[derive(Debug)]
pub struct TerminationDetector {
    in_flight: AtomicI64,
    idle: Vec<AtomicBool>,
    /// Set when a machine died: quiescence can never be reached
    /// honestly, so polling machines must abort instead of spinning.
    poisoned: AtomicBool,
}

impl TerminationDetector {
    /// Creates a detector for `p` machines, all initially *busy*
    /// (machines must explicitly go idle).
    pub fn new(p: usize) -> Self {
        Self {
            in_flight: AtomicI64::new(0),
            idle: (0..p).map(|_| AtomicBool::new(false)).collect(),
            poisoned: AtomicBool::new(false),
        }
    }

    /// Marks the detector poisoned: a participating machine died, so
    /// global quiescence is unreachable. Every subsequent
    /// [`TerminationDetector::quiescent`] poll panics, turning peers'
    /// idle spin loops into contained failures instead of livelock.
    pub fn poison(&self) {
        self.poisoned.store(true, Ordering::SeqCst);
    }

    /// True once [`TerminationDetector::poison`] has been called.
    pub fn is_poisoned(&self) -> bool {
        self.poisoned.load(Ordering::SeqCst)
    }

    /// Must be called *before* handing a message to the channel.
    #[inline]
    pub fn on_send(&self) {
        self.in_flight.fetch_add(1, Ordering::SeqCst);
    }

    /// Must be called *after* the message has been fully processed
    /// (and any messages that processing produced have been on_send'd).
    #[inline]
    pub fn on_processed(&self) {
        let prev = self.in_flight.fetch_sub(1, Ordering::SeqCst);
        debug_assert!(prev > 0, "more messages processed than sent");
    }

    /// Marks machine `id` idle (its local queue is empty).
    #[inline]
    pub fn set_idle(&self, id: usize, idle: bool) {
        self.idle[id].store(idle, Ordering::SeqCst);
    }

    /// Current in-flight message count (diagnostics).
    pub fn in_flight(&self) -> i64 {
        self.in_flight.load(Ordering::SeqCst)
    }

    /// True when every machine is idle and no message is in flight.
    ///
    /// Sound under the send/process discipline above: a machine only
    /// becomes non-idle because a message arrived, and that message
    /// kept `in_flight > 0` until it was processed.
    ///
    /// # Panics
    ///
    /// Panics if the detector is [poisoned](TerminationDetector::poison):
    /// a peer machine died, so no honest quiescence is coming and the
    /// caller's poll loop would otherwise spin forever.
    pub fn quiescent(&self) -> bool {
        assert!(
            !self.poisoned.load(Ordering::SeqCst),
            "termination detector poisoned: a peer machine died mid-computation"
        );
        // Check idles first, then in-flight: if a message is produced
        // after we read an idle flag, the in-flight counter (read
        // later, SeqCst) will still be > 0.
        self.idle.iter().all(|b| b.load(Ordering::SeqCst))
            && self.in_flight.load(Ordering::SeqCst) == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fresh_detector_not_quiescent() {
        let d = TerminationDetector::new(2);
        assert!(!d.quiescent()); // machines start busy
    }

    #[test]
    fn idle_without_messages_is_quiescent() {
        let d = TerminationDetector::new(2);
        d.set_idle(0, true);
        d.set_idle(1, true);
        assert!(d.quiescent());
    }

    #[test]
    fn in_flight_blocks_quiescence() {
        let d = TerminationDetector::new(1);
        d.set_idle(0, true);
        d.on_send();
        assert!(!d.quiescent());
        d.on_processed();
        assert!(d.quiescent());
    }

    #[test]
    #[should_panic(expected = "termination detector poisoned")]
    fn poisoned_quiescence_poll_panics() {
        let d = TerminationDetector::new(1);
        d.set_idle(0, true);
        d.poison();
        let _ = d.quiescent();
    }

    #[test]
    fn concurrent_ping_pong_terminates() {
        // Two workers bounce a counter down to zero through channels;
        // detector must see quiescence exactly when all work is done.
        let d = Arc::new(TerminationDetector::new(2));
        let (tx0, rx0) = crossbeam_channel::unbounded::<u32>();
        let (tx1, rx1) = crossbeam_channel::unbounded::<u32>();
        d.on_send();
        tx0.send(64).unwrap();

        let spawn = |id: usize,
                     rx: crossbeam_channel::Receiver<u32>,
                     tx: crossbeam_channel::Sender<u32>,
                     d: Arc<TerminationDetector>| {
            std::thread::spawn(move || {
                let mut processed = 0u32;
                loop {
                    match rx.try_recv() {
                        Ok(n) => {
                            d.set_idle(id, false);
                            if n > 0 {
                                d.on_send();
                                tx.send(n - 1).unwrap();
                            }
                            processed += 1;
                            d.on_processed();
                        }
                        Err(_) => {
                            d.set_idle(id, true);
                            if d.quiescent() {
                                return processed;
                            }
                            std::thread::yield_now();
                        }
                    }
                }
            })
        };
        let h0 = spawn(0, rx0, tx1, d.clone());
        let h1 = spawn(1, rx1, tx0, d.clone());
        let total = h0.join().unwrap() + h1.join().unwrap();
        assert_eq!(total, 65); // 64 hops + the initial message
        assert!(d.quiescent());
    }
}
