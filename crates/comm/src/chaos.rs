//! Deterministic fault injection: the chaos plane.
//!
//! Production graph services meet machine crashes, lossy links, and
//! packet reordering; a reproduction that only ever runs on a healthy
//! simulated cluster cannot claim the "serving heavy traffic" story of
//! the paper's setting. This module makes failure a *first-class,
//! testable input*: a [`FaultPlan`] describes — deterministically,
//! from a seed — which machine crashes at which superstep, which
//! messages are dropped, duplicated, reordered, or slowed, and for how
//! many attempts the faults persist before "healing".
//!
//! Determinism is the load-bearing property. Fault decisions are *not*
//! drawn from a shared RNG stream (whose consumption order would
//! depend on thread interleaving); each decision is a pure
//! `splitmix64` hash of `(seed, job, attempt, machine, counter)`, so
//! the same plan over the same job produces the same faults regardless
//! of scheduling — and a *retry* (higher `attempt`) deterministically
//! sees a fresh, independent fault pattern. [`FaultPlan::heal_after`]
//! makes "fails N times then succeeds" plans expressible, which is
//! what recovery tests need.
//!
//! The plane is wired into
//! [`PersistentCluster::submit_with_chaos`](crate::PersistentCluster::submit_with_chaos):
//! the per-job [`ChaosRun`] threads an armed plan into every
//! [`CommHandle`](crate::CommHandle), where sends consult it and
//! crash points ([`CommHandle::fault_point`](crate::CommHandle::fault_point))
//! panic on schedule.
//!
//! # Example
//!
//! ```
//! use cgraph_comm::chaos::{ChaosRun, FaultPlan};
//! use cgraph_comm::{ClusterError, PersistentCluster};
//!
//! let cluster = PersistentCluster::new(2);
//! let worker = |h: cgraph_comm::CommHandle<u64>| {
//!     for step in 0..3 {
//!         h.fault_point(step); // scripted crashes fire here
//!         h.barrier();
//!     }
//!     7u32
//! };
//! // Machine 1 dies at superstep 1 — deterministically, every time —
//! // but only while the plan is unhealed (attempt 0).
//! let plan = FaultPlan::new(42).crash(1, 1).heal_after(1);
//! let failing = ChaosRun::new(plan.clone(), 0, 0);
//! let err = cluster.submit_with_chaos(Some(&failing), worker).unwrap_err();
//! assert!(matches!(err, ClusterError::MachinePanicked { .. }));
//! // The retry (same job, attempt 1) runs clean on the same cluster.
//! let healed = ChaosRun::new(plan, 0, 1);
//! let (ok, _) = cluster.submit_with_chaos(Some(&healed), worker).unwrap();
//! assert_eq!(ok, vec![7, 7]);
//! cluster.shutdown();
//! ```

use std::fmt;
use std::ops::Range;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A scripted machine crash: machine `machine` panics when it reaches
/// the fault point of superstep `superstep`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CrashFault {
    /// The machine that dies.
    pub machine: usize,
    /// The superstep at whose start it dies.
    pub superstep: u32,
}

/// A simulated slow link: every message from `from` to `to` is billed
/// `extra_ns` additional simulated network nanoseconds on top of the
/// [`NetModel`](crate::NetModel) cost. Layered accounting only — like
/// the base model, it never sleeps.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SlowLink {
    /// Sending machine.
    pub from: usize,
    /// Receiving machine.
    pub to: usize,
    /// Extra simulated nanoseconds per message.
    pub extra_ns: u64,
}

/// A deterministic, seedable fault schedule for cluster jobs.
///
/// The plan is inert data; it takes effect when passed to
/// [`PersistentCluster::submit_with_chaos`](crate::PersistentCluster::submit_with_chaos)
/// inside a [`ChaosRun`], which also carries the `(job, attempt)`
/// coordinates that scope and salt every decision.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultPlan {
    /// Seed salting every fault decision.
    pub seed: u64,
    /// Scripted machine crashes.
    pub crashes: Vec<CrashFault>,
    /// Probability (0..=1) that a message is silently dropped.
    pub drop_prob: f64,
    /// Probability (0..=1) that a message is delivered twice.
    pub dup_prob: f64,
    /// Probability (0..=1) that a message is held back and delivered
    /// after the sender's next message (or at the next barrier).
    pub reorder_prob: f64,
    /// Slow links layered on the network model.
    pub slow_links: Vec<SlowLink>,
    /// Probability (0..=1) that a durability write is torn — only a
    /// prefix of the buffer reaches disk (crash mid-`write`).
    pub torn_write_prob: f64,
    /// Probability (0..=1) that a durability write is short — a few
    /// tail bytes are lost (partial `write(2)` return ignored).
    pub short_write_prob: f64,
    /// Probability (0..=1) that one bit of a durability write is
    /// flipped on its way to disk (media corruption).
    pub bit_flip_prob: f64,
    /// Probability (0..=1) that the atomic rename publishing a
    /// finished snapshot is lost (crash between `write` and `rename`).
    pub rename_lost_prob: f64,
    /// Faults only fire while `attempt < heal_after`; `None` means the
    /// plan never heals. `Some(1)` expresses "fail once, then recover".
    pub heal_after: Option<u32>,
    /// Jobs (by caller-assigned job number) in which the plan is
    /// armed; `None` arms every job. Scoping a destructive plan to a
    /// job window lets the rest of a stream run clean.
    pub armed_jobs: Option<Range<u64>>,
}

impl FaultPlan {
    /// An empty (fault-free) plan with the given seed.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            crashes: Vec::new(),
            drop_prob: 0.0,
            dup_prob: 0.0,
            reorder_prob: 0.0,
            slow_links: Vec::new(),
            torn_write_prob: 0.0,
            short_write_prob: 0.0,
            bit_flip_prob: 0.0,
            rename_lost_prob: 0.0,
            heal_after: None,
            armed_jobs: None,
        }
    }

    /// Adds a scripted crash of `machine` at `superstep`.
    pub fn crash(mut self, machine: usize, superstep: u32) -> Self {
        self.crashes.push(CrashFault { machine, superstep });
        self
    }

    /// Sets the message-drop probability.
    pub fn with_drop(mut self, p: f64) -> Self {
        self.drop_prob = p;
        self
    }

    /// Sets the message-duplication probability.
    pub fn with_dup(mut self, p: f64) -> Self {
        self.dup_prob = p;
        self
    }

    /// Sets the message-reorder probability.
    pub fn with_reorder(mut self, p: f64) -> Self {
        self.reorder_prob = p;
        self
    }

    /// Adds a slow link from `from` to `to` costing `extra_ns` per
    /// message.
    pub fn slow_link(mut self, from: usize, to: usize, extra_ns: u64) -> Self {
        self.slow_links.push(SlowLink { from, to, extra_ns });
        self
    }

    /// Sets the torn-write probability on the durability I/O path.
    pub fn with_torn_write(mut self, p: f64) -> Self {
        self.torn_write_prob = p;
        self
    }

    /// Sets the short-write probability on the durability I/O path.
    pub fn with_short_write(mut self, p: f64) -> Self {
        self.short_write_prob = p;
        self
    }

    /// Sets the bit-flip probability on the durability I/O path.
    pub fn with_bit_flip(mut self, p: f64) -> Self {
        self.bit_flip_prob = p;
        self
    }

    /// Sets the rename-lost probability on the durability I/O path.
    pub fn with_rename_lost(mut self, p: f64) -> Self {
        self.rename_lost_prob = p;
        self
    }

    /// True when any durability (disk) fault is configured.
    pub fn disk_faulty(&self) -> bool {
        self.torn_write_prob > 0.0
            || self.short_write_prob > 0.0
            || self.bit_flip_prob > 0.0
            || self.rename_lost_prob > 0.0
    }

    /// Faults stop firing once the per-job attempt counter reaches
    /// `attempts` — "fail `attempts` times, then recover".
    pub fn heal_after(mut self, attempts: u32) -> Self {
        self.heal_after = Some(attempts);
        self
    }

    /// Restricts the plan to jobs whose number falls in `jobs`.
    pub fn arm_jobs(mut self, jobs: Range<u64>) -> Self {
        self.armed_jobs = Some(jobs);
        self
    }

    /// True when the plan can fire for this `(job, attempt)` pair.
    pub fn is_armed(&self, job: u64, attempt: u32) -> bool {
        self.armed_jobs.as_ref().is_none_or(|r| r.contains(&job))
            && self.heal_after.is_none_or(|h| attempt < h)
    }

    /// True when the plan can lose messages (message loss taints all
    /// state derived after the drop, which recovery must respect).
    pub fn lossy(&self) -> bool {
        self.drop_prob > 0.0
    }

    /// True when no fault of any kind is configured.
    pub fn is_empty(&self) -> bool {
        self.crashes.is_empty()
            && self.drop_prob == 0.0
            && self.dup_prob == 0.0
            && self.reorder_prob == 0.0
            && self.slow_links.is_empty()
            && !self.disk_faulty()
    }

    /// Parses a compact spec string, e.g.
    /// `"seed=7,crash=0@2,drop=0.1,dup=0.05,reorder=0.1,slow=0>1@5000,heal=1,jobs=2..5"`.
    ///
    /// Fields (comma-separated, each optional, repeated `crash=`/`slow=`
    /// accumulate): `seed=<u64>`, `crash=<machine>@<superstep>`,
    /// `drop=<p>`, `dup=<p>`, `reorder=<p>`,
    /// `slow=<from>><to>@<extra_ns>`, `torn=<p>`, `short=<p>`,
    /// `flip=<p>`, `lost=<p>`, `heal=<attempts>`,
    /// `jobs=<start>..<end>`.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let mut plan = FaultPlan::new(0);
        for field in spec.split(',').map(str::trim).filter(|f| !f.is_empty()) {
            let (key, value) = field
                .split_once('=')
                .ok_or_else(|| format!("chaos field {field:?} is not key=value"))?;
            let bad = |what: &str| format!("invalid chaos {what} in {field:?}");
            match key {
                "seed" => plan.seed = value.parse().map_err(|_| bad("seed"))?,
                "crash" => {
                    let (m, s) = value.split_once('@').ok_or_else(|| bad("crash (m@s)"))?;
                    plan.crashes.push(CrashFault {
                        machine: m.parse().map_err(|_| bad("crash machine"))?,
                        superstep: s.parse().map_err(|_| bad("crash superstep"))?,
                    });
                }
                "drop" => plan.drop_prob = parse_prob(value).ok_or_else(|| bad("drop"))?,
                "dup" => plan.dup_prob = parse_prob(value).ok_or_else(|| bad("dup"))?,
                "reorder" => plan.reorder_prob = parse_prob(value).ok_or_else(|| bad("reorder"))?,
                "torn" => plan.torn_write_prob = parse_prob(value).ok_or_else(|| bad("torn"))?,
                "short" => plan.short_write_prob = parse_prob(value).ok_or_else(|| bad("short"))?,
                "flip" => plan.bit_flip_prob = parse_prob(value).ok_or_else(|| bad("flip"))?,
                "lost" => plan.rename_lost_prob = parse_prob(value).ok_or_else(|| bad("lost"))?,
                "slow" => {
                    let (link, ns) = value.split_once('@').ok_or_else(|| bad("slow (f>t@ns)"))?;
                    let (f, t) = link.split_once('>').ok_or_else(|| bad("slow link (f>t)"))?;
                    plan.slow_links.push(SlowLink {
                        from: f.parse().map_err(|_| bad("slow from"))?,
                        to: t.parse().map_err(|_| bad("slow to"))?,
                        extra_ns: ns.parse().map_err(|_| bad("slow extra_ns"))?,
                    });
                }
                "heal" => plan.heal_after = Some(value.parse().map_err(|_| bad("heal"))?),
                "jobs" => {
                    let (a, b) = value.split_once("..").ok_or_else(|| bad("jobs (a..b)"))?;
                    let start = a.parse().map_err(|_| bad("jobs start"))?;
                    let end = b.parse().map_err(|_| bad("jobs end"))?;
                    plan.armed_jobs = Some(start..end);
                }
                other => return Err(format!("unknown chaos field {other:?}")),
            }
        }
        Ok(plan)
    }
}

impl fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "seed={}", self.seed)?;
        for c in &self.crashes {
            write!(f, ",crash={}@{}", c.machine, c.superstep)?;
        }
        if self.drop_prob > 0.0 {
            write!(f, ",drop={}", self.drop_prob)?;
        }
        if self.dup_prob > 0.0 {
            write!(f, ",dup={}", self.dup_prob)?;
        }
        if self.reorder_prob > 0.0 {
            write!(f, ",reorder={}", self.reorder_prob)?;
        }
        for l in &self.slow_links {
            write!(f, ",slow={}>{}@{}", l.from, l.to, l.extra_ns)?;
        }
        if self.torn_write_prob > 0.0 {
            write!(f, ",torn={}", self.torn_write_prob)?;
        }
        if self.short_write_prob > 0.0 {
            write!(f, ",short={}", self.short_write_prob)?;
        }
        if self.bit_flip_prob > 0.0 {
            write!(f, ",flip={}", self.bit_flip_prob)?;
        }
        if self.rename_lost_prob > 0.0 {
            write!(f, ",lost={}", self.rename_lost_prob)?;
        }
        if let Some(h) = self.heal_after {
            write!(f, ",heal={h}")?;
        }
        if let Some(r) = &self.armed_jobs {
            write!(f, ",jobs={}..{}", r.start, r.end)?;
        }
        Ok(())
    }
}

fn parse_prob(v: &str) -> Option<f64> {
    let p: f64 = v.parse().ok()?;
    (0.0..=1.0).contains(&p).then_some(p)
}

/// One job's chaos coordinates: the plan plus the `(job, attempt)`
/// pair that scopes its arming and salts its decisions. Create one per
/// submission; read [`ChaosRun::dropped`] afterwards to learn whether
/// the job lost messages (a completed-but-lossy job is reported as
/// [`ClusterError::MessagesLost`](crate::ClusterError::MessagesLost),
/// but a job that *also* panicked reports the panic, and the caller
/// still needs the drop count to plan recovery).
#[derive(Clone, Debug)]
pub struct ChaosRun {
    /// The fault schedule.
    pub plan: FaultPlan,
    /// Caller-assigned job number ([`FaultPlan::armed_jobs`] scope).
    pub job: u64,
    /// Caller-assigned attempt number ([`FaultPlan::heal_after`]
    /// scope; also salts every probabilistic decision, so retries see
    /// fresh fault patterns).
    pub attempt: u32,
    dropped: Arc<AtomicU64>,
}

impl ChaosRun {
    /// Binds `plan` to a `(job, attempt)` pair.
    pub fn new(plan: FaultPlan, job: u64, attempt: u32) -> Self {
        Self { plan, job, attempt, dropped: Arc::new(AtomicU64::new(0)) }
    }

    /// Messages dropped during the submission this run was passed to.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::SeqCst)
    }

    pub(crate) fn job_state(&self, p: usize) -> ChaosJob {
        ChaosJob {
            plan: self.plan.clone(),
            armed: self.plan.is_armed(self.job, self.attempt),
            job: self.job,
            attempt: self.attempt,
            dropped: Arc::clone(&self.dropped),
            counters: (0..p).map(|_| AtomicU64::new(0)).collect(),
        }
    }
}

/// Per-job chaos state shared by every [`CommHandle`](crate::CommHandle)
/// of one fabric.
#[derive(Debug)]
pub(crate) struct ChaosJob {
    plan: FaultPlan,
    armed: bool,
    job: u64,
    attempt: u32,
    dropped: Arc<AtomicU64>,
    /// Per-machine decision counters: each machine consumes its own
    /// deterministic decision stream, independent of thread timing.
    counters: Vec<AtomicU64>,
}

impl ChaosJob {
    /// True when any probabilistic/crash fault can fire this job.
    #[cfg(test)]
    pub(crate) fn armed(&self) -> bool {
        self.armed
    }

    /// True when the plan needs per-send probabilistic decisions.
    pub(crate) fn perturbs_messages(&self) -> bool {
        self.armed
            && (self.plan.drop_prob > 0.0
                || self.plan.dup_prob > 0.0
                || self.plan.reorder_prob > 0.0)
    }

    /// Whether `machine` is scripted to crash at `superstep`.
    pub(crate) fn should_crash(&self, machine: usize, superstep: u32) -> bool {
        self.armed
            && self.plan.crashes.iter().any(|c| c.machine == machine && c.superstep == superstep)
    }

    /// Extra simulated nanoseconds for the `from -> to` link, if any.
    /// Slow links apply even to healed attempts: a slow network is an
    /// environment property, not a transient fault.
    pub(crate) fn slow_extra_ns(&self, from: usize, to: usize) -> u64 {
        self.plan
            .slow_links
            .iter()
            .filter(|l| l.from == from && l.to == to)
            .map(|l| l.extra_ns)
            .sum()
    }

    /// Next uniform-in-`[0,1)` decision for `machine`'s stream.
    pub(crate) fn roll(&self, machine: usize) -> f64 {
        let n = self.counters[machine].fetch_add(1, Ordering::Relaxed);
        let h = splitmix64(
            self.plan
                .seed
                .wrapping_add(self.job.wrapping_mul(0x9E37_79B9_7F4A_7C15))
                .wrapping_add(u64::from(self.attempt).wrapping_mul(0xBF58_476D_1CE4_E5B9))
                .wrapping_add((machine as u64).wrapping_mul(0x94D0_49BB_1331_11EB))
                .wrapping_add(n),
        );
        (h >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Drop probability (0 unless armed).
    pub(crate) fn drop_prob(&self) -> f64 {
        if self.armed {
            self.plan.drop_prob
        } else {
            0.0
        }
    }

    /// Duplication probability (0 unless armed).
    pub(crate) fn dup_prob(&self) -> f64 {
        if self.armed {
            self.plan.dup_prob
        } else {
            0.0
        }
    }

    /// Reorder probability (0 unless armed).
    pub(crate) fn reorder_prob(&self) -> f64 {
        if self.armed {
            self.plan.reorder_prob
        } else {
            0.0
        }
    }

    /// Records one dropped message.
    pub(crate) fn note_drop(&self) {
        self.dropped.fetch_add(1, Ordering::SeqCst);
    }

    /// Messages dropped so far this job.
    pub(crate) fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::SeqCst)
    }
}

/// The splitmix64 finalizer: a strong, cheap 64-bit mixer.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arming_respects_job_window_and_heal() {
        let plan = FaultPlan::new(1).crash(0, 2).heal_after(2).arm_jobs(5..8);
        assert!(!plan.is_armed(4, 0));
        assert!(plan.is_armed(5, 0));
        assert!(plan.is_armed(7, 1));
        assert!(!plan.is_armed(7, 2), "healed after 2 attempts");
        assert!(!plan.is_armed(8, 0));
    }

    #[test]
    fn unscoped_plan_arms_everywhere_until_healed() {
        let plan = FaultPlan::new(1).crash(1, 0).heal_after(1);
        assert!(plan.is_armed(0, 0));
        assert!(plan.is_armed(u64::MAX / 2, 0));
        assert!(!plan.is_armed(0, 1));
    }

    #[test]
    fn rolls_are_deterministic_per_machine_stream() {
        let run_a = ChaosRun::new(FaultPlan::new(42).with_drop(0.5), 3, 1);
        let run_b = ChaosRun::new(FaultPlan::new(42).with_drop(0.5), 3, 1);
        let ja = run_a.job_state(2);
        let jb = run_b.job_state(2);
        let a: Vec<f64> = (0..32).map(|_| ja.roll(0)).collect();
        let b: Vec<f64> = (0..32).map(|_| jb.roll(0)).collect();
        assert_eq!(a, b, "same coordinates, same decision stream");
        let other: Vec<f64> = (0..32).map(|_| jb.roll(1)).collect();
        assert_ne!(a, other, "machines draw independent streams");
        assert!(a.iter().all(|&x| (0.0..1.0).contains(&x)));
    }

    #[test]
    fn attempt_salts_decisions() {
        let j0 = ChaosRun::new(FaultPlan::new(7).with_drop(0.5), 0, 0).job_state(1);
        let j1 = ChaosRun::new(FaultPlan::new(7).with_drop(0.5), 0, 1).job_state(1);
        let a: Vec<f64> = (0..16).map(|_| j0.roll(0)).collect();
        let b: Vec<f64> = (0..16).map(|_| j1.roll(0)).collect();
        assert_ne!(a, b, "retries must see fresh fault patterns");
    }

    #[test]
    fn disarmed_job_has_zero_probabilities() {
        let plan = FaultPlan::new(9).with_drop(1.0).with_dup(1.0).with_reorder(1.0).heal_after(1);
        let healed = ChaosRun::new(plan, 0, 1).job_state(2);
        assert!(!healed.armed());
        assert_eq!(healed.drop_prob(), 0.0);
        assert_eq!(healed.dup_prob(), 0.0);
        assert_eq!(healed.reorder_prob(), 0.0);
        assert!(!healed.should_crash(0, 0));
    }

    #[test]
    fn slow_links_survive_healing() {
        let plan = FaultPlan::new(9).slow_link(0, 1, 5_000).heal_after(1);
        let healed = ChaosRun::new(plan, 0, 1).job_state(2);
        assert_eq!(healed.slow_extra_ns(0, 1), 5_000);
        assert_eq!(healed.slow_extra_ns(1, 0), 0);
    }

    #[test]
    fn spec_round_trips() {
        let spec = "seed=7,crash=0@2,crash=1@4,drop=0.1,dup=0.05,reorder=0.2,slow=0>1@5000,torn=0.3,short=0.2,flip=0.1,lost=0.05,heal=1,jobs=2..5";
        let plan = FaultPlan::parse(spec).unwrap();
        assert_eq!(plan.seed, 7);
        assert_eq!(
            plan.crashes,
            vec![CrashFault { machine: 0, superstep: 2 }, CrashFault { machine: 1, superstep: 4 }]
        );
        assert_eq!(plan.drop_prob, 0.1);
        assert_eq!(plan.dup_prob, 0.05);
        assert_eq!(plan.reorder_prob, 0.2);
        assert_eq!(plan.slow_links, vec![SlowLink { from: 0, to: 1, extra_ns: 5_000 }]);
        assert_eq!(plan.torn_write_prob, 0.3);
        assert_eq!(plan.short_write_prob, 0.2);
        assert_eq!(plan.bit_flip_prob, 0.1);
        assert_eq!(plan.rename_lost_prob, 0.05);
        assert!(plan.disk_faulty());
        assert_eq!(plan.heal_after, Some(1));
        assert_eq!(plan.armed_jobs, Some(2..5));
        assert_eq!(FaultPlan::parse(&plan.to_string()).unwrap(), plan);
    }

    #[test]
    fn spec_rejects_garbage() {
        assert!(FaultPlan::parse("crash=0").is_err());
        assert!(FaultPlan::parse("drop=1.5").is_err());
        assert!(FaultPlan::parse("drop=-0.1").is_err());
        assert!(FaultPlan::parse("torn=2").is_err());
        assert!(FaultPlan::parse("lost=nan").is_err());
        assert!(FaultPlan::parse("frobnicate=1").is_err());
        assert!(FaultPlan::parse("jobs=3").is_err());
        assert!(FaultPlan::parse("slow=0@1").is_err());
    }

    #[test]
    fn empty_spec_is_faultless() {
        let plan = FaultPlan::parse("").unwrap();
        assert!(plan.is_empty());
        assert!(!plan.lossy());
        assert!(!plan.disk_faulty());
    }

    #[test]
    fn disk_faults_make_plan_non_empty() {
        assert!(!FaultPlan::new(3).with_torn_write(0.1).is_empty());
        assert!(!FaultPlan::new(3).with_short_write(0.1).is_empty());
        assert!(!FaultPlan::new(3).with_bit_flip(0.1).is_empty());
        assert!(!FaultPlan::new(3).with_rename_lost(0.1).is_empty());
    }
}
