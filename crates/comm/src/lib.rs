//! # cgraph-comm — the simulated distributed substrate
//!
//! The paper runs C-Graph on a 9-node Xeon cluster over MPI/sockets.
//! This crate reproduces that infrastructure in-process: each
//! *machine* is an OS thread owning its subgraph shard exclusively,
//! and machines exchange messages over per-pair channels — the "inbox
//! buffer for incoming tasks and an outbox buffer for outgoing tasks"
//! of Fig. 5.
//!
//! Provided pieces:
//!
//! * [`cluster::Cluster`] / [`cluster::CommHandle`] — spawn `p` machine
//!   threads, each holding a handle that can send to any peer and drain
//!   its own inbox.
//! * [`barrier::ReduceBarrier`] — a sense-reversing barrier that also
//!   all-reduces a `u64` contribution (used for superstep termination:
//!   "the visited vertices are synchronized after each iteration").
//! * [`async_rt::TerminationDetector`] — message-credit quiescence
//!   detection for the asynchronous update mode (§3.3 supports both
//!   synchronous and asynchronous communication).
//! * [`persistent::PersistentCluster`] — the serving-path variant:
//!   machine threads are spawned once and park between jobs, each job
//!   getting a fresh fabric; machine panics poison the job's barrier
//!   and detector so the batch fails cleanly while the cluster
//!   survives for the next one.
//! * [`netmodel::NetModel`] / [`netmodel::NetStats`] — an analytic
//!   latency/bandwidth model that *accounts* simulated network time per
//!   message without sleeping, so wall-clock benches stay meaningful
//!   while scaling analyses can still report communication volume.
//! * [`collectives`] — allreduce/broadcast built on the barrier.
//! * [`chaos::FaultPlan`] — a deterministic, seedable fault schedule
//!   (scripted machine crashes, message drop/dup/reorder, slow links)
//!   injected per job via
//!   [`PersistentCluster::submit_with_chaos`](persistent::PersistentCluster::submit_with_chaos),
//!   making failure a first-class, testable input.
//! * [`obs`] — the comm end of the observability plane (`cgraph-obs`):
//!   installing an [`Obs`](cgraph_obs::Obs) bundle on a
//!   [`PersistentCluster`] wires cached
//!   per-link traffic counters, chaos perturbation counters, and a
//!   per-machine tracer into every job's
//!   [`CommHandle`]s.
//!
//! Nothing in this crate knows about graphs; it is a generic
//! message-passing substrate tested in isolation.

#![warn(missing_docs)]

pub mod async_rt;
pub mod barrier;
pub mod chaos;
pub mod cluster;
pub mod collectives;
pub mod cputime;
pub mod mailbox;
pub mod message;
pub mod netmodel;
pub mod obs;
pub mod persistent;

pub use async_rt::TerminationDetector;
pub use barrier::{BarrierPoisoned, ReduceBarrier, Reduction, REDUCE_WORDS};
pub use chaos::{ChaosRun, CrashFault, FaultPlan, SlowLink};
pub use cluster::{Cluster, CommHandle};
pub use cputime::thread_cpu_time;
pub use mailbox::Outbox;
pub use message::{Envelope, WireSize};
pub use netmodel::{NetModel, NetStats};
pub use obs::{JobCoords, MachineObs, MachineObsCore};
pub use persistent::{ClusterError, PersistentCluster};

/// Identifier of a simulated machine (= partition).
pub type MachineId = usize;
