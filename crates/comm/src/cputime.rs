//! Per-thread CPU time — the busy-time metric for simulated machines.
//!
//! A simulated machine is a thread; when the host has fewer cores than
//! machines, wall-clock intervals measured inside a machine include
//! time spent descheduled while *other* machines run, which destroys
//! any scaling signal. `CLOCK_THREAD_CPUTIME_ID` counts only cycles
//! this thread actually executed, and blocking waits (the barrier's
//! condvar, channel parks) cost none of it — so
//! `thread_cpu_time()` deltas are exactly the per-machine *busy time*
//! a real cluster node would spend.

use std::time::Duration;

/// CPU time consumed by the calling thread since it started.
#[cfg(target_os = "linux")]
pub fn thread_cpu_time() -> Duration {
    let mut ts = libc::timespec { tv_sec: 0, tv_nsec: 0 };
    // SAFETY: ts is a valid out-pointer; CLOCK_THREAD_CPUTIME_ID is
    // always supported on Linux.
    let rc = unsafe { libc::clock_gettime(libc::CLOCK_THREAD_CPUTIME_ID, &mut ts) };
    debug_assert_eq!(rc, 0);
    Duration::new(ts.tv_sec as u64, ts.tv_nsec as u32)
}

/// Fallback for non-Linux targets: wall clock from an arbitrary epoch
/// (scaling figures degrade gracefully but remain monotone).
#[cfg(not(target_os = "linux"))]
pub fn thread_cpu_time() -> Duration {
    use std::time::Instant;
    static EPOCH: std::sync::OnceLock<Instant> = std::sync::OnceLock::new();
    EPOCH.get_or_init(Instant::now).elapsed()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotone_and_advances_under_work() {
        let a = thread_cpu_time();
        // Burn a little CPU.
        let mut x = 1u64;
        for i in 1..2_000_000u64 {
            x = x.wrapping_mul(i) ^ i;
        }
        std::hint::black_box(x);
        let b = thread_cpu_time();
        assert!(b > a, "CPU time must advance under compute: {a:?} -> {b:?}");
    }

    #[test]
    fn sleeping_costs_no_cpu() {
        let a = thread_cpu_time();
        std::thread::sleep(Duration::from_millis(50));
        let b = thread_cpu_time();
        assert!((b - a) < Duration::from_millis(20), "sleep consumed {:?} CPU", b - a);
    }

    #[test]
    fn independent_per_thread() {
        // A busy sibling thread must not advance this thread's clock.
        let before = thread_cpu_time();
        let h = std::thread::spawn(|| {
            let mut x = 1u64;
            for i in 1..5_000_000u64 {
                x = x.wrapping_mul(i) ^ i;
            }
            std::hint::black_box(x);
        });
        h.join().unwrap();
        let after = thread_cpu_time();
        assert!((after - before) < Duration::from_millis(30));
    }
}
