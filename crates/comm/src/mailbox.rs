//! Outbox buffering — Fig. 5's "outbox buffer for outgoing tasks".
//!
//! In the synchronous update model each machine buffers remote tasks
//! per destination during a superstep and flushes them in one batch at
//! the barrier, amortising per-message overhead (the same reason MPI
//! codes aggregate small messages). [`Outbox`] is that per-destination
//! staging area.

use crate::MachineId;

/// Per-destination staging buffers for outgoing payloads.
#[derive(Debug)]
pub struct Outbox<M> {
    buffers: Vec<Vec<M>>,
}

impl<M> Outbox<M> {
    /// Creates an outbox with one buffer per machine.
    pub fn new(num_machines: usize) -> Self {
        Self { buffers: (0..num_machines).map(|_| Vec::new()).collect() }
    }

    /// Stages `payload` for machine `to`.
    #[inline]
    pub fn push(&mut self, to: MachineId, payload: M) {
        self.buffers[to].push(payload);
    }

    /// Number of machines addressable.
    pub fn num_machines(&self) -> usize {
        self.buffers.len()
    }

    /// Total staged payloads across all destinations.
    pub fn staged(&self) -> usize {
        self.buffers.iter().map(Vec::len).sum()
    }

    /// True when nothing is staged.
    pub fn is_empty(&self) -> bool {
        self.buffers.iter().all(Vec::is_empty)
    }

    /// Drains each destination's buffer, invoking `send(to, batch)` for
    /// every non-empty one; returns the number of payloads flushed.
    pub fn flush(&mut self, mut send: impl FnMut(MachineId, Vec<M>)) -> usize {
        let mut flushed = 0;
        for (to, buf) in self.buffers.iter_mut().enumerate() {
            if !buf.is_empty() {
                flushed += buf.len();
                send(to, std::mem::take(buf));
            }
        }
        flushed
    }

    /// Drops all staged payloads (e.g. when a query is cancelled).
    pub fn clear(&mut self) {
        for buf in &mut self.buffers {
            buf.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_flush_batches_per_destination() {
        let mut o: Outbox<u64> = Outbox::new(3);
        o.push(0, 1);
        o.push(2, 2);
        o.push(2, 3);
        assert_eq!(o.staged(), 3);
        let mut seen = Vec::new();
        let flushed = o.flush(|to, batch| seen.push((to, batch)));
        assert_eq!(flushed, 3);
        assert_eq!(seen, vec![(0, vec![1]), (2, vec![2, 3])]);
        assert!(o.is_empty());
    }

    #[test]
    fn flush_skips_empty_destinations() {
        let mut o: Outbox<u8> = Outbox::new(4);
        o.push(1, 9);
        let mut calls = 0;
        o.flush(|_, _| calls += 1);
        assert_eq!(calls, 1);
    }

    #[test]
    fn clear_discards() {
        let mut o: Outbox<u8> = Outbox::new(2);
        o.push(0, 1);
        o.clear();
        assert!(o.is_empty());
        assert_eq!(o.flush(|_, _| panic!("nothing to flush")), 0);
    }

    #[test]
    fn buffers_reusable_after_flush() {
        let mut o: Outbox<u8> = Outbox::new(1);
        o.push(0, 1);
        o.flush(|_, _| {});
        o.push(0, 2);
        let mut got = Vec::new();
        o.flush(|_, b| got = b);
        assert_eq!(got, vec![2]);
    }
}
