//! A sense-reversing barrier that all-reduces a `u64` sum.
//!
//! The synchronous update model synchronises machines "after each
//! iteration" (Fig. 5) and must agree on global termination ("vote to
//! halt"): each machine contributes its count of active work (frontier
//! size + messages sent); when the global sum is zero, every machine
//! sees zero and halts on the same superstep.
//!
//! Built on parking_lot `Mutex`/`Condvar` (per the Atomics-and-Locks
//! guidance: use well-tested blocking primitives for rendezvous rather
//! than hand-rolled spin loops).

use parking_lot::{Condvar, Mutex};

/// The combined result of one barrier generation.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Reduction {
    /// Wrapping sum of all contributions.
    pub sum: u64,
    /// Maximum contribution.
    pub max: u64,
    /// Bitwise OR of all contributions (per-lane activity masks).
    pub or: u64,
}

/// Word count of the wide bitwise-OR reduction: enough for the widest
/// lane batch (512 lanes = 8 × 64-bit activity words).
pub const REDUCE_WORDS: usize = 8;

struct State {
    /// Threads still to arrive in the current generation.
    remaining: usize,
    /// Accumulated sum contribution of the current generation.
    sum: u64,
    /// Accumulated max contribution of the current generation.
    max: u64,
    /// Accumulated bitwise-OR contribution of the current generation.
    or: u64,
    /// Accumulated wide bitwise-OR contribution (multi-word lane
    /// masks) of the current generation.
    or_words: [u64; REDUCE_WORDS],
    /// Results of the last completed generation.
    result: Reduction,
    /// Wide-OR result of the last completed generation.
    result_words: [u64; REDUCE_WORDS],
    /// Flips every generation (sense reversal).
    generation: u64,
    /// Set when a participant died mid-computation; every current and
    /// future waiter panics instead of deadlocking on a peer that will
    /// never arrive.
    poisoned: bool,
}

/// Error returned by the `try_wait*` barrier variants when the barrier
/// was [poisoned](ReduceBarrier::poison) by a dying peer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BarrierPoisoned;

impl std::fmt::Display for BarrierPoisoned {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "barrier poisoned: a peer machine died mid-computation")
    }
}

impl std::error::Error for BarrierPoisoned {}

/// A reusable barrier over `parties` threads carrying a `u64` sum.
pub struct ReduceBarrier {
    parties: usize,
    state: Mutex<State>,
    cvar: Condvar,
}

impl ReduceBarrier {
    /// Creates a barrier for `parties` threads.
    pub fn new(parties: usize) -> Self {
        assert!(parties > 0);
        Self {
            parties,
            state: Mutex::new(State {
                remaining: parties,
                sum: 0,
                max: 0,
                or: 0,
                or_words: [0; REDUCE_WORDS],
                result: Reduction::default(),
                result_words: [0; REDUCE_WORDS],
                generation: 0,
                poisoned: false,
            }),
            cvar: Condvar::new(),
        }
    }

    /// Number of participating threads.
    pub fn parties(&self) -> usize {
        self.parties
    }

    /// Marks the barrier unusable: every thread currently parked in
    /// [`ReduceBarrier::wait_reduce`] wakes up and panics, and every
    /// later waiter panics immediately. Called when a participating
    /// machine dies so its peers fail fast instead of waiting forever
    /// for an arrival that cannot happen.
    pub fn poison(&self) {
        let mut s = self.state.lock();
        s.poisoned = true;
        self.cvar.notify_all();
    }

    /// True once [`ReduceBarrier::poison`] has been called.
    pub fn is_poisoned(&self) -> bool {
        self.state.lock().poisoned
    }

    /// Completed barrier generations so far (each full rendezvous of
    /// all parties advances the count by one). Read by the persistent
    /// cluster after a job to account superstep barriers in the
    /// metrics registry.
    pub fn generations(&self) -> u64 {
        self.state.lock().generation
    }

    /// Blocks until all parties have called, then returns the combined
    /// sum/max/or over every party's `contribution` for this
    /// generation.
    ///
    /// # Panics
    ///
    /// Panics (instead of deadlocking) if the barrier is
    /// [poisoned](ReduceBarrier::poison) before or during the wait.
    pub fn wait_reduce(&self, contribution: u64) -> Reduction {
        match self.try_wait_reduce(contribution) {
            Ok(r) => r,
            Err(e) => panic!("{e}"),
        }
    }

    /// Like [`ReduceBarrier::wait_reduce`], but returns
    /// `Err(BarrierPoisoned)` instead of panicking when the barrier is
    /// poisoned — before contributing, or while parked waiting for
    /// peers. Recovery-aware workers use this to notice a peer's death
    /// as an orderly event (save state, unwind cleanly) rather than a
    /// panic of their own.
    ///
    /// An `Err` after parking means this party's contribution was
    /// consumed by a generation that never completed; the barrier is
    /// unusable from then on, matching the panic path.
    pub fn try_wait_reduce(&self, contribution: u64) -> Result<Reduction, BarrierPoisoned> {
        self.try_wait_inner(contribution, &[0; REDUCE_WORDS]).map(|(r, _)| r)
    }

    /// Wide variant of [`ReduceBarrier::try_wait_reduce`]: all parties
    /// contribute an up-to-512-bit activity mask as
    /// [`REDUCE_WORDS`] × `u64`, and every party receives the
    /// word-wise bitwise OR. All parties of a generation must use the
    /// same variant (the rendezvous itself is shared either way).
    pub fn try_wait_reduce_words(
        &self,
        words: [u64; REDUCE_WORDS],
    ) -> Result<[u64; REDUCE_WORDS], BarrierPoisoned> {
        self.try_wait_inner(0, &words).map(|(_, w)| w)
    }

    /// Panicking wrapper around [`ReduceBarrier::try_wait_reduce_words`].
    pub fn wait_reduce_words(&self, words: [u64; REDUCE_WORDS]) -> [u64; REDUCE_WORDS] {
        match self.try_wait_reduce_words(words) {
            Ok(w) => w,
            Err(e) => panic!("{e}"),
        }
    }

    fn try_wait_inner(
        &self,
        contribution: u64,
        words: &[u64; REDUCE_WORDS],
    ) -> Result<(Reduction, [u64; REDUCE_WORDS]), BarrierPoisoned> {
        let mut s = self.state.lock();
        if s.poisoned {
            return Err(BarrierPoisoned);
        }
        let gen = s.generation;
        s.sum = s.sum.wrapping_add(contribution);
        s.max = s.max.max(contribution);
        s.or |= contribution;
        for (acc, w) in s.or_words.iter_mut().zip(words) {
            *acc |= w;
        }
        s.remaining -= 1;
        if s.remaining == 0 {
            // Last arriver publishes the result and opens the next
            // generation.
            s.result = Reduction { sum: s.sum, max: s.max, or: s.or };
            s.result_words = s.or_words;
            s.sum = 0;
            s.max = 0;
            s.or = 0;
            s.or_words = [0; REDUCE_WORDS];
            s.remaining = self.parties;
            s.generation = gen.wrapping_add(1);
            self.cvar.notify_all();
            Ok((s.result, s.result_words))
        } else {
            while s.generation == gen && !s.poisoned {
                self.cvar.wait(&mut s);
            }
            if s.generation == gen {
                return Err(BarrierPoisoned);
            }
            Ok((s.result, s.result_words))
        }
    }

    /// Non-panicking variant of [`ReduceBarrier::wait_sum`].
    pub fn try_wait_sum(&self, contribution: u64) -> Result<u64, BarrierPoisoned> {
        self.try_wait_reduce(contribution).map(|r| r.sum)
    }

    /// Non-panicking variant of [`ReduceBarrier::wait`].
    pub fn try_wait(&self) -> Result<(), BarrierPoisoned> {
        self.try_wait_reduce(0).map(|_| ())
    }

    /// Blocks until all parties have called, then returns the sum of
    /// every party's `contribution` for this generation.
    pub fn wait_sum(&self, contribution: u64) -> u64 {
        self.wait_reduce(contribution).sum
    }

    /// Plain barrier (no payload).
    pub fn wait(&self) {
        self.wait_sum(0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn single_party_never_blocks() {
        let b = ReduceBarrier::new(1);
        assert_eq!(b.wait_sum(5), 5);
        assert_eq!(b.wait_sum(7), 7);
    }

    #[test]
    fn sums_across_threads() {
        let b = Arc::new(ReduceBarrier::new(4));
        let mut handles = Vec::new();
        for i in 0..4u64 {
            let b = b.clone();
            handles.push(std::thread::spawn(move || b.wait_sum(i + 1)));
        }
        for h in handles {
            assert_eq!(h.join().unwrap(), 1 + 2 + 3 + 4);
        }
    }

    #[test]
    fn reusable_across_generations() {
        let b = Arc::new(ReduceBarrier::new(2));
        let b2 = b.clone();
        let t = std::thread::spawn(move || {
            let mut out = Vec::new();
            for round in 0..50u64 {
                out.push(b2.wait_sum(round));
            }
            out
        });
        let mut mine = Vec::new();
        for round in 0..50u64 {
            mine.push(b.wait_sum(round * 10));
        }
        let theirs = t.join().unwrap();
        for (round, (a, c)) in mine.iter().zip(&theirs).enumerate() {
            let expect = round as u64 + round as u64 * 10;
            assert_eq!(*a, expect);
            assert_eq!(*c, expect);
        }
    }

    #[test]
    fn reduce_returns_sum_and_max() {
        let b = Arc::new(ReduceBarrier::new(3));
        let handles: Vec<_> = (0..3u64)
            .map(|i| {
                let b = b.clone();
                std::thread::spawn(move || b.wait_reduce([4, 9, 2][i as usize]))
            })
            .collect();
        for h in handles {
            let r = h.join().unwrap();
            assert_eq!((r.sum, r.max, r.or), (15, 9, 4 | 9 | 2));
        }
    }

    #[test]
    fn poison_wakes_parked_waiters() {
        let b = Arc::new(ReduceBarrier::new(2));
        let b2 = b.clone();
        let waiter = std::thread::spawn(move || b2.wait_sum(1));
        // Give the waiter time to park, then poison instead of arriving.
        std::thread::sleep(std::time::Duration::from_millis(20));
        b.poison();
        assert!(waiter.join().is_err(), "poisoned waiter must panic, not hang");
        assert!(b.is_poisoned());
    }

    #[test]
    #[should_panic(expected = "barrier poisoned")]
    fn wait_after_poison_panics_immediately() {
        let b = ReduceBarrier::new(2);
        b.poison();
        b.wait_sum(0);
    }

    #[test]
    fn completed_generation_survives_later_poison() {
        let b = ReduceBarrier::new(1);
        assert_eq!(b.wait_sum(3), 3);
        b.poison();
        assert!(b.is_poisoned());
    }

    #[test]
    fn try_wait_reports_poison_without_panicking() {
        let b = Arc::new(ReduceBarrier::new(2));
        let b2 = b.clone();
        let waiter = std::thread::spawn(move || b2.try_wait_sum(1));
        std::thread::sleep(std::time::Duration::from_millis(20));
        b.poison();
        assert_eq!(waiter.join().unwrap(), Err(BarrierPoisoned));
        assert_eq!(b.try_wait(), Err(BarrierPoisoned));
    }

    #[test]
    fn try_wait_matches_wait_when_healthy() {
        let b = Arc::new(ReduceBarrier::new(2));
        let b2 = b.clone();
        let t = std::thread::spawn(move || b2.try_wait_reduce(9).unwrap());
        let mine = b.try_wait_reduce(4).unwrap();
        let theirs = t.join().unwrap();
        assert_eq!(mine, theirs);
        assert_eq!((mine.sum, mine.max, mine.or), (13, 9, 9 | 4));
    }

    #[test]
    fn words_reduce_ors_every_word() {
        let b = Arc::new(ReduceBarrier::new(3));
        let handles: Vec<_> = (0..3usize)
            .map(|i| {
                let b = b.clone();
                std::thread::spawn(move || {
                    let mut words = [0u64; REDUCE_WORDS];
                    words[i] = 1 << i;
                    words[REDUCE_WORDS - 1] = 1 << (16 + i);
                    b.try_wait_reduce_words(words).unwrap()
                })
            })
            .collect();
        let mut expect = [0u64; REDUCE_WORDS];
        expect[0] = 1;
        expect[1] = 2;
        expect[2] = 4;
        expect[REDUCE_WORDS - 1] = (1 << 16) | (1 << 17) | (1 << 18);
        for h in handles {
            assert_eq!(h.join().unwrap(), expect);
        }
        // Generations interleave with the scalar variant cleanly.
        assert_eq!(b.generations(), 1);
    }

    #[test]
    fn stress_many_threads() {
        let parties = 8;
        let rounds = 200u64;
        let b = Arc::new(ReduceBarrier::new(parties));
        let handles: Vec<_> = (0..parties)
            .map(|_| {
                let b = b.clone();
                std::thread::spawn(move || {
                    for r in 0..rounds {
                        assert_eq!(b.wait_sum(r), r * parties as u64);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }
}
