//! Comm-layer observability wiring: per-machine handle bundles.
//!
//! The [`PersistentCluster`](crate::PersistentCluster) owns an optional
//! [`Obs`] installed via
//! [`set_obs`](crate::PersistentCluster::set_obs); every job it runs
//! then builds one [`MachineObs`] per machine and threads it into the
//! machine's [`CommHandle`](crate::CommHandle). The bundle caches
//! every metric handle the hot send/barrier paths touch (per-link
//! traffic counters, chaos perturbation counters) so instrumented
//! sends cost two relaxed atomic adds, never a registry lookup.
//!
//! Trace events recorded here carry the job's logical coordinates
//! ([`JobCoords`]) and the machine's *current superstep*, which the
//! engine publishes through
//! [`CommHandle::fault_point`](crate::CommHandle::fault_point) at the
//! top of each superstep (comm-level events between two fault points
//! are attributed to the superstep of the most recent one).

use crate::MachineId;
use cgraph_obs::{Counter, Obs, TraceCtx, Tracer};
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

/// Logical coordinates of one cluster job, used to label trace events.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct JobCoords {
    /// Caller-assigned job number (the service's batch sequence, or
    /// the cluster generation when the caller does not assign one).
    pub job: u64,
    /// Submission attempt within the job (0 = first).
    pub attempt: u32,
}

/// The registered-once, job-independent part of one machine's handle
/// bundle. A [`PersistentCluster`](crate::PersistentCluster) builds one
/// per machine at [`set_obs`](crate::PersistentCluster::set_obs) time
/// and reuses it across every job, so per-job instrumentation cost is a
/// few `Arc` clones — registry lookups happen exactly once per machine
/// per cluster lifetime.
pub struct MachineObsCore {
    obs: Arc<Obs>,
    tracer: Tracer,
    machine: u32,
    sent_msgs: Vec<Arc<Counter>>,
    sent_bytes: Vec<Arc<Counter>>,
    dropped: Arc<Counter>,
    duped: Arc<Counter>,
    reordered: Arc<Counter>,
    crashes: Arc<Counter>,
}

impl MachineObsCore {
    /// Registers (get-or-create) machine `machine`'s handles against
    /// `obs` for a cluster of `p` machines.
    pub fn new(obs: Arc<Obs>, machine: MachineId, p: usize) -> Self {
        let link = |to: usize| format!("{machine}->{to}");
        let sent_msgs = (0..p)
            .map(|to| {
                obs.metrics.counter_with(
                    "cgraph_comm_msgs_sent_total",
                    &[("link", &link(to))],
                    "Messages sent per directed machine link (self-sends excluded).",
                )
            })
            .collect();
        let sent_bytes = (0..p)
            .map(|to| {
                obs.metrics.counter_with(
                    "cgraph_comm_bytes_sent_total",
                    &[("link", &link(to))],
                    "Payload bytes sent per directed machine link (self-sends excluded).",
                )
            })
            .collect();
        Self {
            tracer: obs.trace.tracer(machine as u32),
            dropped: obs.metrics.counter(
                "cgraph_comm_msgs_dropped_total",
                "Messages dropped by the chaos plan (lost on the wire).",
            ),
            duped: obs
                .metrics
                .counter("cgraph_comm_msgs_duped_total", "Messages duplicated by the chaos plan."),
            reordered: obs.metrics.counter(
                "cgraph_comm_msgs_reordered_total",
                "Messages held back (reordered) by the chaos plan.",
            ),
            crashes: obs.metrics.counter(
                "cgraph_comm_machine_crashes_total",
                "Scripted chaos crashes taken at fault points.",
            ),
            obs,
            machine: machine as u32,
            sent_msgs,
            sent_bytes,
        }
    }
}

/// One machine's observability handles for one job: a shared
/// [`MachineObsCore`] plus the job's coordinates and live superstep.
pub struct MachineObs {
    core: Arc<MachineObsCore>,
    coords: JobCoords,
    /// Superstep last published via `fault_point` (comm events between
    /// fault points attribute to it).
    superstep: AtomicU32,
}

impl MachineObs {
    /// Registers a fresh core and binds it to `coords` — the
    /// convenience path for one-shot fabrics. Long-lived clusters use
    /// [`MachineObs::from_core`] with a cached core instead.
    pub fn new(obs: Arc<Obs>, machine: MachineId, p: usize, coords: JobCoords) -> Self {
        Self::from_core(Arc::new(MachineObsCore::new(obs, machine, p)), coords)
    }

    /// Binds an already-registered core to one job's coordinates.
    pub fn from_core(core: Arc<MachineObsCore>, coords: JobCoords) -> Self {
        Self { core, coords, superstep: AtomicU32::new(0) }
    }

    /// The shared bundle (for layers above that want to register their
    /// own handles).
    pub fn obs(&self) -> &Arc<Obs> {
        &self.core.obs
    }

    /// This machine's tracer.
    pub fn tracer(&self) -> &Tracer {
        &self.core.tracer
    }

    /// Job coordinates this bundle was built for.
    pub fn coords(&self) -> JobCoords {
        self.coords
    }

    /// Publishes the machine's current superstep (called from
    /// `fault_point` at the top of each superstep).
    pub fn set_superstep(&self, superstep: u32) {
        self.superstep.store(superstep, Ordering::Relaxed);
    }

    /// Trace context at the machine's current superstep.
    pub fn ctx(&self) -> TraceCtx {
        self.ctx_at(self.superstep.load(Ordering::Relaxed))
    }

    /// Trace context at an explicit superstep.
    pub fn ctx_at(&self, superstep: u32) -> TraceCtx {
        TraceCtx {
            job: self.coords.job,
            attempt: self.coords.attempt,
            superstep,
            machine: self.core.machine,
        }
    }

    pub(crate) fn note_send(&self, to: MachineId, bytes: u64) {
        self.core.sent_msgs[to].inc();
        self.core.sent_bytes[to].add(bytes);
    }

    pub(crate) fn note_drop(&self) {
        self.core.dropped.inc();
    }

    pub(crate) fn note_dup(&self) {
        self.core.duped.inc();
    }

    pub(crate) fn note_reorder(&self) {
        self.core.reordered.inc();
    }

    pub(crate) fn note_crash(&self, superstep: u32) {
        self.core.crashes.inc();
        self.core.tracer.instant("crash", self.ctx_at(superstep), 0);
    }

    pub(crate) fn note_barrier_poisoned(&self) {
        self.core.tracer.instant("barrier_poison", self.ctx(), 0);
    }
}

/// Coordinator-side handles the [`PersistentCluster`](crate::PersistentCluster)
/// caches once at [`set_obs`](crate::PersistentCluster::set_obs) time.
pub(crate) struct ClusterObsHandles {
    pub(crate) obs: Arc<Obs>,
    /// Pre-registered per-machine cores (index = machine id), cloned
    /// into each job's fabric so job setup never hits the registry.
    pub(crate) machines: Vec<Arc<MachineObsCore>>,
    pub(crate) jobs_total: Arc<Counter>,
    pub(crate) jobs_failed: Arc<Counter>,
    pub(crate) barrier_generations: Arc<Counter>,
    pub(crate) barrier_poisoned: Arc<Counter>,
}

impl ClusterObsHandles {
    pub(crate) fn new(obs: Arc<Obs>, p: usize) -> Self {
        Self {
            machines: (0..p)
                .map(|id| Arc::new(MachineObsCore::new(Arc::clone(&obs), id, p)))
                .collect(),
            jobs_total: obs
                .metrics
                .counter("cgraph_comm_jobs_total", "Jobs submitted to the persistent cluster."),
            jobs_failed: obs.metrics.counter(
                "cgraph_comm_jobs_failed_total",
                "Jobs that failed (machine panic or chaos message loss).",
            ),
            barrier_generations: obs.metrics.counter(
                "cgraph_comm_barrier_generations_total",
                "Completed barrier generations across all jobs.",
            ),
            barrier_poisoned: obs.metrics.counter(
                "cgraph_comm_barrier_poisoned_total",
                "Jobs whose barrier was poisoned by a dying machine.",
            ),
            obs,
        }
    }
}
