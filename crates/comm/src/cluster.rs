//! The simulated cluster: `p` machine threads with all-to-all channels.
//!
//! [`Cluster::run`] is the entry point: it spawns one scoped thread per
//! machine, hands each a [`CommHandle`], and joins them, returning every
//! machine's result. Each machine owns its shard exclusively — the
//! paper's "each processing unit computes on its own subgraph shard" —
//! and all cross-machine traffic goes through the handles.

use crate::async_rt::TerminationDetector;
use crate::barrier::{BarrierPoisoned, ReduceBarrier, Reduction};
use crate::chaos::ChaosJob;
use crate::message::{Envelope, WireSize};
use crate::netmodel::{NetModel, NetStats};
use crate::obs::{JobCoords, MachineObs, MachineObsCore};
use crate::MachineId;
use crossbeam_channel::{unbounded, Receiver, Sender, TryRecvError};
use parking_lot::Mutex;
use std::sync::Arc;

/// A machine's endpoint into the cluster fabric.
pub struct CommHandle<M> {
    id: MachineId,
    p: usize,
    senders: Vec<Sender<Envelope<M>>>,
    receiver: Receiver<Envelope<M>>,
    barrier: Arc<ReduceBarrier>,
    term: Arc<TerminationDetector>,
    model: NetModel,
    stats: Arc<NetStats>,
    chaos: Option<Arc<ChaosJob>>,
    /// Observability bundle (None = instrumentation off; every obs
    /// touch point is gated on it so uninstrumented runs pay nothing).
    obs: Option<Arc<MachineObs>>,
    /// Reorder fault: one message held back until the next send (which
    /// overtakes it) or the next barrier/idle transition (which flushes
    /// it so sync supersteps never leak messages across barriers).
    holdback: Mutex<Option<(MachineId, M)>>,
}

impl<M: WireSize> CommHandle<M> {
    /// This machine's ID.
    #[inline]
    pub fn id(&self) -> MachineId {
        self.id
    }

    /// Number of machines in the cluster.
    #[inline]
    pub fn num_machines(&self) -> usize {
        self.p
    }

    /// Sends `payload` to machine `to`. Self-sends are legal (they
    /// loop back through the local inbox) but cost no simulated
    /// network time.
    ///
    /// Under an armed chaos plan, non-self sends may be dropped
    /// (counted in [`CommHandle::chaos_dropped`]), duplicated,
    /// reordered (held back past the next send), or billed extra
    /// simulated nanoseconds for slow links. Self-sends are never
    /// perturbed: they model local work, not the network.
    pub fn send(&self, to: MachineId, payload: M)
    where
        M: Clone,
    {
        if to != self.id {
            if let Some(chaos) = &self.chaos {
                let extra = chaos.slow_extra_ns(self.id, to);
                if extra > 0 {
                    self.stats.record_extra_ns(extra);
                }
                if chaos.perturbs_messages() {
                    let p_drop = chaos.drop_prob();
                    if p_drop > 0.0 && chaos.roll(self.id) < p_drop {
                        // Lost on the wire: billed, never delivered,
                        // and never counted by termination detection
                        // (the counter stays balanced because no
                        // receiver will ever ack it).
                        self.stats.record_send(&self.model, payload.wire_size());
                        chaos.note_drop();
                        if let Some(obs) = &self.obs {
                            obs.note_drop();
                        }
                        return;
                    }
                    let p_dup = chaos.dup_prob();
                    if p_dup > 0.0 && chaos.roll(self.id) < p_dup {
                        if let Some(obs) = &self.obs {
                            obs.note_dup();
                        }
                        self.raw_send(to, payload.clone());
                    }
                    let p_reorder = chaos.reorder_prob();
                    if p_reorder > 0.0 && chaos.roll(self.id) < p_reorder {
                        // Hold this message back; release whatever was
                        // held before (it is now overtaken).
                        if let Some(obs) = &self.obs {
                            obs.note_reorder();
                        }
                        let prev = self.holdback.lock().replace((to, payload));
                        if let Some((pt, pm)) = prev {
                            self.raw_send(pt, pm);
                        }
                        return;
                    }
                }
            }
        }
        self.raw_send(to, payload);
    }

    /// The unperturbed send path.
    fn raw_send(&self, to: MachineId, payload: M) {
        if to != self.id {
            let bytes = payload.wire_size();
            self.stats.record_send(&self.model, bytes);
            if let Some(obs) = &self.obs {
                obs.note_send(to, bytes as u64);
            }
        }
        self.term.on_send();
        // Unbounded channel: send can only fail if the receiver was
        // dropped, which means a peer machine panicked — propagate.
        self.senders[to]
            .send(Envelope::new(self.id, to, payload))
            .expect("peer machine hung up (panicked?)");
    }

    /// Releases a held-back (reordered) message, if any. Called before
    /// every barrier and idle transition so faults never leak messages
    /// across superstep boundaries.
    fn flush_holdback(&self) {
        if let Some((to, payload)) = self.holdback.lock().take() {
            self.raw_send(to, payload);
        }
    }

    /// A scripted crash point: panics if the chaos plan schedules this
    /// machine to die at `superstep`. Workers call this at the top of
    /// each superstep; without an armed plan it is free.
    pub fn fault_point(&self, superstep: u32) {
        if let Some(obs) = &self.obs {
            obs.set_superstep(superstep);
        }
        if let Some(chaos) = &self.chaos {
            if chaos.should_crash(self.id, superstep) {
                if let Some(obs) = &self.obs {
                    obs.note_crash(superstep);
                }
                panic!("chaos: machine {} crashed at superstep {superstep}", self.id);
            }
        }
    }

    /// Messages dropped by the chaos plan so far this job (across all
    /// machines). Stable at superstep boundaries: after a barrier, and
    /// before any new sends, every machine reads the same value.
    pub fn chaos_dropped(&self) -> u64 {
        self.chaos.as_ref().map_or(0, |c| c.dropped())
    }

    /// Non-blocking receive.
    ///
    /// The caller must call [`CommHandle::message_processed`] after
    /// fully handling the returned envelope (async mode relies on it;
    /// sync mode can use [`CommHandle::drain`] instead).
    pub fn try_recv(&self) -> Option<Envelope<M>> {
        match self.receiver.try_recv() {
            Ok(env) => Some(env),
            Err(TryRecvError::Empty) => None,
            Err(TryRecvError::Disconnected) => None,
        }
    }

    /// Acknowledges that a message obtained from [`CommHandle::try_recv`]
    /// has been fully processed (including any sends that processing
    /// performed).
    pub fn message_processed(&self) {
        self.term.on_processed();
    }

    /// Drains everything currently in the inbox, acknowledging each
    /// message. Used by the synchronous engine right after a barrier,
    /// when all peers' sends for the superstep are already visible.
    pub fn drain(&self) -> Vec<Envelope<M>> {
        let mut out = Vec::new();
        while let Some(env) = self.try_recv() {
            self.term.on_processed();
            out.push(env);
        }
        out
    }

    /// Superstep barrier carrying an all-reduced `u64` (typically the
    /// machine's count of active work; a global sum of 0 means halt).
    pub fn barrier_sum(&self, contribution: u64) -> u64 {
        self.flush_holdback();
        self.barrier.wait_sum(contribution)
    }

    /// Superstep barrier returning the combined sum/max/or over all
    /// machines' contributions.
    pub fn barrier_reduce(&self, contribution: u64) -> Reduction {
        self.flush_holdback();
        self.barrier.wait_reduce(contribution)
    }

    /// Plain barrier.
    pub fn barrier(&self) {
        self.flush_holdback();
        self.barrier.wait();
    }

    /// Non-panicking plain barrier: `Err` when a peer died. Recovery
    /// workers use this to save checkpointable state instead of
    /// unwinding.
    pub fn try_barrier(&self) -> Result<(), BarrierPoisoned> {
        self.flush_holdback();
        let out = self.barrier.try_wait();
        if out.is_err() {
            if let Some(obs) = &self.obs {
                obs.note_barrier_poisoned();
            }
        }
        out
    }

    /// Non-panicking reducing barrier: `Err` when a peer died.
    pub fn try_barrier_reduce(&self, contribution: u64) -> Result<Reduction, BarrierPoisoned> {
        self.flush_holdback();
        let out = self.barrier.try_wait_reduce(contribution);
        if out.is_err() {
            if let Some(obs) = &self.obs {
                obs.note_barrier_poisoned();
            }
        }
        out
    }

    /// Wide reducing barrier: every machine contributes an
    /// up-to-512-bit lane-activity mask
    /// ([`crate::barrier::REDUCE_WORDS`] × `u64`) and receives the
    /// word-wise bitwise OR across the cluster.
    pub fn barrier_reduce_words(
        &self,
        words: [u64; crate::barrier::REDUCE_WORDS],
    ) -> [u64; crate::barrier::REDUCE_WORDS] {
        self.flush_holdback();
        self.barrier.wait_reduce_words(words)
    }

    /// Non-panicking variant of [`CommHandle::barrier_reduce_words`]:
    /// `Err` when a peer died.
    pub fn try_barrier_reduce_words(
        &self,
        words: [u64; crate::barrier::REDUCE_WORDS],
    ) -> Result<[u64; crate::barrier::REDUCE_WORDS], BarrierPoisoned> {
        self.flush_holdback();
        let out = self.barrier.try_wait_reduce_words(words);
        if out.is_err() {
            if let Some(obs) = &self.obs {
                obs.note_barrier_poisoned();
            }
        }
        out
    }

    /// Marks this machine idle/busy for async termination detection.
    pub fn set_idle(&self, idle: bool) {
        if idle {
            // Going idle with a held-back message would deadlock
            // quiescence detection (the send's ack can never balance).
            self.flush_holdback();
        }
        self.term.set_idle(self.id, idle);
    }

    /// True when the whole cluster is quiescent (async mode exit test).
    pub fn quiescent(&self) -> bool {
        self.term.quiescent()
    }

    /// This machine's observability bundle, when the submitting
    /// cluster has one installed (see
    /// [`PersistentCluster::set_obs`](crate::PersistentCluster::set_obs)).
    /// Layers above use it to register their own metric handles and to
    /// record trace events under this machine's ring.
    pub fn obs(&self) -> Option<&Arc<MachineObs>> {
        self.obs.as_ref()
    }

    /// Accounts traffic this machine *proved unnecessary and never
    /// sent* (e.g. frontier deliveries the reachability index showed
    /// to be state no-ops). Shows up in the job's [`TrafficReport`]
    /// so effectiveness benches can report saved messages and bytes.
    pub fn note_suppressed(&self, msgs: u64, bytes: u64) {
        self.stats.record_suppressed(msgs, bytes);
    }

    /// This machine's traffic counters.
    pub fn stats(&self) -> &NetStats {
        &self.stats
    }

    /// The interconnect model in force.
    pub fn model(&self) -> &NetModel {
        &self.model
    }
}

impl<M> Drop for CommHandle<M> {
    fn drop(&mut self) {
        // A message still held back when the handle dies (a machine
        // crash mid-superstep unwinds before any barrier could flush
        // it) was never delivered: account it as a drop so recovery
        // knows the job was lossy.
        if self.holdback.get_mut().is_some() {
            if let Some(chaos) = &self.chaos {
                chaos.note_drop();
            }
        }
    }
}

/// Aggregated per-machine traffic report returned by [`Cluster::run`].
#[derive(Debug, Clone)]
pub struct TrafficReport {
    /// Per-machine (msgs_sent, bytes_sent, sim_net_ns).
    pub per_machine: Vec<(u64, u64, u64)>,
    /// Per-machine (suppressed_msgs, suppressed_bytes): traffic a
    /// layer above proved unnecessary and never put on the wire (see
    /// [`CommHandle::note_suppressed`]).
    pub suppressed_per_machine: Vec<(u64, u64)>,
}

impl TrafficReport {
    pub(crate) fn from_stats(stats: &[Arc<NetStats>]) -> Self {
        Self {
            per_machine: stats
                .iter()
                .map(|st| (st.msgs_sent(), st.bytes_sent(), st.sim_net_ns()))
                .collect(),
            suppressed_per_machine: stats
                .iter()
                .map(|st| (st.suppressed_msgs(), st.suppressed_bytes()))
                .collect(),
        }
    }

    /// Total messages across machines.
    pub fn total_msgs(&self) -> u64 {
        self.per_machine.iter().map(|m| m.0).sum()
    }

    /// Total payload bytes across machines.
    pub fn total_bytes(&self) -> u64 {
        self.per_machine.iter().map(|m| m.1).sum()
    }

    /// Max simulated network time across machines (the straggler).
    pub fn max_sim_net_ns(&self) -> u64 {
        self.per_machine.iter().map(|m| m.2).max().unwrap_or(0)
    }

    /// Total messages suppressed (proven unnecessary, never sent).
    pub fn total_suppressed_msgs(&self) -> u64 {
        self.suppressed_per_machine.iter().map(|m| m.0).sum()
    }

    /// Total payload bytes of suppressed messages.
    pub fn total_suppressed_bytes(&self) -> u64 {
        self.suppressed_per_machine.iter().map(|m| m.1).sum()
    }
}

/// One job's communication fabric: the per-machine handles plus the
/// shared pieces a supervisor needs to keep hold of (the barrier and
/// termination detector for poisoning on machine failure, the traffic
/// counters for reporting). Built fresh per run/job so a poisoned
/// fabric never leaks into the next batch.
pub(crate) struct Fabric<M> {
    pub(crate) handles: Vec<CommHandle<M>>,
    pub(crate) barrier: Arc<ReduceBarrier>,
    pub(crate) term: Arc<TerminationDetector>,
    pub(crate) stats: Vec<Arc<NetStats>>,
    /// Keepalive clones of every machine's inbox receiver. Held by the
    /// submitter for the lifetime of a job so that sends to a machine
    /// whose handle already unwound (crash) land in a never-read
    /// channel instead of panicking the healthy sender.
    pub(crate) receivers: Vec<Receiver<Envelope<M>>>,
}

impl<M: WireSize> Fabric<M> {
    pub(crate) fn build(p: usize, model: NetModel) -> Self {
        Self::build_with_chaos(p, model, None)
    }

    pub(crate) fn build_with_chaos(
        p: usize,
        model: NetModel,
        chaos: Option<Arc<ChaosJob>>,
    ) -> Self {
        Self::build_instrumented(p, model, chaos, None)
    }

    /// Builds a fabric whose handles carry observability bundles. The
    /// caller supplies *pre-registered* per-machine cores (one per
    /// machine, index = machine id) so fabric construction never takes
    /// the metrics registry lock — jobs on a persistent cluster pay
    /// only an `Arc` clone per machine here.
    pub(crate) fn build_instrumented(
        p: usize,
        model: NetModel,
        chaos: Option<Arc<ChaosJob>>,
        obs: Option<(&[Arc<MachineObsCore>], JobCoords)>,
    ) -> Self {
        let mut senders: Vec<Sender<Envelope<M>>> = Vec::with_capacity(p);
        let mut receivers: Vec<Receiver<Envelope<M>>> = Vec::with_capacity(p);
        for _ in 0..p {
            let (tx, rx) = unbounded();
            senders.push(tx);
            receivers.push(rx);
        }
        let barrier = Arc::new(ReduceBarrier::new(p));
        let term = Arc::new(TerminationDetector::new(p));
        let handles: Vec<CommHandle<M>> = receivers
            .iter()
            .enumerate()
            .map(|(id, receiver)| CommHandle {
                id,
                p,
                senders: senders.clone(),
                receiver: receiver.clone(),
                barrier: barrier.clone(),
                term: term.clone(),
                model,
                stats: Arc::new(NetStats::new()),
                chaos: chaos.clone(),
                obs: obs.as_ref().map(|(cores, coords)| {
                    Arc::new(MachineObs::from_core(Arc::clone(&cores[id]), *coords))
                }),
                holdback: Mutex::new(None),
            })
            .collect();
        let stats = handles.iter().map(|h| h.stats.clone()).collect();
        Self { handles, barrier, term, stats, receivers }
    }
}

/// A factory for machine handles plus the scoped-thread driver.
///
/// ```
/// use cgraph_comm::Cluster;
/// let cluster = Cluster::new(3);
/// // Each machine sends its id to machine 0 and all-reduces a sum.
/// let (sums, traffic) = cluster.run::<u64, u64, _>(|h| {
///     if h.id() != 0 {
///         h.send(0, h.id() as u64);
///     }
///     h.barrier();
///     let received: u64 = h.drain().iter().map(|e| e.payload).sum();
///     h.barrier_sum(received)
/// });
/// assert_eq!(sums, vec![3, 3, 3]); // 1 + 2, agreed everywhere
/// assert_eq!(traffic.total_msgs(), 2);
/// ```
pub struct Cluster {
    p: usize,
    model: NetModel,
}

impl Cluster {
    /// Creates a cluster of `p` machines with the default (10 GbE-like)
    /// network model.
    pub fn new(p: usize) -> Self {
        Self::with_model(p, NetModel::default())
    }

    /// Creates a cluster with an explicit network model.
    pub fn with_model(p: usize, model: NetModel) -> Self {
        assert!(p > 0, "cluster needs at least one machine");
        Self { p, model }
    }

    /// Number of machines.
    pub fn num_machines(&self) -> usize {
        self.p
    }

    /// Builds the all-to-all fabric and returns one handle per machine.
    /// Most callers use [`Cluster::run`] instead.
    pub fn handles<M: WireSize>(&self) -> Vec<CommHandle<M>> {
        Fabric::build(self.p, self.model).handles
    }

    /// Spawns one thread per machine running `worker(handle)`, joins
    /// them all, and returns `(per-machine results, traffic report)`.
    ///
    /// A panic on any machine propagates to the caller after all
    /// threads are joined (scoped threads guarantee no leaks).
    pub fn run<M, R, F>(&self, worker: F) -> (Vec<R>, TrafficReport)
    where
        M: WireSize + Send + 'static,
        R: Send,
        F: Fn(CommHandle<M>) -> R + Sync,
    {
        let fabric = Fabric::<M>::build(self.p, self.model);
        let stats = fabric.stats;
        let results = std::thread::scope(|s| {
            let joins: Vec<_> = fabric
                .handles
                .into_iter()
                .map(|h| {
                    let worker = &worker;
                    s.spawn(move || worker(h))
                })
                .collect();
            joins
                .into_iter()
                .map(|j| j.join().expect("machine thread panicked"))
                .collect::<Vec<R>>()
        });
        (results, TrafficReport::from_stats(&stats))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_pass_sums() {
        // Each machine sends its id to the next; everyone receives one
        // message after a barrier.
        let cluster = Cluster::new(4);
        let (results, report) = cluster.run::<u64, u64, _>(|h| {
            let next = (h.id() + 1) % h.num_machines();
            h.send(next, h.id() as u64);
            h.barrier();
            let got = h.drain();
            assert_eq!(got.len(), 1);
            got[0].payload
        });
        let mut sorted = results.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2, 3]);
        assert_eq!(report.total_msgs(), 4);
        assert_eq!(report.total_bytes(), 4 * 8);
    }

    #[test]
    fn self_send_costs_no_network() {
        let cluster = Cluster::new(1);
        let (_, report) = cluster.run::<u64, (), _>(|h| {
            h.send(0, 99);
            let got = h.drain();
            assert_eq!(got[0].payload, 99);
        });
        assert_eq!(report.total_msgs(), 0); // self-sends not billed
    }

    #[test]
    fn barrier_sum_agrees_everywhere() {
        let cluster = Cluster::new(3);
        let (results, _) = cluster.run::<(), u64, _>(|h| h.barrier_sum(h.id() as u64 + 1));
        assert_eq!(results, vec![6, 6, 6]);
    }

    #[test]
    fn multi_superstep_message_flow() {
        // 3 supersteps; each machine forwards an accumulating token.
        let cluster = Cluster::new(3);
        let (results, _) = cluster.run::<u64, u64, _>(|h| {
            let mut acc = 0u64;
            let mut token = h.id() as u64;
            for _ in 0..3 {
                h.send((h.id() + 1) % 3, token);
                h.barrier();
                let msgs = h.drain();
                assert_eq!(msgs.len(), 1);
                token = msgs[0].payload + 1;
                acc += token;
                h.barrier();
            }
            acc
        });
        // Tokens rotate and increment once per hop; after 3 supersteps
        // every machine has accumulated 9 (worked out by hand).
        assert_eq!(results, vec![9, 9, 9]);
    }

    #[test]
    fn async_quiescence_across_machines() {
        let cluster = Cluster::new(3);
        let (results, _) = cluster.run::<u64, u64, _>(|h| {
            // machine 0 seeds a countdown token
            if h.id() == 0 {
                h.send(1, 20);
            }
            let mut processed = 0u64;
            loop {
                match h.try_recv() {
                    Some(env) => {
                        h.set_idle(false);
                        if env.payload > 0 {
                            h.send((h.id() + 1) % 3, env.payload - 1);
                        }
                        processed += 1;
                        h.message_processed();
                    }
                    None => {
                        h.set_idle(true);
                        if h.quiescent() {
                            return processed;
                        }
                        std::thread::yield_now();
                    }
                }
            }
        });
        assert_eq!(results.iter().sum::<u64>(), 21);
    }

    #[test]
    #[should_panic(expected = "machine thread panicked")]
    fn worker_panic_propagates() {
        let cluster = Cluster::new(2);
        cluster.run::<(), (), _>(|h| {
            if h.id() == 1 {
                panic!("boom");
            }
            // Machine 0 must not deadlock waiting on a barrier here —
            // it simply returns.
        });
    }
}
