//! Analytic network cost model and per-machine traffic statistics.
//!
//! The paper treats "all communications as an abstraction of the I/O
//! hierarchy (i.e. memory, disk, and network latency)" (§3). Since our
//! machines are threads, real channel transfer is nearly free; this
//! model *attributes* what the same traffic would cost on a cluster
//! interconnect so scaling analyses can report communication time and
//! volume. It never sleeps — wall-clock benches measure real compute,
//! and simulated network time is reported separately.

use std::sync::atomic::{AtomicU64, Ordering};

/// Latency/bandwidth parameters of the simulated interconnect.
#[derive(Clone, Copy, Debug)]
pub struct NetModel {
    /// Fixed cost per message, nanoseconds (switch + stack latency).
    pub latency_ns_per_msg: u64,
    /// Bandwidth in bytes per microsecond (e.g. 10 GbE ≈ 1250 B/µs).
    pub bytes_per_us: u64,
    /// Fixed per-message header bytes added to every payload.
    pub header_bytes: usize,
}

impl NetModel {
    /// A 10-gigabit-Ethernet-like profile (the paper's "high speed
    /// network connections").
    pub const TEN_GBE: NetModel =
        NetModel { latency_ns_per_msg: 10_000, bytes_per_us: 1_250, header_bytes: 48 };

    /// An ideal zero-cost network (useful for isolating compute).
    pub const FREE: NetModel =
        NetModel { latency_ns_per_msg: 0, bytes_per_us: u64::MAX, header_bytes: 0 };

    /// Simulated time to move one `payload_bytes` message, in ns.
    pub fn msg_cost_ns(&self, payload_bytes: usize) -> u64 {
        let bytes = (payload_bytes + self.header_bytes) as u64;
        let transfer_ns = if self.bytes_per_us == u64::MAX {
            0
        } else {
            bytes.saturating_mul(1_000) / self.bytes_per_us.max(1)
        };
        self.latency_ns_per_msg + transfer_ns
    }
}

impl Default for NetModel {
    fn default() -> Self {
        Self::TEN_GBE
    }
}

/// Lock-free traffic counters for one machine. Shared via `Arc` with
/// the sending thread; relaxed ordering is sufficient because the
/// counters are only read after the cluster joins (the thread join
/// provides the happens-before edge).
#[derive(Debug, Default)]
pub struct NetStats {
    msgs_sent: AtomicU64,
    bytes_sent: AtomicU64,
    sim_net_ns: AtomicU64,
    suppressed_msgs: AtomicU64,
    suppressed_bytes: AtomicU64,
}

impl NetStats {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sent message of `payload_bytes` under `model`.
    pub fn record_send(&self, model: &NetModel, payload_bytes: usize) {
        self.msgs_sent.fetch_add(1, Ordering::Relaxed);
        self.bytes_sent.fetch_add(payload_bytes as u64, Ordering::Relaxed);
        self.sim_net_ns.fetch_add(model.msg_cost_ns(payload_bytes), Ordering::Relaxed);
    }

    /// Attributes extra simulated network nanoseconds (e.g. a chaos
    /// plan's [slow links](crate::chaos::SlowLink) layered on top of
    /// the base model's per-message cost).
    pub fn record_extra_ns(&self, ns: u64) {
        self.sim_net_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// Messages sent so far.
    pub fn msgs_sent(&self) -> u64 {
        self.msgs_sent.load(Ordering::Relaxed)
    }

    /// Payload bytes sent so far.
    pub fn bytes_sent(&self) -> u64 {
        self.bytes_sent.load(Ordering::Relaxed)
    }

    /// Simulated network nanoseconds attributed so far.
    pub fn sim_net_ns(&self) -> u64 {
        self.sim_net_ns.load(Ordering::Relaxed)
    }

    /// Records traffic a layer above *chose not to send* (e.g. the
    /// reachability index proving a frontier delivery a no-op). The
    /// `bytes` are what the payload would have cost on the wire, so
    /// effectiveness reports can state saved volume, not just counts.
    /// Suppressed traffic is never billed simulated network time.
    pub fn record_suppressed(&self, msgs: u64, bytes: u64) {
        self.suppressed_msgs.fetch_add(msgs, Ordering::Relaxed);
        self.suppressed_bytes.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Messages suppressed (proven unnecessary, never sent) so far.
    pub fn suppressed_msgs(&self) -> u64 {
        self.suppressed_msgs.load(Ordering::Relaxed)
    }

    /// Payload bytes of suppressed messages so far.
    pub fn suppressed_bytes(&self) -> u64 {
        self.suppressed_bytes.load(Ordering::Relaxed)
    }

    /// Zeroes all counters (between experiment repetitions).
    pub fn reset(&self) {
        self.msgs_sent.store(0, Ordering::Relaxed);
        self.bytes_sent.store(0, Ordering::Relaxed);
        self.sim_net_ns.store(0, Ordering::Relaxed);
        self.suppressed_msgs.store(0, Ordering::Relaxed);
        self.suppressed_bytes.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cost_includes_latency_and_transfer() {
        let m = NetModel { latency_ns_per_msg: 100, bytes_per_us: 1000, header_bytes: 0 };
        // 500 bytes at 1000 B/µs = 0.5 µs = 500 ns, + 100 latency
        assert_eq!(m.msg_cost_ns(500), 600);
    }

    #[test]
    fn free_network_costs_nothing() {
        assert_eq!(NetModel::FREE.msg_cost_ns(1_000_000), 0);
    }

    #[test]
    fn header_counted() {
        let m = NetModel { latency_ns_per_msg: 0, bytes_per_us: 1, header_bytes: 10 };
        assert_eq!(m.msg_cost_ns(0), 10_000); // 10 bytes at 1 B/µs
    }

    #[test]
    fn stats_accumulate_and_reset() {
        let s = NetStats::new();
        let m = NetModel { latency_ns_per_msg: 5, bytes_per_us: u64::MAX - 1, header_bytes: 0 };
        s.record_send(&m, 100);
        s.record_send(&m, 50);
        assert_eq!(s.msgs_sent(), 2);
        assert_eq!(s.bytes_sent(), 150);
        assert!(s.sim_net_ns() >= 10);
        s.reset();
        assert_eq!(s.msgs_sent(), 0);
    }
}
