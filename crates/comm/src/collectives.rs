//! MPI-style collectives built on the reduce barrier.
//!
//! The engine needs: `allreduce_sum` for vote-to-halt and global
//! frontier counts, `allreduce_max` for convergence checks (PageRank
//! delta, max traversal depth), and an `f64` sum for residuals. All
//! are synchronous: every machine must call them in the same order.

use crate::cluster::CommHandle;
use crate::message::WireSize;

/// All-reduces a `u64` sum across all machines.
pub fn allreduce_sum<M: WireSize>(h: &CommHandle<M>, value: u64) -> u64 {
    h.barrier_reduce(value).sum
}

/// All-reduces a `u64` max across all machines.
pub fn allreduce_max<M: WireSize>(h: &CommHandle<M>, value: u64) -> u64 {
    h.barrier_reduce(value).max
}

/// All-reduces a bitwise OR across all machines (per-lane activity
/// masks in the batched traversal engine).
pub fn allreduce_or<M: WireSize>(h: &CommHandle<M>, value: u64) -> u64 {
    h.barrier_reduce(value).or
}

/// All-reduces an `f64` sum across all machines.
///
/// The barrier carries `u64`, so the value is shipped as two's-
/// complement fixed point at 1e-12 resolution (range ±9.2e6) — ample
/// for PageRank residuals and per-machine timing sums, and wrapping
/// addition keeps negative contributions exact.
pub fn allreduce_sum_f64<M: WireSize>(h: &CommHandle<M>, value: f64) -> f64 {
    const SCALE: f64 = 1e12;
    debug_assert!(value.abs() < 9.0e6, "value out of fixed-point range: {value}");
    let fixed = (value * SCALE) as i64;
    let total = h.barrier_reduce(fixed as u64).sum;
    (total as i64) as f64 / SCALE
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::Cluster;

    #[test]
    fn sum_u64() {
        let c = Cluster::new(4);
        let (r, _) = c.run::<(), u64, _>(|h| allreduce_sum(&h, (h.id() as u64 + 1) * 10));
        assert_eq!(r, vec![100, 100, 100, 100]);
    }

    #[test]
    fn sum_f64_handles_negative() {
        let c = Cluster::new(2);
        let (r, _) = c.run::<(), f64, _>(|h| {
            let v = if h.id() == 0 { 1.5 } else { -0.5 };
            allreduce_sum_f64(&h, v)
        });
        for x in r {
            assert!((x - 1.0).abs() < 1e-9, "{x}");
        }
    }

    #[test]
    fn max_across_machines() {
        let c = Cluster::new(3);
        let (r, _) = c.run::<(), u64, _>(|h| allreduce_max(&h, [7u64, 99, 12][h.id()]));
        assert_eq!(r, vec![99, 99, 99]);
    }

    #[test]
    fn collectives_compose_in_sequence() {
        let c = Cluster::new(2);
        let (r, _) = c.run::<(), (u64, u64, f64), _>(|h| {
            let s = allreduce_sum(&h, 1);
            let m = allreduce_max(&h, h.id() as u64);
            let f = allreduce_sum_f64(&h, 0.25);
            (s, m, f)
        });
        for (s, m, f) in r {
            assert_eq!(s, 2);
            assert_eq!(m, 1);
            assert!((f - 0.5).abs() < 1e-9);
        }
    }
}
