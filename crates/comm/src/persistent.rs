//! A reusable cluster: long-lived machine threads serving many jobs.
//!
//! [`Cluster::run`](crate::cluster::Cluster::run) spawns and joins `p`
//! OS threads per call — fine for one-shot batch experiments, but a
//! streaming query service dispatches thousands of small batches and
//! cannot pay thread creation/teardown per batch. A
//! [`PersistentCluster`] spawns the machine threads **once**; between
//! jobs they park on their job channel, and each submitted job gets a
//! fresh communication fabric (channels, barrier, termination
//! detector) so state — including poison from a failed job — never
//! leaks across batches.
//!
//! Failure containment: each machine runs its job under
//! `catch_unwind`. The first machine to observe a panic poisons the
//! job's barrier and termination detector, which wakes or aborts every
//! peer parked on them; those peers' induced panics are caught the
//! same way. [`PersistentCluster::submit`] then returns
//! [`ClusterError::MachinePanicked`] — and the machine threads,
//! having caught everything, park again ready for the next job.
//!
//! Because submitted jobs borrow the submitter's stack frame (their
//! lifetimes are erased under a scoped-thread-pool argument), `submit`
//! aborts the process rather than unwinding if a machine thread itself
//! ever dies mid-protocol — see `protocol_fatal`.

use crate::chaos::ChaosRun;
use crate::cluster::{CommHandle, Fabric, TrafficReport};
use crate::message::WireSize;
use crate::netmodel::NetModel;
use crate::obs::{ClusterObsHandles, JobCoords};
use cgraph_obs::Obs;
use crossbeam_channel::{unbounded, Receiver, Sender};
use std::any::Any;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::sync::Mutex;
use std::thread::JoinHandle;

/// Why a submission failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClusterError {
    /// [`PersistentCluster::shutdown`] already ran; no machine threads
    /// remain to execute jobs.
    ShutDown,
    /// A machine's worker panicked during the job. Peer machines were
    /// unblocked via fabric poisoning; the cluster itself survives and
    /// accepts further jobs.
    MachinePanicked {
        /// The first machine observed to fail.
        machine: usize,
        /// Its panic payload, rendered as text.
        message: String,
    },
    /// Every machine completed, but the chaos plan dropped messages in
    /// flight — the results are built from incomplete mailboxes and
    /// must not be trusted. Recoverable by re-execution.
    MessagesLost {
        /// Messages dropped during the job.
        dropped: u64,
    },
}

impl ClusterError {
    /// True when retrying the job could succeed (the cluster itself is
    /// still alive).
    pub fn is_recoverable(&self) -> bool {
        !matches!(self, ClusterError::ShutDown)
    }
}

impl std::fmt::Display for ClusterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClusterError::ShutDown => write!(f, "cluster is shut down"),
            ClusterError::MachinePanicked { machine, message } => {
                write!(f, "machine {machine} panicked: {message}")
            }
            ClusterError::MessagesLost { dropped } => {
                write!(f, "{dropped} message(s) lost in flight: results are untrustworthy")
            }
        }
    }
}

impl std::error::Error for ClusterError {}

/// Last resort for a broken submit protocol: a machine thread vanished
/// (its job channel or the ack channel disconnected) while `submit`
/// had jobs outstanding. Machine threads catch every job panic, so
/// this is unreachable unless a thread was killed externally — and at
/// that point unwinding out of `submit` would be *unsound*: dispatched
/// jobs borrow `submit`'s stack frame through erased lifetimes
/// (use-after-free once the frame unwinds), and any acks left
/// unconsumed would let the next `submit` return while this job's
/// closures still run. Abort instead of unwinding.
fn protocol_fatal(what: &str) -> ! {
    eprintln!(
        "cgraph-comm fatal: {what}; aborting — cannot unwind while borrowed jobs are in flight"
    );
    std::process::abort();
}

fn panic_message(payload: Box<dyn Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// A job as seen by a machine thread: type- and lifetime-erased.
/// Safety contract: the submitter blocks until the job has run, so the
/// erased borrows outlive every use (the scoped-thread-pool argument).
type Job = Box<dyn FnOnce() + Send>;

struct Inner {
    /// One job channel per machine; `None` after shutdown (dropping
    /// the senders is what releases the parked threads).
    job_txs: Option<Vec<Sender<Job>>>,
    /// Machines acknowledge job completion here.
    ack_rx: Receiver<usize>,
    threads: Vec<JoinHandle<()>>,
}

/// `p` long-lived machine threads executing submitted jobs.
///
/// ```
/// use cgraph_comm::PersistentCluster;
/// let cluster = PersistentCluster::new(3);
/// for round in 0..4u64 {
///     let (sums, _traffic) = cluster
///         .submit::<u64, u64, _>(|h| {
///             h.send((h.id() + 1) % h.num_machines(), round);
///             h.barrier();
///             h.drain().iter().map(|e| e.payload).sum::<u64>()
///         })
///         .unwrap();
///     assert_eq!(sums, vec![round; 3]);
/// }
/// cluster.shutdown();
/// assert!(cluster.submit::<u64, (), _>(|_| ()).is_err());
/// ```
pub struct PersistentCluster {
    p: usize,
    model: NetModel,
    inner: Mutex<Inner>,
    /// Completed-job count — the job "generation". Each generation
    /// corresponds to one fabric; machines of generation `g` can never
    /// touch generation `g+1` state.
    generation: AtomicU64,
    /// Coordinator-side observability handles, cached once at
    /// [`PersistentCluster::set_obs`] time.
    obs: Mutex<Option<Arc<ClusterObsHandles>>>,
}

impl PersistentCluster {
    /// Spawns `p` machine threads with the default network model.
    pub fn new(p: usize) -> Self {
        Self::with_model(p, NetModel::default())
    }

    /// Spawns `p` machine threads with an explicit network model.
    pub fn with_model(p: usize, model: NetModel) -> Self {
        assert!(p > 0, "cluster needs at least one machine");
        let (ack_tx, ack_rx) = unbounded::<usize>();
        let mut job_txs = Vec::with_capacity(p);
        let mut threads = Vec::with_capacity(p);
        for id in 0..p {
            let (tx, rx) = unbounded::<Job>();
            job_txs.push(tx);
            let ack = ack_tx.clone();
            threads.push(
                std::thread::Builder::new()
                    .name(format!("cgraph-machine-{id}"))
                    .spawn(move || {
                        // Park on the job channel; a disconnect (all
                        // senders dropped at shutdown) ends the thread.
                        while let Ok(job) = rx.recv() {
                            job(); // never unwinds: jobs catch internally
                            if ack.send(id).is_err() {
                                break;
                            }
                        }
                    })
                    .expect("spawn machine thread"),
            );
        }
        Self {
            p,
            model,
            inner: Mutex::new(Inner { job_txs: Some(job_txs), ack_rx, threads }),
            generation: AtomicU64::new(0),
            obs: Mutex::new(None),
        }
    }

    /// Number of machines.
    pub fn num_machines(&self) -> usize {
        self.p
    }

    /// Number of jobs completed so far.
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::SeqCst)
    }

    /// Installs an observability bundle: every subsequent job wires a
    /// per-machine [`MachineObs`](crate::obs::MachineObs) into its
    /// [`CommHandle`]s and the cluster accounts jobs, barrier
    /// generations, and barrier poisonings against the registry.
    pub fn set_obs(&self, obs: Arc<Obs>) {
        *self.obs.lock().unwrap_or_else(|e| e.into_inner()) =
            Some(Arc::new(ClusterObsHandles::new(obs, self.p)));
    }

    /// The installed observability bundle, if any.
    pub fn obs(&self) -> Option<Arc<Obs>> {
        self.obs.lock().unwrap_or_else(|e| e.into_inner()).as_ref().map(|h| Arc::clone(&h.obs))
    }

    /// Runs `worker(handle)` on every machine over a fresh fabric and
    /// blocks until all machines finish, returning per-machine results
    /// and the job's traffic report.
    ///
    /// Concurrent submitters are serialized: one job occupies the
    /// whole cluster at a time (batches are cluster-wide by design).
    ///
    /// On a machine panic the remaining machines are unblocked through
    /// fabric poisoning, the error is returned, and the cluster stays
    /// usable for subsequent jobs.
    pub fn submit<M, R, F>(&self, worker: F) -> Result<(Vec<R>, TrafficReport), ClusterError>
    where
        M: WireSize + Send,
        R: Send,
        F: Fn(CommHandle<M>) -> R + Sync,
    {
        self.submit_with_chaos(None, worker)
    }

    /// Like [`PersistentCluster::submit`], but wires an optional
    /// [`ChaosRun`] into every machine's [`CommHandle`] so the job
    /// experiences the run's fault plan (scripted crashes at
    /// [`CommHandle::fault_point`]s, message drop/dup/reorder, slow
    /// links).
    ///
    /// If the job completes but the plan dropped messages, the results
    /// were computed from incomplete mailboxes and
    /// [`ClusterError::MessagesLost`] is returned instead. If a
    /// machine panicked *and* messages were dropped, the panic wins
    /// (read [`ChaosRun::dropped`] afterwards for the full picture).
    pub fn submit_with_chaos<M, R, F>(
        &self,
        chaos: Option<&ChaosRun>,
        worker: F,
    ) -> Result<(Vec<R>, TrafficReport), ClusterError>
    where
        M: WireSize + Send,
        R: Send,
        F: Fn(CommHandle<M>) -> R + Sync,
    {
        // Default job coordinates: the chaos run's if present (the
        // caller chose them), else the current generation as the job
        // number (unique per completed job under serialized submits).
        let coords = match chaos {
            Some(run) => JobCoords { job: run.job, attempt: run.attempt },
            None => JobCoords { job: self.generation(), attempt: 0 },
        };
        self.submit_job(chaos, coords, worker)
    }

    /// The fully-specified submission path: like
    /// [`PersistentCluster::submit_with_chaos`] but with explicit
    /// [`JobCoords`] labelling the job's metrics and trace events (the
    /// query service passes its batch sequence number and retry
    /// attempt here so cluster-level events join up with service-level
    /// ones).
    pub fn submit_job<M, R, F>(
        &self,
        chaos: Option<&ChaosRun>,
        coords: JobCoords,
        worker: F,
    ) -> Result<(Vec<R>, TrafficReport), ClusterError>
    where
        M: WireSize + Send,
        R: Send,
        F: Fn(CommHandle<M>) -> R + Sync,
    {
        let obs = self.obs.lock().unwrap_or_else(|e| e.into_inner()).clone();
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let Some(job_txs) = inner.job_txs.as_ref() else {
            return Err(ClusterError::ShutDown);
        };

        let chaos_job = chaos.map(|run| std::sync::Arc::new(run.job_state(self.p)));
        let fabric = Fabric::<M>::build_instrumented(
            self.p,
            self.model,
            chaos_job.clone(),
            obs.as_ref().map(|h| (h.machines.as_slice(), coords)),
        );
        let stats = fabric.stats;
        let barrier = fabric.barrier;
        let term = fabric.term;
        // Keep every machine's inbox receiver alive until all acks are
        // in: a crashed machine drops its handle (and receiver) before
        // peers see the poison, and without this their sends to the
        // dead machine would panic "hung up" — masking the real
        // failure and defeating checkpoint-saving peers.
        let _keepalive = fabric.receivers;
        // One result slot per machine, written exactly once per job.
        let results: Mutex<Vec<Option<Result<R, String>>>> =
            Mutex::new((0..self.p).map(|_| None).collect());

        let worker = &worker;
        let results_ref = &results;
        for (id, (handle, tx)) in fabric.handles.into_iter().zip(job_txs).enumerate() {
            let barrier = barrier.clone();
            let term = term.clone();
            let job: Box<dyn FnOnce() + Send + '_> = Box::new(move || {
                let outcome = catch_unwind(AssertUnwindSafe(|| worker(handle)));
                let entry = match outcome {
                    Ok(r) => Ok(r),
                    Err(payload) => {
                        // Wake peers parked on this job's fabric so
                        // they fail fast instead of waiting forever.
                        barrier.poison();
                        term.poison();
                        Err(panic_message(payload))
                    }
                };
                results_ref.lock().unwrap_or_else(|e| e.into_inner())[id] = Some(entry);
            });
            // SAFETY: erase the borrow lifetimes (worker, results).
            // The ack loop below blocks this function until every
            // machine has finished and dropped its job closure, so no
            // erased borrow outlives its referent — the standard
            // scoped-thread-pool argument. For that argument to hold,
            // `submit` must not unwind between the first `send` and the
            // last ack: the only fallible operations in that window are
            // the channel send/recv below, and both abort (not panic)
            // on failure via `protocol_fatal`.
            unsafe fn erase<'a>(job: Box<dyn FnOnce() + Send + 'a>) -> Job {
                std::mem::transmute(job)
            }
            let job: Job = unsafe { erase(job) };
            if tx.send(job).is_err() {
                protocol_fatal("machine thread exited with jobs in flight");
            }
        }

        for _ in 0..self.p {
            if inner.ack_rx.recv().is_err() {
                protocol_fatal("machine thread exited before acknowledging its job");
            }
        }
        self.generation.fetch_add(1, Ordering::SeqCst);

        let slots = results.into_inner().unwrap_or_else(|e| e.into_inner());
        let mut out = Vec::with_capacity(self.p);
        let mut failure: Option<(usize, String)> = None;
        // Peers of a dead machine die too, from the poisoned barrier /
        // detector. Report the root cause, not a cascade victim.
        let cascade = "a peer machine died mid-computation";
        for (machine, slot) in slots.into_iter().enumerate() {
            match slot.expect("machine finished without reporting a result") {
                Ok(r) => out.push(r),
                Err(message) => {
                    let prefer = match &failure {
                        None => true,
                        Some((_, kept)) => kept.contains(cascade) && !message.contains(cascade),
                    };
                    if prefer {
                        failure = Some((machine, message));
                    }
                }
            }
        }
        let mut result = match failure {
            Some((machine, message)) => Err(ClusterError::MachinePanicked { machine, message }),
            None => Ok((out, TrafficReport::from_stats(&stats))),
        };
        if result.is_ok() {
            if let Some(job) = &chaos_job {
                let dropped = job.dropped();
                if dropped > 0 {
                    result = Err(ClusterError::MessagesLost { dropped });
                }
            }
        }
        if let Some(h) = &obs {
            h.jobs_total.inc();
            h.barrier_generations.add(barrier.generations());
            if barrier.is_poisoned() {
                h.barrier_poisoned.inc();
            }
            if result.is_err() {
                h.jobs_failed.inc();
            }
        }
        result
    }

    /// Gracefully stops the machine threads: parked machines wake on
    /// channel disconnect and exit; all threads are joined. Idempotent.
    /// Subsequent [`PersistentCluster::submit`] calls return
    /// [`ClusterError::ShutDown`].
    pub fn shutdown(&self) {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.job_txs = None; // disconnects every job channel
        for t in inner.threads.drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for PersistentCluster {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reusable_across_many_jobs() {
        let cluster = PersistentCluster::new(3);
        for round in 0..20u64 {
            let (results, traffic) = cluster
                .submit::<u64, u64, _>(|h| {
                    let next = (h.id() + 1) % h.num_machines();
                    h.send(next, round * 10 + h.id() as u64);
                    h.barrier();
                    let got = h.drain();
                    assert_eq!(got.len(), 1);
                    got[0].payload
                })
                .unwrap();
            let mut sorted = results;
            sorted.sort_unstable();
            assert_eq!(sorted, (0..3).map(|i| round * 10 + i).collect::<Vec<_>>());
            assert_eq!(traffic.total_msgs(), 3);
        }
        assert_eq!(cluster.generation(), 20);
    }

    #[test]
    fn panic_fails_job_but_cluster_survives() {
        let cluster = PersistentCluster::new(4);
        // Healthy machines enter a barrier the panicking machine never
        // reaches — exactly the deadlock poisoning must break.
        let err = cluster
            .submit::<u64, u64, _>(|h| {
                if h.id() == 2 {
                    panic!("injected failure");
                }
                h.barrier_sum(1)
            })
            .unwrap_err();
        match err {
            ClusterError::MachinePanicked { machine: _, message } => {
                // The first-reported machine may be the injected one or
                // a peer that panicked on the poisoned barrier.
                assert!(
                    message.contains("injected failure") || message.contains("poisoned"),
                    "unexpected message: {message}"
                );
            }
            other => panic!("expected MachinePanicked, got {other:?}"),
        }
        // The same cluster immediately serves the next job.
        let (sums, _) = cluster.submit::<u64, u64, _>(|h| h.barrier_sum(1)).unwrap();
        assert_eq!(sums, vec![4, 4, 4, 4]);
    }

    #[test]
    fn async_style_job_poisoned_on_panic() {
        let cluster = PersistentCluster::new(3);
        let err = cluster
            .submit::<u64, u64, _>(|h| {
                if h.id() == 0 {
                    panic!("async worker died");
                }
                // Peers idle-poll quiescence, as the async engine does;
                // poison must turn this loop into a contained panic.
                let mut polls = 0u64;
                loop {
                    h.set_idle(true);
                    if h.quiescent() {
                        return polls;
                    }
                    polls += 1;
                    std::thread::yield_now();
                }
            })
            .unwrap_err();
        assert!(matches!(err, ClusterError::MachinePanicked { .. }));
        // Cluster still alive.
        let (ok, _) = cluster.submit::<u64, u64, _>(|h| h.id() as u64).unwrap();
        assert_eq!(ok, vec![0, 1, 2]);
    }

    #[test]
    fn shutdown_is_graceful_and_idempotent() {
        let cluster = PersistentCluster::new(2);
        let (r, _) = cluster.submit::<u64, usize, _>(|h| h.id()).unwrap();
        assert_eq!(r, vec![0, 1]);
        cluster.shutdown();
        cluster.shutdown(); // idempotent
        assert_eq!(cluster.submit::<u64, (), _>(|_| ()).unwrap_err(), ClusterError::ShutDown);
    }

    #[test]
    fn concurrent_submitters_serialize() {
        let cluster = std::sync::Arc::new(PersistentCluster::new(2));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let c = cluster.clone();
                std::thread::spawn(move || {
                    for _ in 0..10 {
                        let (sums, _) = c.submit::<u64, u64, _>(|h| h.barrier_sum(1)).unwrap();
                        assert_eq!(sums, vec![2, 2]);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(cluster.generation(), 40);
    }

    #[test]
    fn chaos_crash_fails_job_deterministically() {
        use crate::chaos::FaultPlan;
        let cluster = PersistentCluster::new(3);
        let plan = FaultPlan::new(1).crash(1, 2);
        for _ in 0..3 {
            let run = ChaosRun::new(plan.clone(), 0, 0);
            let err = cluster
                .submit_with_chaos::<u64, u64, _>(Some(&run), |h| {
                    for step in 0..4u32 {
                        h.fault_point(step);
                        h.barrier();
                    }
                    7
                })
                .unwrap_err();
            match err {
                ClusterError::MachinePanicked { message, .. } => {
                    assert!(
                        message.contains("crashed at superstep 2") || message.contains("poisoned"),
                        "unexpected: {message}"
                    );
                }
                other => panic!("expected MachinePanicked, got {other:?}"),
            }
        }
        // A healed attempt succeeds on the same cluster.
        let run = ChaosRun::new(plan.heal_after(1), 0, 1);
        let (ok, _) = cluster
            .submit_with_chaos::<u64, u64, _>(Some(&run), |h| {
                for step in 0..4u32 {
                    h.fault_point(step);
                    h.barrier();
                }
                7
            })
            .unwrap();
        assert_eq!(ok, vec![7, 7, 7]);
    }

    #[test]
    fn chaos_drops_surface_as_messages_lost() {
        use crate::chaos::FaultPlan;
        let cluster = PersistentCluster::new(2);
        let run = ChaosRun::new(FaultPlan::new(3).with_drop(1.0), 0, 0);
        let err = cluster
            .submit_with_chaos::<u64, u64, _>(Some(&run), |h| {
                h.send(1 - h.id(), 5);
                h.barrier();
                h.drain().iter().map(|e| e.payload).sum()
            })
            .unwrap_err();
        assert_eq!(err, ClusterError::MessagesLost { dropped: 2 });
        assert_eq!(run.dropped(), 2);
        assert!(err.is_recoverable());
    }

    #[test]
    fn chaos_dup_and_reorder_preserve_superstep_delivery() {
        use crate::chaos::FaultPlan;
        let cluster = PersistentCluster::new(2);
        // Dup and reorder perturb the mailbox but lose nothing: after
        // the barrier each machine must still see every payload at
        // least once, and the barrier must flush held-back messages.
        let plan = FaultPlan::new(11).with_dup(0.5).with_reorder(0.5);
        let run = ChaosRun::new(plan, 0, 0);
        let (got, _) = cluster
            .submit_with_chaos::<u64, Vec<u64>, _>(Some(&run), |h| {
                for m in 0..8u64 {
                    h.send(1 - h.id(), m);
                }
                h.barrier();
                let mut seen: Vec<u64> = h.drain().iter().map(|e| e.payload).collect();
                seen.sort_unstable();
                seen.dedup();
                seen
            })
            .unwrap();
        for machine in got {
            assert_eq!(machine, (0..8).collect::<Vec<_>>());
        }
        assert_eq!(run.dropped(), 0);
    }

    #[test]
    fn chaos_slow_links_bill_extra_sim_time() {
        use crate::chaos::FaultPlan;
        let cluster = PersistentCluster::with_model(2, NetModel::FREE);
        let run = ChaosRun::new(FaultPlan::new(0).slow_link(0, 1, 7_000), 0, 0);
        let (_, traffic) = cluster
            .submit_with_chaos::<u64, (), _>(Some(&run), |h| {
                if h.id() == 0 {
                    h.send(1, 1);
                    h.send(1, 2);
                }
                h.barrier();
                h.drain();
            })
            .unwrap();
        // Machine 0's two sends over the slowed link: 2 × 7 µs on an
        // otherwise free network.
        assert_eq!(traffic.per_machine[0].2, 14_000);
        assert_eq!(traffic.per_machine[1].2, 0);
    }

    #[test]
    fn disarmed_chaos_job_runs_clean() {
        use crate::chaos::FaultPlan;
        let cluster = PersistentCluster::new(2);
        let plan = FaultPlan::new(9).crash(0, 0).with_drop(1.0).arm_jobs(10..11);
        let run = ChaosRun::new(plan, 3, 0); // job 3 is outside 10..11
        let (sums, _) = cluster
            .submit_with_chaos::<u64, u64, _>(Some(&run), |h| {
                h.fault_point(0);
                h.send(1 - h.id(), 1);
                h.barrier();
                h.drain().iter().map(|e| e.payload).sum::<u64>() + h.barrier_sum(1)
            })
            .unwrap();
        assert_eq!(sums, vec![3, 3]);
    }

    #[test]
    fn obs_accounts_jobs_links_and_crashes() {
        use crate::chaos::FaultPlan;
        let cluster = PersistentCluster::new(2);
        let obs = Obs::shared();
        cluster.set_obs(Arc::clone(&obs));
        cluster
            .submit::<u64, (), _>(|h| {
                h.send(1 - h.id(), 7);
                h.barrier();
                h.drain();
            })
            .unwrap();
        let run = ChaosRun::new(FaultPlan::new(5).crash(1, 0), 9, 0);
        let err = cluster
            .submit_with_chaos::<u64, (), _>(Some(&run), |h| {
                h.fault_point(0);
                let _ = h.try_barrier();
            })
            .unwrap_err();
        assert!(matches!(err, ClusterError::MachinePanicked { .. }));
        let snap = cgraph_obs::parse_text(&obs.metrics.render_text()).unwrap();
        assert_eq!(snap.counters["cgraph_comm_jobs_total"], 2);
        assert_eq!(snap.counters["cgraph_comm_jobs_failed_total"], 1);
        assert_eq!(snap.counters["cgraph_comm_machine_crashes_total"], 1);
        assert_eq!(snap.counters["cgraph_comm_barrier_poisoned_total"], 1);
        assert_eq!(snap.counters["cgraph_comm_msgs_sent_total{link=\"0->1\"}"], 1);
        assert_eq!(snap.counters["cgraph_comm_msgs_sent_total{link=\"1->0\"}"], 1);
        assert!(snap.counters["cgraph_comm_barrier_generations_total"] >= 1);
        // The crash left a deterministic trace event at its logical
        // coordinates (job 9, machine 1, superstep 0).
        let log = cgraph_obs::TraceSink::render(&obs.trace.drain());
        assert!(log.contains("job=9 attempt=0 step=0 machine=1 instant crash value=0"), "{log}");
    }

    #[test]
    fn borrowed_state_visible_to_jobs() {
        // Jobs may capture non-'static borrows (the engine's shards);
        // verify reads and writes through such borrows.
        let cluster = PersistentCluster::new(2);
        let data = [10u64, 20u64];
        let acc = Mutex::new(0u64);
        let (_, _) = cluster
            .submit::<u64, (), _>(|h| {
                let v = data[h.id()];
                *acc.lock().unwrap() += v;
            })
            .unwrap();
        assert_eq!(*acc.lock().unwrap(), 30);
    }
}
