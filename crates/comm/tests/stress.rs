//! Stress tests for the communication substrate: barrier generations
//! under contention, async termination with random message storms, and
//! traffic accounting exactness.

use cgraph_comm::{Cluster, NetModel};
use rand::{Rng, SeedableRng};

#[test]
fn random_message_storm_terminates_and_conserves_tokens() {
    // Each machine starts with a bag of tokens; every processed token
    // is either retired or forwarded to a random machine with decaying
    // probability. Quiescence must be reached, and the total number of
    // processed tokens must equal the number of sends + initial seeds.
    for seed in 0..5u64 {
        let p = 4;
        let cluster = Cluster::new(p);
        let (results, _) = cluster.run::<u64, (u64, u64), _>(|h| {
            let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed * 31 + h.id() as u64);
            let mut processed = 0u64;
            let mut sent = 0u64;
            // Seed: 50 tokens of ttl 20 each, staged as self-messages.
            for _ in 0..50 {
                h.send(h.id(), 20);
            }
            sent += 50;
            loop {
                match h.try_recv() {
                    Some(env) => {
                        h.set_idle(false);
                        let ttl = env.payload;
                        if ttl > 0 && rng.gen_bool(0.7) {
                            h.send(rng.gen_range(0..3.min(h.num_machines())), ttl - 1);
                            sent += 1;
                        }
                        processed += 1;
                        h.message_processed();
                    }
                    None => {
                        h.set_idle(true);
                        if h.quiescent() {
                            break;
                        }
                        std::thread::yield_now();
                    }
                }
            }
            (processed, sent)
        });
        let processed: u64 = results.iter().map(|r| r.0).sum();
        let sent: u64 = results.iter().map(|r| r.1).sum();
        assert_eq!(processed, sent, "seed {seed}: every send must be processed");
    }
}

#[test]
fn barrier_reduce_consistent_over_many_generations() {
    let p = 6;
    let rounds = 500u64;
    let cluster = Cluster::new(p);
    let (results, _) = cluster.run::<(), u64, _>(|h| {
        let mut acc = 0u64;
        for r in 0..rounds {
            let contribution = r * (h.id() as u64 + 1);
            let red = h.barrier_reduce(contribution);
            // sum of i*(id+1) over ids = r * p(p+1)/2
            assert_eq!(red.sum, r * (p as u64 * (p as u64 + 1) / 2));
            assert_eq!(red.max, r * p as u64);
            acc = acc.wrapping_add(red.sum);
        }
        acc
    });
    assert!(results.windows(2).all(|w| w[0] == w[1]), "all machines saw identical reductions");
}

#[test]
fn traffic_accounting_matches_messages() {
    let cluster = Cluster::with_model(3, NetModel::TEN_GBE);
    let (_, report) = cluster.run::<u64, (), _>(|h| {
        // Every machine sends exactly 10 remote messages of 8 bytes.
        for i in 0..10u64 {
            h.send((h.id() + 1) % 3, i);
        }
        h.barrier();
        h.drain();
    });
    assert_eq!(report.total_msgs(), 30);
    assert_eq!(report.total_bytes(), 30 * 8);
    assert!(report.max_sim_net_ns() >= 10 * NetModel::TEN_GBE.latency_ns_per_msg);
}

#[test]
fn large_cluster_smoke() {
    // 16 simulated machines on however few cores: must still complete.
    let cluster = Cluster::new(16);
    let (results, _) = cluster.run::<u64, u64, _>(|h| {
        for m in 0..h.num_machines() {
            if m != h.id() {
                h.send(m, h.id() as u64);
            }
        }
        h.barrier();
        let got = h.drain();
        assert_eq!(got.len(), 15);
        h.barrier_sum(got.len() as u64)
    });
    assert!(results.iter().all(|&r| r == 16 * 15));
}
